"""SHA-256 tests pinned to FIPS 180-4 vectors and stdlib cross-check."""

import hashlib

import pytest

from repro.crypto.sha256 import sha256, sha256_hex


class TestFipsVectors:
    def test_empty(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha256_hex(msg) == (
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )


class TestAgainstStdlib:
    @pytest.mark.parametrize(
        "length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000]
    )
    def test_padding_boundaries(self, length):
        """Lengths straddling the 55/56/64-byte padding edges."""
        data = bytes(i % 251 for i in range(length))
        assert sha256(data) == hashlib.sha256(data).digest()

    def test_large_input(self):
        data = b"\xa5" * 10_000
        assert sha256(data) == hashlib.sha256(data).digest()


class TestProperties:
    def test_digest_length(self):
        assert len(sha256(b"x")) == 32

    def test_deterministic(self):
        assert sha256(b"same") == sha256(b"same")

    def test_avalanche(self):
        a, b = sha256(b"message0"), sha256(b"message1")
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing > 80  # ~128 expected
