"""Tests for the benchmark roster and trace builder."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.benchmarks import (
    BENCHMARKS,
    benchmark_names,
    build_trace,
    get_profile,
    scaled_profile,
)
from repro.workloads.stats import characterize


class TestRoster:
    def test_roster_size(self):
        """14 headline benchmarks plus 6 extensions = 20."""
        assert len(BENCHMARKS) == 20

    def test_paper_roster_is_the_default(self):
        from repro.workloads.benchmarks import PAPER_ROSTER, benchmark_names

        assert benchmark_names() == list(PAPER_ROSTER)
        assert len(PAPER_ROSTER) == 14
        assert set(benchmark_names(include_extensions=True)) >= set(PAPER_ROSTER)

    def test_extension_profiles_buildable(self):
        for name in ("nw", "btree", "mis", "fw", "sgemm", "cutcp"):
            trace = build_trace(name, length=200)
            assert len(trace) == 200

    def test_all_four_suites_present(self):
        suites = {p.suite for p in BENCHMARKS.values()}
        assert suites == {"rodinia", "parboil", "lonestargpu", "pannotia"}

    def test_intensity_classes_present(self):
        classes = {p.intensity_class for p in BENCHMARKS.values()}
        assert classes == {"high", "medium"}

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            get_profile("doom")

    def test_scaled_profile_overrides(self):
        profile = scaled_profile("bfs", memory_intensity=0.5)
        assert profile.memory_intensity == 0.5
        assert get_profile("bfs").memory_intensity != 0.5


class TestBuildTrace:
    def test_length_honoured(self):
        assert len(build_trace("bfs", length=500)) == 500

    def test_determinism(self):
        a = build_trace("kmeans", length=300, seed=5)
        b = build_trace("kmeans", length=300, seed=5)
        assert [x.line_addr for x in a] == [x.line_addr for x in b]
        assert [x.values for x in a] == [x.values for x in b]

    def test_seed_changes_trace(self):
        a = build_trace("kmeans", length=300, seed=5)
        b = build_trace("kmeans", length=300, seed=6)
        assert [x.line_addr for x in a] != [x.line_addr for x in b]

    def test_read_fraction_approximates_profile(self):
        trace = build_trace("lbm", length=2000)
        stats = characterize(trace)
        assert stats.read_fraction == pytest.approx(
            get_profile("lbm").read_fraction, abs=0.02
        )

    def test_values_attached_by_default(self):
        trace = build_trace("bfs", length=100)
        assert all(a.values is not None for a in trace)

    def test_values_omittable(self):
        trace = build_trace("bfs", length=100, with_values=False)
        assert all(a.values is None for a in trace)

    def test_memory_intensity_propagated(self):
        trace = build_trace("sssp", length=100)
        assert trace.memory_intensity == get_profile("sssp").memory_intensity

    def test_warmup_depth_propagated(self):
        assert build_trace("lbm", length=50).counter_warmup_passes == 12
        assert build_trace("bfs", length=50).counter_warmup_passes == 3

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            build_trace("bfs", length=0)

    def test_addresses_inside_protected_range(self):
        trace = build_trace("sssp", length=2000)
        top = max(a.line_addr for a in trace)
        assert top < 4 * 1024**3


class TestBehaviouralContracts:
    def test_graph_apps_have_irregular_single_sector_reads(self):
        trace = build_trace("color", length=2000)
        single = sum(
            1 for a in trace if not a.write and a.sector_count == 1
        )
        assert single > 500

    def test_streaming_apps_use_full_lines(self):
        trace = build_trace("lbm", length=2000)
        full = sum(1 for a in trace if a.sector_mask == 0b1111)
        assert full == len(trace)

    def test_write_overlap_for_rmw_benchmarks(self):
        """Gaussian updates its matrix in place: written lines must
        intersect read lines."""
        trace = build_trace("gaussian", length=4000)
        reads = {a.line_addr for a in trace if not a.write}
        writes = {a.line_addr for a in trace if a.write}
        assert reads & writes

    def test_disjoint_outputs_for_double_buffered(self):
        """LBM writes a separate destination lattice."""
        trace = build_trace("lbm", length=4000)
        reads = {a.line_addr for a in trace if not a.write}
        writes = {a.line_addr for a in trace if a.write}
        assert not reads & writes
