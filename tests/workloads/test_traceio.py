"""Tests for trace import/export."""

import io

import pytest

from repro.common.errors import TraceError, TraceFormatError
from repro.workloads.benchmarks import build_trace
from repro.workloads.trace import Trace, TraceAccess
from repro.workloads.traceio import (
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    merge_traces,
)


class TestRoundtrip:
    def test_full_roundtrip_preserves_everything(self):
        original = build_trace("bfs", length=80, seed=4)
        recovered = loads_trace(dumps_trace(original))
        assert recovered.name == original.name
        assert recovered.memory_intensity == original.memory_intensity
        assert recovered.instructions == original.instructions
        assert recovered.counter_warmup_passes == original.counter_warmup_passes
        assert len(recovered) == len(original)
        for a, b in zip(original, recovered):
            assert (a.line_addr, a.sector_mask, a.write) == (
                b.line_addr, b.sector_mask, b.write
            )
            assert a.values == b.values

    def test_roundtrip_without_values(self):
        original = build_trace("lbm", length=40, with_values=False)
        recovered = loads_trace(dumps_trace(original))
        assert all(a.values is None for a in recovered)

    def test_stream_interface(self):
        original = build_trace("histo", length=20)
        buffer = io.StringIO()
        dump_trace(original, buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 20


#: Minimal valid header for hand-built parsing fixtures.
HEADER = "#repro-trace name=t\n"


class TestParsing:
    def test_minimal_line(self):
        trace = loads_trace(HEADER + "R 0x0 0b0001\n")
        assert trace.accesses[0].line_addr == 0
        assert not trace.accesses[0].write

    def test_hex_image_parsed(self):
        image = bytes(range(32)).hex()
        trace = loads_trace(HEADER + f"W 0x80 0b0010 {image}\n")
        assert trace.accesses[0].value_for(1) == bytes(range(32))

    def test_dash_skips_image(self):
        trace = loads_trace(HEADER + "R 0x0 0b0011 - -\n")
        assert trace.accesses[0].values is None

    def test_comments_and_blanks_ignored(self):
        trace = loads_trace(HEADER + "# hello\n\nR 0x0 0b0001\n")
        assert len(trace) == 1

    def test_footer_accepted(self):
        trace = loads_trace(HEADER + "R 0x0 0b0001\n#repro-end records=1\n")
        assert len(trace) == 1

    def test_header_sets_profile_facts(self):
        text = (
            "#repro-trace name=mykernel intensity=0.55 "
            "instructions=4242 warmup=7\n"
            "R 0x0 0b0001\n"
        )
        trace = loads_trace(text)
        assert trace.name == "mykernel"
        assert trace.memory_intensity == 0.55
        assert trace.instructions == 4242
        assert trace.counter_warmup_passes == 7


class TestErrors:
    def test_bad_direction(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "X 0x0 0b0001\n")

    def test_short_line(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "R 0x0\n")

    def test_wrong_image_count(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "R 0x0 0b0011 " + "00" * 32 + "\n")

    def test_bad_hex(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "R 0x0 0b0001 zz\n")

    def test_wrong_image_size(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "R 0x0 0b0001 aabb\n")

    def test_empty_file(self):
        with pytest.raises(TraceError):
            loads_trace(HEADER + "# nothing here\n")

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace("R 0x0 0b0001\n")
        assert info.value.line == 1
        assert "header" in str(info.value)

    def test_errors_carry_line_numbers(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace(HEADER + "R 0x0 0b0001\nX 0x80 0b0001\n")
        assert info.value.line == 3
        assert str(info.value).startswith("line 3:")

    def test_bad_header_value_names_line(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace("#repro-trace name=t intensity=fast\nR 0x0 0b0001\n")
        assert info.value.line == 1

    def test_truncated_mid_record_rejected(self):
        full = dumps_trace(build_trace("bfs", length=12, seed=3))
        # Chop inside the last record line: its hex image loses bytes.
        truncated = full[: full.rfind("records=") - len("#repro-end ")]
        truncated = truncated[:-20]
        with pytest.raises(TraceFormatError) as info:
            loads_trace(truncated)
        assert info.value.line is not None

    def test_truncated_between_records_rejected_by_footer(self):
        full = dumps_trace(build_trace("bfs", length=12, seed=3))
        lines = full.splitlines(keepends=True)
        # Drop one whole record but keep the footer: count mismatch.
        del lines[-2]
        with pytest.raises(TraceFormatError) as info:
            loads_trace("".join(lines))
        assert "footer declares" in str(info.value)

    def test_misaligned_address_names_line(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace(HEADER + "R 0x7 0b0001\n")
        assert info.value.line == 2


class TestMerge:
    def test_merge_concatenates(self):
        a = Trace(name="a", accesses=[TraceAccess(0, 1, False)],
                  memory_intensity=1.0)
        b = Trace(name="b", accesses=[TraceAccess(128, 1, True)] * 3,
                  memory_intensity=0.5, counter_warmup_passes=9)
        merged = merge_traces([a, b])
        assert len(merged) == 4
        assert merged.memory_intensity == pytest.approx((1.0 + 3 * 0.5) / 4)
        assert merged.counter_warmup_passes == 9

    def test_merge_nothing_rejected(self):
        with pytest.raises(TraceError):
            merge_traces([])


class TestEventLogRoundtrip:
    def _log(self, benchmark="bfs", length=120, seed=6):
        from repro.gpu.config import VOLTA
        from repro.gpu.simulator import simulate_l2

        return simulate_l2(build_trace(benchmark, length=length, seed=seed),
                           VOLTA)

    def test_full_roundtrip_preserves_everything(self):
        from repro.workloads.traceio import dumps_event_log, loads_event_log

        original = self._log()
        recovered = loads_event_log(dumps_event_log(original))
        assert recovered.trace_name == original.trace_name
        assert recovered.memory_intensity == original.memory_intensity
        assert recovered.instructions == original.instructions
        assert recovered.counter_warmup_passes == (
            original.counter_warmup_passes
        )
        assert recovered.fill_sectors == original.fill_sectors
        assert recovered.writeback_sectors == original.writeback_sectors
        assert recovered.l2_stats == original.l2_stats
        assert len(recovered.events) == len(original.events)
        for a, b in zip(original.events, recovered.events):
            assert (a.kind, a.partition, a.sector_index, a.values) == (
                b.kind, b.partition, b.sector_index, b.values
            )

    def test_roundtrip_replays_identically(self):
        from repro.gpu.config import VOLTA
        from repro.gpu.simulator import replay_events
        from repro.harness.runner import EngineSpec
        from repro.secure.plutus import PlutusEngine
        from repro.workloads.traceio import dumps_event_log, loads_event_log

        original = self._log("lbm")
        recovered = loads_event_log(dumps_event_log(original))
        factory = EngineSpec(PlutusEngine)
        a = replay_events(original, factory, VOLTA)
        b = replay_events(recovered, factory, VOLTA)
        assert a.traffic == b.traffic
        assert a.engine_stats == b.engine_stats

    def test_stream_interface(self):
        from repro.workloads.traceio import dump_event_log, load_event_log

        original = self._log()
        buffer = io.StringIO()
        dump_event_log(original, buffer)
        buffer.seek(0)
        assert len(load_event_log(buffer).events) == len(original.events)

    def test_whitespace_trace_name_rejected(self):
        from repro.workloads.traceio import dumps_event_log

        log = self._log()
        log.trace_name = "bad name"
        with pytest.raises(TraceError):
            dumps_event_log(log)


class TestEventLogParsing:
    HEADER = ("#repro-events name=k intensity=0.5 instructions=10 "
              "warmup=2 l2_accesses=4 l2_hits=3 l2_misses=1\n")

    def test_header_required(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log("F 0 0 -\n")

    def test_header_populates_profile_and_l2_stats(self):
        from repro.workloads.traceio import loads_event_log

        log = loads_event_log(self.HEADER + "F 3 7 -\n")
        assert log.trace_name == "k"
        assert log.memory_intensity == 0.5
        assert log.instructions == 10
        assert log.counter_warmup_passes == 2
        assert (log.l2_stats.accesses, log.l2_stats.sector_hits,
                log.l2_stats.sector_misses) == (4, 3, 1)
        assert log.fill_sectors == 1 and log.writeback_sectors == 0

    def test_bad_kind_rejected(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log(self.HEADER + "X 0 0 -\n")

    def test_short_line_rejected(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log(self.HEADER + "F 0 0\n")

    def test_negative_partition_rejected(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log(self.HEADER + "F -1 0 -\n")

    def test_wrong_image_size_rejected(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log(self.HEADER + "W 0 0 aabb\n")

    def test_bad_hex_rejected(self):
        from repro.workloads.traceio import loads_event_log

        with pytest.raises(TraceError):
            loads_event_log(self.HEADER + "W 0 0 " + "zz" * 32 + "\n")


class TestAtomicSavers:
    """The crash-atomic path savers mirror the stream dumpers exactly."""

    def test_save_trace_matches_dumps(self, tmp_path):
        from repro.workloads.traceio import dumps_trace, save_trace

        trace = build_trace("bfs", length=30, seed=5)
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        assert path.read_text() == dumps_trace(trace)

    def test_save_event_log_round_trips(self, tmp_path):
        from repro.gpu.config import VOLTA
        from repro.gpu.simulator import simulate_l2
        from repro.workloads.traceio import (
            dumps_event_log,
            load_event_log,
            save_event_log,
        )

        log = simulate_l2(build_trace("bfs", length=200, seed=5), VOLTA)
        path = tmp_path / "log.events"
        save_event_log(log, path)
        with path.open("r", encoding="utf-8") as fp:
            reloaded = load_event_log(fp)
        assert dumps_event_log(reloaded) == dumps_event_log(log)

    def test_save_traffic_reports_round_trips(self, tmp_path):
        from repro.gpu.config import VOLTA
        from repro.gpu.simulator import replay_events, simulate_l2
        from repro.harness.runner import EngineSpec
        from repro.secure.engine import NoSecurityEngine
        from repro.workloads.traceio import (
            load_traffic_reports,
            save_traffic_reports,
        )

        log = simulate_l2(build_trace("bfs", length=200, seed=5), VOLTA)
        result = replay_events(log, EngineSpec(NoSecurityEngine), VOLTA,
                               workers=1)
        path = tmp_path / "snap.txt"
        save_traffic_reports({"nosec": result.traffic}, path, name="t")
        with path.open("r", encoding="utf-8") as fp:
            reloaded = load_traffic_reports(fp)
        assert set(reloaded) == {"nosec"}
        assert (
            reloaded["nosec"].bytes_by_stream
            == result.traffic.bytes_by_stream
        )
