"""Directional paper-shape tests at small scale.

Each test pins one qualitative claim from the paper's evaluation using
traces small enough for the unit-test suite; the full-magnitude
versions live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.gpu.perf_model import normalized_ipc
from repro.harness.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        trace_length=4000, benchmarks=["bfs", "lbm", "histo"]
    )


def ipc(ctx, bench, key):
    return normalized_ipc(ctx.run(bench, key), ctx.run(bench, "nosec"))


class TestFig15Shape:
    def test_value_only_beats_pssm_on_value_rich_kernels(self, ctx):
        for bench in ("bfs", "histo"):
            assert ipc(ctx, bench, "plutus:value-only") > ipc(ctx, bench, "pssm")

    def test_value_verification_shows_in_stats(self, ctx):
        stats = ctx.run("bfs", "plutus:value-only").engine_stats
        assert stats.value_verified_fills > 0
        assert stats.mac_fetches_avoided == stats.value_verified_fills


class TestFig16Shape:
    def test_fine_granularity_wins_on_irregular_writes(self, ctx):
        assert ipc(ctx, "histo", "gran:32B-all") > ipc(ctx, "histo", "gran:128B")

    def test_designs_2_and_3_differ_in_tree_shape_only(self, ctx):
        d2 = ctx.run("bfs", "gran:32B-leaf")
        d3 = ctx.run("bfs", "gran:32B-all")
        # Same counter fetch granularity: identical counter read traffic.
        from repro.mem.traffic import Stream

        assert (
            d2.traffic.bytes_by_stream[Stream.COUNTER_READ]
            == d3.traffic.bytes_by_stream[Stream.COUNTER_READ]
        )


class TestFig17Shape:
    def test_adaptive_at_least_matches_3bit(self, ctx):
        for bench in ("lbm", "histo"):
            assert (
                ipc(ctx, bench, "compact:adaptive")
                >= ipc(ctx, bench, "compact:3bit") - 1e-9
            )

    def test_2bit_saturation_hurts_write_heavy(self, ctx):
        """lbm's deep write history saturates 2-bit counters."""
        assert ipc(ctx, "lbm", "compact:adaptive") >= ipc(ctx, "lbm", "compact:2bit")


class TestFig21Shape:
    def test_gains_saturate_at_256_entries(self, ctx):
        small = ipc(ctx, "bfs", "plutus:vcache-64")
        mid = ipc(ctx, "bfs", "plutus:vcache-256")
        large = ipc(ctx, "bfs", "plutus:vcache-1024")
        assert mid > small
        assert (large - mid) < (mid - small)


class TestFig20Shape:
    def test_value_check_is_orthogonal_to_tree_schemes(self, ctx):
        """With tree traffic gone entirely, Plutus still wins (MGX et
        al. are orthogonal, as the paper argues)."""
        assert ipc(ctx, "bfs", "plutus:no-tree") > ipc(ctx, "bfs", "pssm:no-tree")


class TestPinnedRegionMechanism:
    def test_no_pinning_means_no_write_skips(self, ctx):
        unpinned = ctx.run("histo", "plutus:pinned-0.0").engine_stats
        pinned = ctx.run("histo", "plutus:pinned-0.25").engine_stats
        assert unpinned.mac_writes_avoided == 0
        assert pinned.mac_writes_avoided > 0
