"""Columnar (structure-of-arrays) core of the DRAM-side event log.

The event log used to be a Python list of :class:`MemoryEvent` objects —
fine at thousands of events, ruinous at millions: every event costs an
object header, every replay pass re-dispatches per event, and pickling a
shard for the process pool serializes objects one by one. This module
stores the same stream as parallel columns instead:

* ``kind``      — one byte per event (0 = fill, 1 = writeback);
* ``partition`` — int32 partition index;
* ``sector``    — int64 partition-local sector index;
* ``value_offset``/``value_length`` — int64/int32 slices into a shared
  ``payload`` byte blob (offset ``-1`` means the event carried no value).

Three views cooperate:

* :class:`ColumnStore` — the growable builder (``bytearray`` +
  ``array.array`` columns) the L2 pass appends into;
* :class:`EventColumns` — an immutable numpy snapshot of a store, the
  form the vectorized replay, sharding, and serialization operate on;
* :class:`EventView` — a lazy ``Sequence[MemoryEvent]`` over a store, so
  every caller written against ``log.events`` (iteration, indexing,
  slicing, equality) keeps working unchanged; events are materialized
  on access, never stored.

Round-trips are exact by construction: ``ColumnStore.from_columns(
store.to_columns())`` reproduces every event, and ``EventView`` equality
against a plain list compares field-by-field.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Optional, Sequence

import numpy as np

#: Byte codes of the ``kind`` column.
FILL_CODE = 0
WRITEBACK_CODE = 1

# The builder columns lean on CPython's array.array item sizes; these
# hold on every supported platform, but the snapshot math depends on
# them, so fail loudly rather than corrupt silently.
assert array("i").itemsize == 4 and array("q").itemsize == 8


class EventKind(Enum):
    FILL = "fill"
    WRITEBACK = "writeback"


_KIND_BY_CODE = (EventKind.FILL, EventKind.WRITEBACK)


class MemoryEvent:
    """One sector-granular DRAM-side event at a partition controller.

    Compares by value (kind, partition, sector, payload), so a
    materialized view event equals the object it round-tripped from.
    """

    __slots__ = ("kind", "partition", "sector_index", "values")

    def __init__(self, kind: EventKind, partition: int, sector_index: int,
                 values: Optional[bytes]) -> None:
        self.kind = kind
        self.partition = partition
        self.sector_index = sector_index
        self.values = values

    def __repr__(self) -> str:
        return (
            f"MemoryEvent({self.kind.value} p{self.partition} "
            f"s{self.sector_index})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryEvent):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.partition == other.partition
            and self.sector_index == other.sector_index
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash(
            (self.kind, self.partition, self.sector_index, self.values)
        )


@dataclass(frozen=True, eq=False)
class EventColumns:
    """Immutable numpy snapshot of an event stream.

    ``payload`` is canonical: present values are stored back to back in
    event order, so ``value_offset`` is monotonic over present events
    and chunked serialization can slice it contiguously.
    """

    kind: np.ndarray          # uint8, FILL_CODE / WRITEBACK_CODE
    partition: np.ndarray     # int32
    sector: np.ndarray        # int64
    value_offset: np.ndarray  # int64, -1 = event carried no value
    value_length: np.ndarray  # int32, 0 when absent
    payload: bytes
    #: Every present value is exactly 32 bytes (the sector image size) —
    #: unlocks the reshape-to-matrix fast paths.
    fixed32: bool

    @property
    def n_events(self) -> int:
        return int(self.kind.shape[0])

    @property
    def fill_count(self) -> int:
        return int(np.count_nonzero(self.kind == FILL_CODE))

    @property
    def writeback_count(self) -> int:
        return self.n_events - self.fill_count

    def value_at(self, row: int) -> Optional[bytes]:
        offset = int(self.value_offset[row])
        if offset < 0:
            return None
        return self.payload[offset:offset + int(self.value_length[row])]

    def values_for(self, rows: np.ndarray) -> "ColumnValues":
        """Lazy per-row value sequence (decoded only on access)."""
        return ColumnValues(self, rows)

    def matrix32(self) -> np.ndarray:
        """Present values as an ``(n_present, 32)`` uint8 matrix."""
        if not self.fixed32:
            raise ValueError("payload holds non-32-byte values")
        return np.frombuffer(self.payload, dtype=np.uint8).reshape(-1, 32)

    def take(self, rows: np.ndarray) -> "EventColumns":
        """Gather a row subset into a new canonical snapshot."""
        lengths = self.value_length[rows]
        src_offsets = self.value_offset[rows]
        present = np.flatnonzero(src_offsets >= 0)
        new_offsets = np.full(len(rows), -1, dtype=np.int64)
        if present.size == 0:
            payload = b""
        elif self.fixed32:
            matrix = self.matrix32()
            payload = matrix[src_offsets[present] // 32].tobytes()
            new_offsets[present] = (
                np.arange(present.size, dtype=np.int64) * 32
            )
        else:
            chunks: List[bytes] = []
            position = 0
            for slot, row in zip(
                present.tolist(), src_offsets[present].tolist()
            ):
                length = int(lengths[slot])
                chunks.append(self.payload[row:row + length])
                new_offsets[slot] = position
                position += length
            payload = b"".join(chunks)
        present_lengths = lengths[present]
        return EventColumns(
            kind=self.kind[rows],
            partition=self.partition[rows],
            sector=self.sector[rows],
            value_offset=new_offsets,
            value_length=lengths.copy(),
            payload=payload,
            fixed32=bool(np.all(present_lengths == 32)),
        )


class ColumnValues(Sequence):
    """Lazy ``Sequence[Optional[bytes]]`` over selected snapshot rows."""

    __slots__ = ("_cols", "_rows")

    def __init__(self, cols: EventColumns, rows: np.ndarray) -> None:
        self._cols = cols
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._cols.value_at(r)
                    for r in self._rows[index].tolist()]
        return self._cols.value_at(int(self._rows[index]))

    def __iter__(self) -> Iterator[Optional[bytes]]:
        payload = self._cols.payload
        offsets = self._cols.value_offset[self._rows].tolist()
        lengths = self._cols.value_length[self._rows].tolist()
        for offset, length in zip(offsets, lengths):
            yield None if offset < 0 else payload[offset:offset + length]

    def u32_matrix(self):
        """Rows as little-endian uint32 words, or ``None``.

        Returns ``(words, present)`` where ``words`` is an ``(n, 8)``
        uint32 matrix (absent rows are zero-filled and flagged False in
        ``present``) — the input the batched value-cache probe masks in
        one vectorized pass. ``None`` when the payload holds any
        non-32-byte value; callers then fall back to the scalar
        per-event decode, which preserves exact error semantics.
        """
        cols = self._cols
        if not cols.fixed32:
            return None
        offsets = cols.value_offset[self._rows]
        present = offsets >= 0
        if not present.any():
            return None
        words_all = np.frombuffer(
            cols.payload, dtype="<u4"
        ).reshape(-1, 8)
        words = np.zeros((len(self._rows), 8), dtype=np.uint32)
        words[present] = words_all[offsets[present] // 32]
        return words, present


class ColumnStore:
    """Growable structure-of-arrays event storage.

    Append-only; the numpy snapshot from :meth:`to_columns` is cached
    and invalidated by the next append, and owns copies of the buffers
    so later growth can never corrupt an outstanding snapshot.
    """

    __slots__ = (
        "_kinds", "_partitions", "_sectors", "_offsets", "_lengths",
        "_payload", "_fixed32", "_cols",
    )

    def __init__(self) -> None:
        self._kinds = bytearray()
        self._partitions = array("i")
        self._sectors = array("q")
        self._offsets = array("q")
        self._lengths = array("i")
        self._payload = bytearray()
        self._fixed32 = True
        self._cols: Optional[EventColumns] = None

    def __len__(self) -> int:
        return len(self._kinds)

    # -- building ---------------------------------------------------------

    def append(self, kind_code: int, partition: int, sector: int,
               values: Optional[bytes]) -> None:
        self._kinds.append(kind_code)
        self._partitions.append(partition)
        self._sectors.append(sector)
        if values is None:
            self._offsets.append(-1)
            self._lengths.append(0)
        else:
            self._offsets.append(len(self._payload))
            self._lengths.append(len(values))
            self._payload.extend(values)
            if len(values) != 32:
                self._fixed32 = False
        self._cols = None

    def append_event(self, event: MemoryEvent) -> None:
        self.append(
            FILL_CODE if event.kind is EventKind.FILL else WRITEBACK_CODE,
            event.partition, event.sector_index, event.values,
        )

    def extend_decoded(
        self,
        kinds: bytes,
        partitions: np.ndarray,
        sectors: np.ndarray,
        lengths: np.ndarray,
        payload: bytes,
    ) -> None:
        """Bulk-append decoded columns (``lengths`` uses -1 for absent).

        This is the loader fast path: one buffer copy per column per
        chunk instead of one Python call per event.
        """
        present = lengths >= 0
        plengths = np.where(present, lengths, 0).astype(np.int64)
        if int(plengths.sum()) != len(payload):
            raise ValueError("payload size disagrees with value lengths")
        base = len(self._payload)
        ends = np.cumsum(plengths)
        offsets = np.where(present, base + ends - plengths, -1)
        self._kinds.extend(kinds)
        self._partitions.frombytes(
            np.ascontiguousarray(partitions, dtype=np.int32).tobytes()
        )
        self._sectors.frombytes(
            np.ascontiguousarray(sectors, dtype=np.int64).tobytes()
        )
        self._offsets.frombytes(
            np.ascontiguousarray(offsets, dtype=np.int64).tobytes()
        )
        self._lengths.frombytes(
            np.ascontiguousarray(
                np.where(present, lengths, 0), dtype=np.int32
            ).tobytes()
        )
        self._payload.extend(payload)
        if not bool(np.all(plengths[present] == 32)):
            self._fixed32 = False
        self._cols = None

    @classmethod
    def from_columns(cls, cols: EventColumns) -> "ColumnStore":
        store = cls()
        lengths = np.where(
            cols.value_offset >= 0, cols.value_length, -1
        ).astype(np.int32)
        store.extend_decoded(
            cols.kind.tobytes(), cols.partition, cols.sector, lengths,
            cols.payload,
        )
        return store

    # -- reading ----------------------------------------------------------

    def event(self, row: int) -> MemoryEvent:
        if row < 0:
            row += len(self._kinds)
        if not 0 <= row < len(self._kinds):
            raise IndexError("event index out of range")
        offset = self._offsets[row]
        values = (
            None if offset < 0
            else bytes(self._payload[offset:offset + self._lengths[row]])
        )
        return MemoryEvent(
            _KIND_BY_CODE[self._kinds[row]],
            self._partitions[row],
            self._sectors[row],
            values,
        )

    def iter_events(self) -> Iterator[MemoryEvent]:
        payload = self._payload
        for code, partition, sector, offset, length in zip(
            self._kinds, self._partitions, self._sectors,
            self._offsets, self._lengths,
        ):
            values = (
                None if offset < 0 else bytes(payload[offset:offset + length])
            )
            yield MemoryEvent(_KIND_BY_CODE[code], partition, sector, values)

    def to_columns(self) -> EventColumns:
        """Numpy snapshot of the store (cached until the next append)."""
        if self._cols is None:
            self._cols = EventColumns(
                kind=np.frombuffer(bytes(self._kinds), dtype=np.uint8),
                partition=np.frombuffer(
                    self._partitions, dtype=np.int32
                ).copy() if self._partitions else np.empty(0, np.int32),
                sector=np.frombuffer(
                    self._sectors, dtype=np.int64
                ).copy() if self._sectors else np.empty(0, np.int64),
                value_offset=np.frombuffer(
                    self._offsets, dtype=np.int64
                ).copy() if self._offsets else np.empty(0, np.int64),
                value_length=np.frombuffer(
                    self._lengths, dtype=np.int32
                ).copy() if self._lengths else np.empty(0, np.int32),
                payload=bytes(self._payload),
                fixed32=self._fixed32,
            )
        return self._cols

    def equals(self, other: "ColumnStore") -> bool:
        """Event-for-event equality (payload layout is canonical)."""
        return (
            self._kinds == other._kinds
            and self._partitions == other._partitions
            and self._sectors == other._sectors
            and self._lengths == other._lengths
            and self._offsets == other._offsets
            and self._payload == other._payload
        )

    # -- pickling (drop the snapshot cache; shards ship columns only) -----

    def __getstate__(self):
        return (
            bytes(self._kinds),
            self._partitions.tobytes(),
            self._sectors.tobytes(),
            self._offsets.tobytes(),
            self._lengths.tobytes(),
            bytes(self._payload),
            self._fixed32,
        )

    def __setstate__(self, state) -> None:
        kinds, partitions, sectors, offsets, lengths, payload, fixed = state
        self._kinds = bytearray(kinds)
        self._partitions = array("i")
        self._partitions.frombytes(partitions)
        self._sectors = array("q")
        self._sectors.frombytes(sectors)
        self._offsets = array("q")
        self._offsets.frombytes(offsets)
        self._lengths = array("i")
        self._lengths.frombytes(lengths)
        self._payload = bytearray(payload)
        self._fixed32 = fixed
        self._cols = None


class EventView(Sequence):
    """Lazy ``Sequence[MemoryEvent]`` over a :class:`ColumnStore`.

    Behaves like the ``List[MemoryEvent]`` it replaced — iteration,
    ``len``, indexing, slicing (returns a plain list), ``append``,
    ``extend``, and equality against lists or other views — but holds
    no event objects; each access materializes from the columns.
    """

    __slots__ = ("store",)

    #: Like lists, views are unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __init__(self, store: Optional[ColumnStore] = None) -> None:
        self.store = store if store is not None else ColumnStore()

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[MemoryEvent]:
        return self.store.iter_events()

    def __getitem__(self, index):
        if isinstance(index, slice):
            rows = range(len(self.store))[index]
            return [self.store.event(row) for row in rows]
        return self.store.event(index)

    def append(self, event: MemoryEvent) -> None:
        self.store.append_event(event)

    def extend(self, events) -> None:
        for event in events:
            self.store.append_event(event)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventView):
            return self.store.equals(other.store)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"<EventView of {len(self)} events>"
