"""AES-128/192/256 block cipher, implemented from scratch.

The reproduction cannot assume hardware AES engines, and the functional
security tests (tamper diffusion, value-check soundness) need a real
cipher, so the full FIPS-197 algorithm is implemented here: the S-box is
derived from the GF(2^8) multiplicative inverse plus the affine map, key
expansion follows the Rijndael schedule, and both the encrypt and decrypt
directions are provided.

The implementation favours clarity over throughput; the performance
simulator never encrypts real data (it accounts traffic symbolically), so
this code only runs in functional mode and in the test suite, where known
NIST vectors pin it down.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import BlockSizeError, KeySizeError

BLOCK_SIZE = 16

_IRREDUCIBLE = 0x11B  # x^8 + x^4 + x^3 + x + 1, the Rijndael polynomial


def gf256_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the Rijndael polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _IRREDUCIBLE
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    """Derive the AES S-box and its inverse from first principles.

    Each byte is mapped to its multiplicative inverse in GF(2^8) (0 maps
    to 0) followed by the FIPS-197 affine transformation. Computing the
    table instead of hard-coding 256 literals makes the construction
    auditable; the test suite additionally checks the canonical values.
    """
    # Build inverses via exponentiation tables on generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf256_mul(x, 3)
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inverse = 0 if value == 0 else exp[255 - log[value]]
        transformed = 0
        for bit in range(8):
            parity = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(gf256_mul(_RCON[-1], 2))

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


def expand_key(key: bytes) -> List[List[int]]:
    """Run the Rijndael key schedule.

    Returns one 16-byte round key per round plus the initial whitening
    key, each as a flat list of 16 ints in column-major (FIPS) order.
    """
    if len(key) not in _ROUNDS_BY_KEY_LEN:
        raise KeySizeError(
            f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
        )
    rounds = _ROUNDS_BY_KEY_LEN[len(key)]
    nk = len(key) // 4
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [_SBOX[b] for b in temp]
        words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(rounds + 1):
        flat: List[int] = []
        for w in words[4 * r : 4 * r + 4]:
            flat.extend(w)
        round_keys.append(flat)
    return round_keys


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = _INV_SBOX[state[i]]


# State layout: state[4*c + r] is row r of column c (FIPS byte order).
_SHIFT_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_MAP = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: List[int]) -> List[int]:
    return [state[_SHIFT_MAP[i]] for i in range(16)]


def _inv_shift_rows(state: List[int]) -> List[int]:
    return [state[_INV_SHIFT_MAP[i]] for i in range(16)]


def _mix_single_column(col: List[int]) -> List[int]:
    a0, a1, a2, a3 = col
    return [
        gf256_mul(a0, 2) ^ gf256_mul(a1, 3) ^ a2 ^ a3,
        a0 ^ gf256_mul(a1, 2) ^ gf256_mul(a2, 3) ^ a3,
        a0 ^ a1 ^ gf256_mul(a2, 2) ^ gf256_mul(a3, 3),
        gf256_mul(a0, 3) ^ a1 ^ a2 ^ gf256_mul(a3, 2),
    ]


def _inv_mix_single_column(col: List[int]) -> List[int]:
    a0, a1, a2, a3 = col
    return [
        gf256_mul(a0, 14) ^ gf256_mul(a1, 11) ^ gf256_mul(a2, 13) ^ gf256_mul(a3, 9),
        gf256_mul(a0, 9) ^ gf256_mul(a1, 14) ^ gf256_mul(a2, 11) ^ gf256_mul(a3, 13),
        gf256_mul(a0, 13) ^ gf256_mul(a1, 9) ^ gf256_mul(a2, 14) ^ gf256_mul(a3, 11),
        gf256_mul(a0, 11) ^ gf256_mul(a1, 13) ^ gf256_mul(a2, 9) ^ gf256_mul(a3, 14),
    ]


def _mix_columns(state: List[int], inverse: bool = False) -> List[int]:
    mix = _inv_mix_single_column if inverse else _mix_single_column
    out: List[int] = []
    for c in range(4):
        out.extend(mix(state[4 * c : 4 * c + 4]))
    return out


def _add_round_key(state: List[int], round_key: List[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class AES:
    """A keyed AES instance exposing single-block primitives.

    Modes of operation (XTS, counter-mode) are layered on top in
    :mod:`repro.crypto.xts` and :mod:`repro.crypto.cme`.
    """

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)
        self.key_len = len(key)
        self.rounds = _ROUNDS_BY_KEY_LEN[self.key_len]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != BLOCK_SIZE:
            raise BlockSizeError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(plaintext)}"
            )
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for r in range(1, self.rounds):
            _sub_bytes(state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            _add_round_key(state, self._round_keys[r])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != BLOCK_SIZE:
            raise BlockSizeError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(ciphertext)}"
            )
        state = list(ciphertext)
        _add_round_key(state, self._round_keys[self.rounds])
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        for r in range(self.rounds - 1, 0, -1):
            _add_round_key(state, self._round_keys[r])
            state = _mix_columns(state, inverse=True)
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)


def sbox_table() -> List[int]:
    """Expose a copy of the derived S-box for verification in tests."""
    return list(_SBOX)


def inv_sbox_table() -> List[int]:
    """Expose a copy of the derived inverse S-box."""
    return list(_INV_SBOX)
