"""Ablation: sectored vs non-sectored metadata caches (PSSM's premise).

Disabling sectoring forces every metadata miss to fetch whole 128-byte
lines; for irregular access patterns that over-fetch is pure waste.
"""

from conftest import run_once

from repro.harness.report import format_table
from repro.secure.engine import MetadataCacheConfig
from repro.secure.plutus import PlutusEngine
from repro.metadata.layout import GranularityDesign

BENCHES = ["bfs", "sssp"]


def test_ablation_sectored_metadata_caches(benchmark, ctx):
    def non_sectored(p, s, t):
        return PlutusEngine(
            p, s, t,
            design=GranularityDesign.ALL_32,
            value_cache_config=None,
            compact_config=None,
            cache_config=MetadataCacheConfig(sectored=False),
        )

    def run():
        rows = []
        for bench in BENCHES:
            sectored = ctx.run(bench, "gran:32B-all")
            flat = ctx.run_custom(bench, "gran:32B-all:flat", non_sectored)
            rows.append(
                {
                    "benchmark": bench,
                    "sectored_meta_bytes": sectored.metadata_bytes,
                    "non_sectored_meta_bytes": flat.metadata_bytes,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print(format_table(rows))
    for row in rows:
        assert row["sectored_meta_bytes"] < row["non_sectored_meta_bytes"]
