"""Tests for the bandwidth-bound performance model."""

import pytest

from repro.gpu.config import VOLTA
from repro.gpu.perf_model import (
    estimate_kernel_time,
    normalized_ipc,
    slowdown_vs_baseline,
    speedup,
)


class TestSlowdown:
    def test_no_extra_traffic_no_slowdown(self):
        assert slowdown_vs_baseline(1000, 1000, 0.9) == pytest.approx(1.0)

    def test_fully_memory_bound_scales_with_bytes(self):
        assert slowdown_vs_baseline(2000, 1000, 1.0) == pytest.approx(2.0)

    def test_compute_bound_is_insensitive(self):
        assert slowdown_vs_baseline(2000, 1000, 0.0) == pytest.approx(1.0)

    def test_blend(self):
        # 50% memory bound, 2x traffic -> 1.5x slowdown.
        assert slowdown_vs_baseline(2000, 1000, 0.5) == pytest.approx(1.5)

    def test_traffic_reduction_can_speed_up(self):
        assert slowdown_vs_baseline(500, 1000, 1.0) == pytest.approx(0.5)

    def test_invalid_intensity_rejected(self):
        with pytest.raises(ValueError):
            slowdown_vs_baseline(1, 1, 1.5)

    def test_zero_baseline_degenerates_gracefully(self):
        assert slowdown_vs_baseline(100, 0, 0.9) == 1.0


class TestNormalizedIpc:
    def test_ipc_is_reciprocal_slowdown(self, engine_results):
        base = engine_results["nosec"]
        pssm = engine_results["pssm"]
        expected = 1.0 / slowdown_vs_baseline(
            pssm.total_bytes, base.total_bytes, pssm.memory_intensity
        )
        assert normalized_ipc(pssm, base) == pytest.approx(expected)

    def test_security_always_costs_something(self, engine_results):
        assert normalized_ipc(engine_results["pssm"], engine_results["nosec"]) < 1.0

    def test_plutus_beats_pssm_on_irregular(self, engine_results):
        base = engine_results["nosec"]
        assert normalized_ipc(engine_results["plutus"], base) > normalized_ipc(
            engine_results["pssm"], base
        )

    def test_cross_trace_comparison_rejected(self, engine_results, lbm_log):
        from repro.gpu.simulator import replay_events
        from repro.secure.engine import NoSecurityEngine

        other = replay_events(
            lbm_log, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA
        )
        with pytest.raises(ValueError):
            normalized_ipc(engine_results["pssm"], other)

    def test_speedup_ratio(self, engine_results):
        ratio = speedup(
            engine_results["plutus"],
            engine_results["pssm"],
            engine_results["nosec"],
        )
        assert ratio > 1.0


class TestKernelTime:
    def test_memory_bound_trace_is_memory_bound(self, engine_results):
        estimate = estimate_kernel_time(engine_results["pssm"], VOLTA)
        assert estimate.memory_bound
        assert estimate.seconds == estimate.memory_seconds

    def test_more_traffic_more_time(self, engine_results):
        pssm = estimate_kernel_time(engine_results["pssm"], VOLTA)
        nosec = estimate_kernel_time(engine_results["nosec"], VOLTA)
        assert pssm.memory_seconds > nosec.memory_seconds

    def test_invalid_ipc_rejected(self, engine_results):
        with pytest.raises(ValueError):
            estimate_kernel_time(engine_results["pssm"], VOLTA, ipc_per_sm=0)
