"""Seeded chaos mode: the supervisor's own adversary.

PR 3 injects faults into the *secure-memory model*; chaos mode injects
faults into the *campaign runtime* — randomly killing, delaying, or
OOM-ing unit attempts — so the retry machinery, journaling, and budget
degradation are exercised on demand instead of only when CI happens to
misbehave.

Every strike decision is a pure function of ``(seed, unit_id,
attempt)``: a chaos campaign is exactly reproducible, a killed attempt
can legitimately succeed on retry (the attempt number changes the
draw), and a failure found under ``--chaos --chaos-seed N`` replays
forever.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ResilienceError


class ChaosKill(RuntimeError):
    """Synthetic worker death (classified as a retryable CRASH)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Strike probabilities and magnitudes for one chaos campaign."""

    seed: int = 7
    kill_prob: float = 0.2
    delay_prob: float = 0.25
    oom_prob: float = 0.05
    max_delay_s: float = 0.02
    #: Transient allocation held just long enough to move the heap
    #: watermark before the simulated OOM is raised.
    oom_bytes: int = 4 << 20

    def __post_init__(self) -> None:
        for name in ("kill_prob", "delay_prob", "oom_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ResilienceError(f"{name} must be within [0, 1], got {p}")
        if self.max_delay_s < 0:
            raise ResilienceError("max_delay_s cannot be negative")
        if self.oom_bytes < 0:
            raise ResilienceError("oom_bytes cannot be negative")


class ChaosMonkey:
    """Deterministic strike generator mounted around unit attempts."""

    def __init__(
        self,
        config: ChaosConfig,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self.sleep = sleep
        self.kills = 0
        self.delays = 0
        self.ooms = 0

    @property
    def strikes(self) -> int:
        return self.kills + self.delays + self.ooms

    def strike(self, unit_id: str, attempt: int) -> None:
        """Maybe sabotage this (unit, attempt); raises to kill it.

        Draw order is fixed (kill, delay, oom) so the outcome for a
        given seed never depends on config probabilities being
        compared in a different order.
        """
        cfg = self.config
        rng = random.Random(f"chaos:{cfg.seed}:{unit_id}:{attempt}")
        if rng.random() < cfg.kill_prob:
            self.kills += 1
            raise ChaosKill(
                f"chaos: killed unit {unit_id[:8]} on attempt {attempt}"
            )
        if rng.random() < cfg.delay_prob:
            self.delays += 1
            self.sleep(rng.random() * cfg.max_delay_s)
        if rng.random() < cfg.oom_prob:
            self.ooms += 1
            ballast = bytearray(cfg.oom_bytes)
            del ballast
            raise MemoryError(
                f"chaos: simulated OOM in unit {unit_id[:8]} "
                f"on attempt {attempt}"
            )


@dataclass(frozen=True)
class WorkerChaosConfig:
    """Strike probabilities for *worker-process* sabotage.

    Where :class:`ChaosMonkey` fails unit attempts (exercising the
    retry policy), worker chaos attacks the distributed executor's
    process model: ``kill`` is a real ``SIGKILL`` of the worker itself
    (exercising lease expiry, stealing, and coordinator respawn) and
    ``freeze`` is a long stall with the heartbeat still beating
    (exercising straggler speculation — the lease stays fresh, the
    unit just never finishes on time).
    """

    seed: int = 7
    kill_prob: float = 0.2
    freeze_prob: float = 0.15
    freeze_s: float = 2.0

    def __post_init__(self) -> None:
        for name in ("kill_prob", "freeze_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ResilienceError(f"{name} must be within [0, 1], got {p}")
        if self.freeze_s < 0:
            raise ResilienceError("freeze_s cannot be negative")


class WorkerChaos:
    """Deterministic worker-process sabotage.

    Strikes are a pure function of ``(seed, worker_id, incarnation,
    unit_id)``. The incarnation — the coordinator bumps it on every
    respawn — is part of the draw so a respawned worker does not
    deterministically die at the same unit forever; with the same seed
    and respawn sequence the strike schedule still reproduces.
    """

    #: Fixed draw order, mirroring :class:`ChaosMonkey.strike`.
    def __init__(
        self,
        config: WorkerChaosConfig,
        worker_id: str,
        incarnation: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        kill: Callable[[], None] = lambda: os.kill(
            os.getpid(), signal.SIGKILL
        ),
    ) -> None:
        self.config = config
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.sleep = sleep
        self.kill = kill
        self.freezes = 0

    def draws(self, unit_id: str) -> "tuple[bool, bool]":
        """(kill?, freeze?) for this unit — pure, for tests and docs."""
        cfg = self.config
        rng = random.Random(
            f"worker-chaos:{cfg.seed}:{self.worker_id}"
            f":{self.incarnation}:{unit_id}"
        )
        kill = rng.random() < cfg.kill_prob
        freeze = rng.random() < cfg.freeze_prob
        return kill, freeze

    def strike(self, unit_id: str) -> None:
        """Maybe kill -9 this worker, or freeze it mid-unit."""
        kill, freeze = self.draws(unit_id)
        if kill:
            self.kill()
        if freeze:
            self.freezes += 1
            self.sleep(self.config.freeze_s)
