"""Tests for trace import/export."""

import io

import pytest

from repro.common.errors import TraceError
from repro.workloads.benchmarks import build_trace
from repro.workloads.trace import Trace, TraceAccess
from repro.workloads.traceio import (
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    merge_traces,
)


class TestRoundtrip:
    def test_full_roundtrip_preserves_everything(self):
        original = build_trace("bfs", length=80, seed=4)
        recovered = loads_trace(dumps_trace(original))
        assert recovered.name == original.name
        assert recovered.memory_intensity == original.memory_intensity
        assert recovered.instructions == original.instructions
        assert recovered.counter_warmup_passes == original.counter_warmup_passes
        assert len(recovered) == len(original)
        for a, b in zip(original, recovered):
            assert (a.line_addr, a.sector_mask, a.write) == (
                b.line_addr, b.sector_mask, b.write
            )
            assert a.values == b.values

    def test_roundtrip_without_values(self):
        original = build_trace("lbm", length=40, with_values=False)
        recovered = loads_trace(dumps_trace(original))
        assert all(a.values is None for a in recovered)

    def test_stream_interface(self):
        original = build_trace("histo", length=20)
        buffer = io.StringIO()
        dump_trace(original, buffer)
        buffer.seek(0)
        assert len(load_trace(buffer)) == 20


class TestParsing:
    def test_minimal_line(self):
        trace = loads_trace("R 0x0 0b0001\n")
        assert trace.accesses[0].line_addr == 0
        assert not trace.accesses[0].write

    def test_hex_image_parsed(self):
        image = bytes(range(32)).hex()
        trace = loads_trace(f"W 0x80 0b0010 {image}\n")
        assert trace.accesses[0].value_for(1) == bytes(range(32))

    def test_dash_skips_image(self):
        trace = loads_trace("R 0x0 0b0011 - -\n")
        assert trace.accesses[0].values is None

    def test_comments_and_blanks_ignored(self):
        trace = loads_trace("# hello\n\nR 0x0 0b0001\n")
        assert len(trace) == 1

    def test_header_sets_profile_facts(self):
        text = (
            "#repro-trace name=mykernel intensity=0.55 "
            "instructions=4242 warmup=7\n"
            "R 0x0 0b0001\n"
        )
        trace = loads_trace(text)
        assert trace.name == "mykernel"
        assert trace.memory_intensity == 0.55
        assert trace.instructions == 4242
        assert trace.counter_warmup_passes == 7


class TestErrors:
    def test_bad_direction(self):
        with pytest.raises(TraceError):
            loads_trace("X 0x0 0b0001\n")

    def test_short_line(self):
        with pytest.raises(TraceError):
            loads_trace("R 0x0\n")

    def test_wrong_image_count(self):
        with pytest.raises(TraceError):
            loads_trace("R 0x0 0b0011 " + "00" * 32 + "\n")

    def test_bad_hex(self):
        with pytest.raises(TraceError):
            loads_trace("R 0x0 0b0001 zz\n")

    def test_wrong_image_size(self):
        with pytest.raises(TraceError):
            loads_trace("R 0x0 0b0001 aabb\n")

    def test_empty_file(self):
        with pytest.raises(TraceError):
            loads_trace("# nothing here\n")


class TestMerge:
    def test_merge_concatenates(self):
        a = Trace(name="a", accesses=[TraceAccess(0, 1, False)],
                  memory_intensity=1.0)
        b = Trace(name="b", accesses=[TraceAccess(128, 1, True)] * 3,
                  memory_intensity=0.5, counter_warmup_passes=9)
        merged = merge_traces([a, b])
        assert len(merged) == 4
        assert merged.memory_intensity == pytest.approx((1.0 + 3 * 0.5) / 4)
        assert merged.counter_warmup_passes == 9

    def test_merge_nothing_rejected(self):
        with pytest.raises(TraceError):
            merge_traces([])
