"""Crash-atomic text writes: publish-or-nothing semantics."""

import os

import pytest

from repro.common.atomicio import atomic_write_text, fsync_directory


class TestAtomicWriteText:
    def test_creates_file_and_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(target, "payload\n")
        assert target.read_text() == "payload\n"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "payload")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_leaves_original_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(UnicodeEncodeError):
            atomic_write_text(target, "\udcff unencodable", encoding="ascii")
        assert target.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_fsync_false_still_atomic(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "payload", fsync=False)
        assert target.read_text() == "payload"

    def test_accepts_bare_filename(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        atomic_write_text("out.txt", "payload")
        assert (tmp_path / "out.txt").read_text() == "payload"


class TestFsyncDirectory:
    def test_existing_directory_is_fine(self, tmp_path):
        fsync_directory(str(tmp_path))

    def test_missing_directory_is_a_noop(self, tmp_path):
        fsync_directory(str(tmp_path / "nope"))
