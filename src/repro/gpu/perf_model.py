"""Bandwidth-bound performance model.

The paper reports throughput as IPC normalized to an insecure GPU. The
reproduction maps traffic to performance with the standard roofline
blend: a kernel that is memory-bound for fraction ``I`` of its time
slows down in proportion to the extra bytes it must move, while the
remaining ``1 - I`` is bandwidth-insensitive:

    slowdown = (1 - I) + I * bytes(design) / bytes(no security)
    IPC_norm = 1 / slowdown

``I`` comes from each benchmark's profile, matching the paper's
high/medium memory-intensity classification. The model also offers
absolute kernel-time estimates (compute/memory max) for the power model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import GpuConfig
from repro.gpu.simulator import SimulationResult


def slowdown_vs_baseline(
    total_bytes: int, baseline_bytes: int, memory_intensity: float
) -> float:
    """Roofline slowdown of a design over the no-security baseline."""
    if baseline_bytes <= 0:
        return 1.0
    if not 0.0 <= memory_intensity <= 1.0:
        raise ValueError("memory intensity must be within [0, 1]")
    ratio = total_bytes / baseline_bytes
    return (1.0 - memory_intensity) + memory_intensity * ratio


def normalized_ipc(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """IPC of *result* normalized to the insecure *baseline* run."""
    if result.trace_name != baseline.trace_name:
        raise ValueError(
            f"comparing different traces: {result.trace_name} "
            f"vs {baseline.trace_name}"
        )
    return 1.0 / slowdown_vs_baseline(
        result.total_bytes, baseline.total_bytes, result.memory_intensity
    )


def speedup(result: SimulationResult, reference: SimulationResult,
            baseline: SimulationResult) -> float:
    """Relative throughput of *result* over *reference*.

    Both are first normalized against the insecure *baseline*; the paper
    quotes Plutus-vs-PSSM numbers this way (e.g., +16.86% in Fig. 18).
    """
    return normalized_ipc(result, baseline) / normalized_ipc(reference, baseline)


@dataclass(frozen=True)
class KernelTimeEstimate:
    """Absolute time split of one simulated kernel."""

    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        """Roofline kernel time: bound by the slower of the two."""
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def memory_bound(self) -> bool:
        return self.memory_seconds >= self.compute_seconds


def estimate_kernel_time(
    result: SimulationResult, config: GpuConfig, ipc_per_sm: float = 1.0
) -> KernelTimeEstimate:
    """Roofline time estimate for one simulation result.

    Compute time assumes each SM retires ``ipc_per_sm`` instructions per
    cycle; memory time moves the observed bytes at effective DRAM
    bandwidth. Only ratios of these estimates are meaningful — which is
    all the power model consumes.
    """
    if ipc_per_sm <= 0:
        raise ValueError("ipc_per_sm must be positive")
    issue_rate = config.num_sms * ipc_per_sm * config.core_clock.hertz
    compute = result.instructions / issue_rate
    memory = config.dram.transfer_time(result.total_bytes)
    return KernelTimeEstimate(compute_seconds=compute, memory_seconds=memory)
