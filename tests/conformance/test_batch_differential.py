"""Batch-vs-scalar differential property suite.

The batch contract (``PartitionEngine.on_fill_batch`` and friends) is
that a batched call leaves the engine in *exactly* the state the
equivalent scalar sequence would — same traffic, same stats, same
internal structures. This suite checks the contract the strongest way
available: Hypothesis generates random single-partition traces and
random batch-boundary splits, both replays run to completion, and the
full observable surface is compared —

* ``TrafficCounter.state()`` (per-stream bytes and transactions),
* ``EngineStats`` equality, and
* ``PartitionEngine.state_digest()``, the sha256 of everything the
  engine's *future* behavior depends on (cache LRU orders, counter
  values, compact states, value-cache contents, ...).

The digest is the load-bearing half: two replays can agree on traffic
so far yet hold different internal state that diverges only on later
events; the digest catches the divergence at the first batched call.

Alongside the random properties, deterministic hammers pin the known
hard cases (minor-overflow re-encryption, compact-counter saturation,
the value cache's x-of-n verification bound), and the doctored-engine
tests prove the whole detection stack — this suite, the
``columnar-object-identity`` invariant, and ddmin shrinking — actually
fires when a batch hook is subtly wrong.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance.fuzzer import generate_log, rebuild_log, shrink
from repro.conformance.invariants import results_equal
from repro.gpu.columnar import EventKind
from repro.gpu.config import VOLTA
from repro.gpu.simulator import replay_events
from repro.harness.runner import engine_factories
from repro.mem.traffic import TrafficCounter
from repro.secure.pssm import PssmEngine
from repro.secure.value_cache import ValueCache

#: One partition's sector count on the reference GPU (Volta).
DATA_SECTORS = VOLTA.sectors_per_partition

#: Partition id is arbitrary but nonzero: common-counters salts its
#: initialization hash with it, so 0 would be a special case.
PARTITION = 3

#: Every roster design point, batch-native or not: the scalar-fallback
#: engines (recoverable) must satisfy the same contract trivially.
ENGINE_KEYS = (
    "nosec",
    "pssm",
    "common-counters",
    "plutus",
    "plutus:value-only",
    "compact:adaptive",
    "gran:32B-all",
    "recoverable",
    "pssm:4B-mac",
)

_FACTORIES = engine_factories()


def _hot_images():
    """A deterministic value pool with units on both sides of the
    3-of-4 verification bound (mirrors the value-bound fuzz pattern)."""
    rng = random.Random(0xBEEF)
    hot = [rng.getrandbits(32) for _ in range(3)]

    def image(hot_per_unit):
        words = []
        for _unit in range(2):
            picks = set(rng.sample(range(4), hot_per_unit))
            for slot in range(4):
                if slot in picks:
                    words.append((hot[rng.randrange(3)] & ~0xF)
                                 | rng.getrandbits(4))
                else:
                    words.append(rng.getrandbits(32))
        return b"".join(w.to_bytes(4, "little") for w in words)

    pool = [image(k) for k in (2, 3, 3, 4)]
    pool.append(hot[0].to_bytes(4, "little") * 8)  # fully hot
    pool.append(rng.getrandbits(256).to_bytes(32, "little"))  # cold
    return pool


VALUE_POOL = _hot_images()


# -- the two replays ---------------------------------------------------------


def _scalar_replay(key, events, passes):
    """Ground truth: the per-event hooks, in order."""
    traffic = TrafficCounter()
    engine = _FACTORIES[key](PARTITION, DATA_SECTORS, traffic)
    writebacks = [s for wb, s, _ in events if wb]
    for _ in range(passes):
        for sector in writebacks:
            engine.warm_counters(sector)
    for is_writeback, sector, value in events:
        if is_writeback:
            engine.on_writeback(sector, value)
        else:
            engine.on_fill(sector, value)
    engine.finalize()
    return engine.state_digest(), engine.stats, traffic.state()


def _batched_replay(key, events, passes, cuts):
    """The batch hooks over same-kind runs, split at *cuts*.

    *cuts* is a set of event indices where a run is forcibly broken,
    so the same trace is exercised under many different batch shapes —
    including degenerate length-1 batches.
    """
    traffic = TrafficCounter()
    engine = _FACTORIES[key](PARTITION, DATA_SECTORS, traffic)
    native = engine.batch_native

    writebacks = [s for wb, s, _ in events if wb]
    if writebacks and passes:
        if native:
            engine.warm_counters_batch(
                np.asarray(writebacks, dtype=np.int64), passes
            )
        else:
            engine.warm_counters_batch(writebacks, passes)

    start = 0
    for end in range(1, len(events) + 1):
        if (end < len(events) and events[end][0] == events[start][0]
                and end not in cuts):
            continue
        run = events[start:end]
        sectors = [s for _, s, _ in run]
        if native:
            sectors = np.asarray(sectors, dtype=np.int64)
        values = [v for _, _, v in run]
        if run[0][0]:
            engine.on_writeback_batch(sectors, values)
        else:
            engine.on_fill_batch(sectors, values)
        start = end
    engine.finalize()
    return engine.state_digest(), engine.stats, traffic.state()


def _assert_differential(key, events, passes, cuts):
    ref_digest, ref_stats, ref_traffic = _scalar_replay(key, events, passes)
    digest, stats, traffic = _batched_replay(key, events, passes, cuts)
    assert traffic == ref_traffic, f"{key}: traffic diverged"
    assert stats == ref_stats, f"{key}: engine stats diverged"
    assert digest == ref_digest, f"{key}: state digest diverged"


# -- hypothesis strategies ---------------------------------------------------


@st.composite
def traces(draw):
    """(events, warmup passes, batch cuts) for one partition.

    Sectors come from a narrow window so caches conflict, counters
    climb toward overflow, and the value pool actually re-occurs;
    values mix bound-straddling images, ``None`` (lost payloads), and
    the pool's cold entry.
    """
    base = draw(st.integers(min_value=0, max_value=4000))
    span = draw(st.integers(min_value=2, max_value=24))
    n = draw(st.integers(min_value=1, max_value=90))
    events = []
    for _ in range(n):
        is_writeback = draw(st.booleans())
        sector = base + draw(st.integers(min_value=0, max_value=span - 1))
        value = draw(st.one_of(
            st.none(), st.sampled_from(VALUE_POOL),
        ))
        events.append((is_writeback, sector, value))
    passes = draw(st.integers(min_value=0, max_value=3))
    cuts = draw(st.sets(st.integers(min_value=1, max_value=max(1, n - 1)),
                        max_size=8))
    return events, passes, cuts


class TestBatchScalarDifferential:
    """Random traces, random batch shapes, full-surface comparison."""

    @pytest.mark.parametrize("key", ENGINE_KEYS)
    @given(trace=traces())
    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_batched_replay_is_byte_identical(self, key, trace):
        events, passes, cuts = trace
        _assert_differential(key, events, passes, cuts)


class TestDeterministicHammers:
    """Pinned worst cases the random strategy only sometimes reaches."""

    def _storm(self, sectors, writes, rng):
        events = []
        for _ in range(writes):
            events.append(
                (True, rng.choice(sectors), rng.choice(VALUE_POOL))
            )
        for sector in sectors:
            events.append((False, sector, rng.choice(VALUE_POOL)))
        return events

    @pytest.mark.parametrize("key", ["pssm", "plutus", "compact:adaptive",
                                     "common-counters"])
    def test_overflow_and_saturation_under_batching(self, key):
        # 220 writes over 3 sectors: split-counter minor overflow fires
        # (64 writes per sector) and 3-bit compact counters saturate and
        # adaptively disable; warmup passes push state further still.
        rng = random.Random(11)
        events = self._storm([7000, 7001, 7002], 220, rng)
        for passes in (0, 20):
            for seed in range(3):
                cut_rng = random.Random(seed)
                cuts = {cut_rng.randrange(1, len(events))
                        for _ in range(6)}
                _assert_differential(key, events, passes, cuts)

    @pytest.mark.parametrize("key", ["plutus", "plutus:value-only"])
    def test_value_verification_bound_under_batching(self, key):
        # Interleave fills/writebacks whose images sit at 2-of-4 and
        # 3-of-4 hot words per unit — one short of, and exactly at, the
        # verification bound. A batch key-extraction or probe-order bug
        # flips mac_fetches_avoided / value_verified_fills immediately.
        rng = random.Random(23)
        events = []
        for i in range(160):
            events.append((
                i % 3 == 0,
                5000 + (i % 9),
                VALUE_POOL[i % len(VALUE_POOL)],
            ))
        cuts = {rng.randrange(1, len(events)) for _ in range(10)}
        _assert_differential(key, events, passes=1, cuts=cuts)

    @pytest.mark.parametrize("key", ENGINE_KEYS)
    def test_single_event_batches_degenerate_to_scalar(self, key):
        rng = random.Random(31)
        events = [(rng.random() < 0.5, 100 + rng.randrange(6),
                   rng.choice(VALUE_POOL)) for _ in range(40)]
        cuts = set(range(1, len(events)))  # every batch has length 1
        _assert_differential(key, events, passes=1, cuts=cuts)

    def test_malformed_image_falls_back_to_scalar_semantics(self):
        # A wrong-length payload must raise at exactly the event the
        # scalar sequence raises at — the batch path detects it during
        # key extraction and replays the run scalar.
        events = [(False, 50, VALUE_POOL[0]),
                  (False, 51, b"short"),
                  (False, 52, VALUE_POOL[1])]
        with pytest.raises(Exception) as scalar_err:
            _scalar_replay("plutus", events, 0)
        with pytest.raises(Exception) as batched_err:
            _batched_replay("plutus", events, 0, cuts=set())
        assert type(scalar_err.value) is type(batched_err.value)


# -- doctored implementations must be caught ---------------------------------


def _small_log(seed=5, pattern="uniform"):
    return generate_log(pattern, random.Random(seed), f"doctored-{pattern}")


class TestDoctoredImplementationsAreCaught:
    """Break a batch hook on purpose; every detection layer must fire."""

    def test_off_by_one_counter_batch_caught_by_identity_invariant(
        self, monkeypatch
    ):
        # Doctor: the fill batch advances every counter lookup by one
        # counter *line*. With the coarse BLOCK_128 design a line covers
        # 128 data sectors (4 counter sectors x 32), so that is the
        # smallest shift that actually changes the (line, mask) pair —
        # the classic off-by-one a vectorized line-index computation can
        # introduce. Fills then probe a different line than the
        # writebacks warmed, costing extra counter fetches.
        def doctored(self, sectors, values):
            self.stats.fills += len(sectors)
            self._batch_counter_reads(sectors + 128)
            self._batch_mac_reads(sectors)

        log = _small_log()
        factory = _FACTORIES["pssm"]
        scalar = replay_events(log, factory, VOLTA, workers=1, path="object")
        monkeypatch.setattr(PssmEngine, "on_fill_batch", doctored)
        columnar = replay_events(
            log, factory, VOLTA, workers=1, path="columnar"
        )
        # The columnar-object-identity invariant is results_equal over
        # exactly this pair; it must name the diverging surface.
        messages = results_equal(scalar, columnar)
        assert messages, "identity invariant failed to catch the doctoring"
        assert any("counter" in m or "stats" in m for m in messages)

    def test_skipped_value_observe_caught_by_state_digest(self, monkeypatch):
        # Doctor: the batch path forgets to train the value cache. The
        # traffic of a short trace may not diverge yet — but the state
        # digest must, because future MAC avoidance depends on the
        # cache's contents.
        events = [(i % 2 == 1, 300 + (i % 5), VALUE_POOL[i % 4])
                  for i in range(60)]
        ref_digest, _, _ = _scalar_replay("plutus", events, 0)
        monkeypatch.setattr(ValueCache, "observe_keys",
                            lambda self, keys: None)
        digest, _, _ = _batched_replay("plutus", events, 0, cuts=set())
        assert digest != ref_digest, (
            "state digest failed to catch the skipped value-cache training"
        )

    def test_differential_failure_shrinks_with_ddmin(self, monkeypatch):
        # The suite's failure path: shrink the breaking trace with the
        # fuzzer's ddmin to a minimal reproducer.
        monkeypatch.setattr(ValueCache, "observe_keys",
                            lambda self, keys: None)
        log = _small_log(seed=9, pattern="value-hot")
        events = [
            (ev.kind is EventKind.WRITEBACK, ev.sector_index, ev.values)
            for ev in log.events
        ]

        def disagrees(candidate):
            cand_events = [
                (ev.kind is EventKind.WRITEBACK, ev.sector_index, ev.values)
                for ev in candidate.events
            ]
            ref = _scalar_replay("plutus", cand_events, 0)[0]
            got = _batched_replay("plutus", cand_events, 0, set())[0]
            return ref != got

        if not disagrees(log):
            pytest.skip("trace never trains the value cache")
        minimal = shrink(log, disagrees)
        assert len(minimal.events) <= len(log.events)
        assert disagrees(rebuild_log(minimal, list(minimal.events)))
