"""Per-unit resource telemetry: measurement, roll-up, journal flow."""

import pytest

from repro.resilience import (
    Campaign,
    Supervisor,
    UnitTelemetry,
    WorkUnit,
    render_campaign_telemetry,
    rollup,
)


class TestUnitTelemetry:
    def test_as_dict_rounds_and_omits_missing_rss(self):
        tele = UnitTelemetry(
            wall_s=1.23456789, cpu_s=0.987654321, rss_mb=None, retries=2
        )
        payload = tele.as_dict()
        assert payload == {
            "wall_s": 1.234568,
            "cpu_s": 0.987654,
            "retries": 2,
        }

    def test_rss_included_when_measured(self):
        payload = UnitTelemetry(1.0, 0.5, rss_mb=42.3456, retries=0).as_dict()
        assert payload["rss_mb"] == 42.346

    def test_from_dict_tolerates_missing_fields(self):
        tele = UnitTelemetry.from_dict({})
        assert tele.wall_s == 0.0
        assert tele.cpu_s == 0.0
        assert tele.rss_mb is None
        assert tele.retries == 0


class TestRollup:
    def test_sums_and_peaks(self):
        summary = rollup(
            [
                {"wall_s": 1.0, "cpu_s": 0.5, "retries": 1, "rss_mb": 100.0},
                {"wall_s": 2.0, "cpu_s": 1.5, "retries": 0, "rss_mb": 250.0},
                {"wall_s": 0.5, "cpu_s": 0.25, "retries": 2},
            ]
        )
        assert summary["units"] == 3
        assert summary["wall_s"] == pytest.approx(3.5)
        assert summary["cpu_s"] == pytest.approx(2.25)
        assert summary["retries"] == 3
        assert summary["peak_rss_mb"] == 250.0

    def test_none_entries_are_unmeasured(self):
        summary = rollup([None, {"wall_s": 1.0}, None])
        assert summary["units"] == 1

    def test_empty_rollup_reports_zero_without_rss(self):
        summary = rollup([])
        assert summary == {
            "units": 0, "wall_s": 0.0, "cpu_s": 0.0, "retries": 0
        }


class TestRender:
    def test_zero_units_is_one_line(self):
        assert render_campaign_telemetry({"units": 0}) == (
            "telemetry: 0 measured unit(s)"
        )

    def test_full_block(self):
        text = render_campaign_telemetry(
            {
                "units": 3,
                "wall_s": 75.25,
                "cpu_s": 4.5,
                "retries": 2,
                "peak_rss_mb": 120.06,
            }
        )
        assert "3 measured unit(s)" in text
        assert "wall 1m15.2s" in text
        assert "cpu 4.50s" in text
        assert "retries 2" in text
        assert "peak rss 120.1 MiB" in text


def make_campaign(runners):
    return Campaign(
        name="tele",
        units=[
            WorkUnit(kind="cell", params={"i": i}, runner=fn, label=f"u{i}")
            for i, fn in enumerate(runners)
        ],
    )


class FakeClocks:
    """Deterministic wall/CPU clocks that tick on every read."""

    def __init__(self, wall_step=1.0, cpu_step=0.25):
        self.wall = 0.0
        self.cpu = 0.0
        self.wall_step = wall_step
        self.cpu_step = cpu_step

    def read_wall(self):
        self.wall += self.wall_step
        return self.wall

    def read_cpu(self):
        self.cpu += self.cpu_step
        return self.cpu


class TestSupervisorMeasurement:
    def make_supervisor(self, **kwargs):
        clocks = FakeClocks()
        return Supervisor(
            sleep=lambda _s: None,
            clock=clocks.read_wall,
            cpu_clock=clocks.read_cpu,
            rss_probe=lambda: 64.0,
            **kwargs,
        )

    def test_ok_unit_measured_deterministically(self):
        supervisor = self.make_supervisor()
        outcome = supervisor.run(make_campaign([lambda: {"v": 1}]))
        (unit,) = outcome.outcomes
        assert unit.telemetry is not None
        assert unit.telemetry["wall_s"] > 0
        assert unit.telemetry["cpu_s"] > 0
        assert unit.telemetry["rss_mb"] == 64.0
        assert unit.telemetry["retries"] == 0

    def test_retries_counted(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return {"v": 1}

        supervisor = self.make_supervisor()
        outcome = supervisor.run(make_campaign([flaky]))
        (unit,) = outcome.outcomes
        assert unit.status == "ok"
        assert unit.telemetry["retries"] == 2

    def test_failed_unit_still_measured(self):
        from repro.common.errors import ReproError

        def broken():
            raise ReproError("deterministic")

        supervisor = self.make_supervisor()
        outcome = supervisor.run(make_campaign([broken]))
        (unit,) = outcome.outcomes
        assert unit.status == "failed"
        assert unit.telemetry is not None
        assert unit.telemetry["retries"] == 0

    def test_campaign_rollup_on_outcome(self):
        supervisor = self.make_supervisor()
        outcome = supervisor.run(
            make_campaign([lambda: {"v": 1}, lambda: {"v": 2}])
        )
        assert outcome.telemetry["units"] == 2
        assert outcome.telemetry["peak_rss_mb"] == 64.0
        assert outcome.telemetry["wall_s"] == pytest.approx(
            sum(u.telemetry["wall_s"] for u in outcome.outcomes)
        )

    def test_journal_records_carry_telemetry(self, tmp_path):
        from repro.resilience import RunJournal

        campaign = make_campaign([lambda: {"v": 1}])
        journal = RunJournal.open(tmp_path, "run1", campaign)
        supervisor = self.make_supervisor(journal=journal)
        supervisor.run(campaign)
        records = journal.records()
        unit_record = next(r for r in records if r["type"] == "unit")
        assert "telemetry" in unit_record
        assert unit_record["telemetry"]["rss_mb"] == 64.0
        end_record = next(r for r in records if r["type"] == "end")
        assert end_record["telemetry"]["units"] == 1

    def test_skipped_units_carry_no_telemetry(self, tmp_path):
        from repro.resilience import RunJournal

        campaign = make_campaign([lambda: {"v": 1}])
        journal = RunJournal.open(tmp_path, "run1", campaign)
        self.make_supervisor(journal=journal).run(campaign)
        resumed_journal = RunJournal.open(tmp_path, "run1", campaign)
        outcome = self.make_supervisor(journal=resumed_journal).run(campaign)
        (unit,) = outcome.outcomes
        assert unit.status == "skipped"
        assert unit.telemetry is None
        assert outcome.telemetry["units"] == 0
