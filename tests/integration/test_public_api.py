"""Tests for the public API surface (repro and repro.core)."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_types_importable(self):
        from repro import GpuConfig, SecureMemory, VOLTA, build_trace

        assert VOLTA.num_partitions == 32
        assert callable(build_trace)
        assert SecureMemory and GpuConfig


class TestCorePackage:
    def test_core_reexports_the_contribution(self):
        from repro.core import (
            CompactCounterState,
            GranularityDesign,
            PlutusEngine,
            SecureMemory,
            ValueCache,
        )

        assert PlutusEngine.name == "plutus"
        assert SecureMemory and ValueCache and CompactCounterState
        assert GranularityDesign.ALL_32

    def test_core_all_resolves(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert getattr(core, name, None) is not None, name


class TestSubpackageAlls:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.common",
            "repro.crypto",
            "repro.mem",
            "repro.metadata",
            "repro.secure",
            "repro.gpu",
            "repro.workloads",
            "repro.analysis",
            "repro.harness",
        ],
    )
    def test_every_all_name_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert getattr(mod, name, None) is not None, f"{module}.{name}"
