"""Glue for the ``conform`` subcommand.

Thin composition over :mod:`repro.conformance`: run the golden corpus
and/or a seeded fuzz campaign, bundle the outcomes, and expose one
``ok`` flag the CLI turns into an exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.conformance.corpus import CorpusOutcome, run_corpus
from repro.conformance.fuzzer import FuzzReport, fuzz
from repro.conformance.matrix import DEFAULT_FUNCTIONAL_EVENTS


@dataclass
class ConformOutcome:
    """What one ``conform`` invocation checked and found."""

    corpus: Optional[CorpusOutcome] = None
    fuzz: Optional[FuzzReport] = None

    @property
    def ok(self) -> bool:
        if self.corpus is not None and not self.corpus.ok:
            return False
        if self.fuzz is not None and not self.fuzz.ok:
            return False
        return True


def run_conform(
    corpus: bool = True,
    fuzz_iterations: int = 0,
    seed: int = 2023,
    update: bool = False,
    corpus_dir: Optional[Path] = None,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
) -> ConformOutcome:
    """Run the requested conformance stages and bundle their outcomes."""
    outcome = ConformOutcome()
    if corpus or update:
        outcome.corpus = run_corpus(
            corpus_dir=corpus_dir,
            update=update,
            functional_events=functional_events,
        )
    if fuzz_iterations > 0:
        outcome.fuzz = fuzz(
            fuzz_iterations, seed, functional_events=functional_events
        )
    return outcome
