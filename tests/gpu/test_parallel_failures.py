"""Failure handling of the partition-sharded parallel replay path.

Crash-class failures (a worker process dying, a shard exceeding the
timeout) must *degrade* — the affected partitions are retried serially
in-process under a RuntimeWarning, and the merged result stays
byte-identical to the all-serial reference. Deterministic shard
exceptions would fail identically on retry, so they abort with a
SimulationError naming the partition, chained to the original.

The misbehaving engines below act up only inside worker processes
(detected by PID), so the in-process serial retry — and the serial
reference replay — see a perfectly ordinary PSSM engine.
"""

import os
import time
import warnings

import pytest

from repro.common.errors import SimulationError
from repro.gpu.config import VOLTA
from repro.gpu.simulator import replay_events
from repro.harness.runner import EngineSpec
from repro.obs import ObsConfig, ObsSession, activate
from repro.secure.pssm import PssmEngine

# Each case spins up (and deliberately wrecks) a process pool; keep the
# suite out of the `-m "not slow"` inner loop (tier-1 runs everything).
pytestmark = pytest.mark.slow

#: PID of the process that imported this module; forked pool workers
#: see a different value, which is how the engines below tell "I am in
#: a worker" from "I am the serial retry".
_MAIN_PID = os.getpid()


class _WorkerKillingEngine(PssmEngine):
    """Kills the hosting *worker* process; harmless in the main process."""

    def __init__(self, partition_id, data_sectors, traffic, **kwargs):
        if os.getpid() != _MAIN_PID:
            os._exit(17)
        super().__init__(partition_id, data_sectors, traffic, **kwargs)


class _SlowWorkerEngine(PssmEngine):
    """Stalls construction inside workers long enough to trip a timeout."""

    def __init__(self, partition_id, data_sectors, traffic, **kwargs):
        if os.getpid() != _MAIN_PID:
            time.sleep(2.0)
        super().__init__(partition_id, data_sectors, traffic, **kwargs)


class _AlwaysFailingEngine(PssmEngine):
    """Deterministic failure: raises everywhere, including on retry."""

    def __init__(self, partition_id, data_sectors, traffic, **kwargs):
        raise ValueError(f"engine exploded on partition {partition_id}")


def _result_tuple(result):
    return (
        result.engine_name,
        result.trace_name,
        result.memory_intensity,
        result.instructions,
        result.traffic,
        result.engine_stats,
        result.l2_stats,
    )


class TestCrashDegradation:
    def test_killed_worker_degrades_to_serial_retry(self, bfs_log):
        factory = EngineSpec(_WorkerKillingEngine)
        reference = replay_events(bfs_log, factory, VOLTA, workers=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = replay_events(bfs_log, factory, VOLTA, workers=2)
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert any("retrying those partitions serially" in m
                   for m in messages)
        assert any("BrokenProcessPool" in m for m in messages)
        assert _result_tuple(degraded) == _result_tuple(reference)

    def test_timeout_degrades_to_serial_retry(self, bfs_log):
        factory = EngineSpec(_SlowWorkerEngine)
        reference = replay_events(bfs_log, factory, VOLTA, workers=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = replay_events(
                bfs_log, factory, VOLTA, workers=2, shard_timeout=0.25
            )
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert any("timeout after 0.25s" in m for m in messages)
        assert _result_tuple(degraded) == _result_tuple(reference)

    def test_degradation_counts_retries(self, bfs_log):
        factory = EngineSpec(_WorkerKillingEngine)
        obs = ObsSession(ObsConfig(enabled=True))
        with activate(obs):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                replay_events(bfs_log, factory, VOLTA, workers=2)
        assert obs.registry.counter("replay.shard_retries").value >= 1


class TestDeterministicFailure:
    def test_shard_exception_chains_partition_context(self, bfs_log):
        factory = EngineSpec(_AlwaysFailingEngine)
        with pytest.raises(SimulationError) as info:
            replay_events(bfs_log, factory, VOLTA, workers=2)
        message = str(info.value)
        assert "shard replay failed for partition" in message
        assert bfs_log.trace_name in message
        assert "events" in message
        assert isinstance(info.value.__cause__, ValueError)


class TestTimeoutValidation:
    def test_nonpositive_timeout_rejected(self, bfs_log):
        factory = EngineSpec(PssmEngine)
        with pytest.raises(ValueError):
            replay_events(
                bfs_log, factory, VOLTA, workers=2, shard_timeout=0.0
            )
        with pytest.raises(ValueError):
            replay_events(
                bfs_log, factory, VOLTA, workers=1, shard_timeout=-1.0
            )

    def test_timeout_with_fast_shards_is_inert(self, bfs_log):
        factory = EngineSpec(PssmEngine)
        reference = replay_events(bfs_log, factory, VOLTA, workers=1)
        timed = replay_events(
            bfs_log, factory, VOLTA, workers=2, shard_timeout=120.0
        )
        assert _result_tuple(timed) == _result_tuple(reference)
