"""AES tests pinned to the FIPS-197 vectors."""

import pytest

from repro.common.errors import BlockSizeError, KeySizeError
from repro.crypto.aes import (
    AES,
    gf256_mul,
    inv_sbox_table,
    sbox_table,
)

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFipsVectors:
    """Appendix C of FIPS-197."""

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = AES(key).encrypt_block(FIPS_PLAINTEXT)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        ct = AES(key).encrypt_block(FIPS_PLAINTEXT)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        ct = AES(key).encrypt_block(FIPS_PLAINTEXT)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        cipher = AES(bytes(range(key_len)))
        ct = cipher.encrypt_block(FIPS_PLAINTEXT)
        assert cipher.decrypt_block(ct) == FIPS_PLAINTEXT


class TestSbox:
    def test_first_canonical_entries(self):
        sbox = sbox_table()
        assert sbox[:8] == [0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5]
        assert sbox[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(sbox_table()) == list(range(256))

    def test_inverse_sbox_inverts(self):
        sbox, inv = sbox_table(), inv_sbox_table()
        for value in range(256):
            assert inv[sbox[value]] == value

    def test_sbox_has_no_fixed_points(self):
        sbox = sbox_table()
        assert all(sbox[v] != v for v in range(256))


class TestGf256:
    def test_identity(self):
        assert gf256_mul(0x57, 1) == 0x57

    def test_known_product(self):
        # FIPS-197 section 4.2: {57} x {13} = {fe}
        assert gf256_mul(0x57, 0x13) == 0xFE

    def test_doubling(self):
        assert gf256_mul(0x80, 2) == 0x1B  # reduction kicks in

    def test_commutative(self):
        for a, b in [(0x03, 0x55), (0xAA, 0x0F), (0xFF, 0xFF)]:
            assert gf256_mul(a, b) == gf256_mul(b, a)

    def test_zero_annihilates(self):
        assert gf256_mul(0xAB, 0) == 0


class TestKeyAndBlockValidation:
    def test_bad_key_sizes_rejected(self):
        for size in (0, 8, 15, 17, 31, 33, 64):
            with pytest.raises(KeySizeError):
                AES(b"\x00" * size)

    def test_bad_block_sizes_rejected(self):
        cipher = AES(b"\x00" * 16)
        with pytest.raises(BlockSizeError):
            cipher.encrypt_block(b"\x00" * 15)
        with pytest.raises(BlockSizeError):
            cipher.decrypt_block(b"\x00" * 17)

    def test_round_counts(self):
        assert AES(b"\x00" * 16).rounds == 10
        assert AES(b"\x00" * 24).rounds == 12
        assert AES(b"\x00" * 32).rounds == 14


class TestAvalanche:
    def test_single_bit_key_change_diffuses(self):
        pt = b"\x00" * 16
        a = AES(b"\x00" * 16).encrypt_block(pt)
        b = AES(b"\x01" + b"\x00" * 15).encrypt_block(pt)
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing > 40  # ~64 expected for a random function

    def test_single_bit_plaintext_change_diffuses(self):
        cipher = AES(b"\x13" * 16)
        a = cipher.encrypt_block(b"\x00" * 16)
        b = cipher.encrypt_block(b"\x80" + b"\x00" * 15)
        differing = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing > 40
