"""Human-readable summaries of supervised campaign outcomes.

Two renderers:

* :func:`render_outcome` — the supervisor's own summary (status, unit
  counts, retries, failures, degradation reason). Deliberately free of
  timings and run ids in its body lines so the text is stable across
  a fresh run and a kill/resume of the same campaign.
* :func:`missing_cell_lines` — the explicit "this cell is absent and
  here is why" lines a degraded report embeds, one per unfinished
  unit, using the stable degradation reasons from
  :mod:`repro.resilience.budget`.
"""

from __future__ import annotations

from typing import List

from repro.resilience.supervisor import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    CampaignOutcome,
)


def missing_cell_lines(outcome: CampaignOutcome) -> List[str]:
    """One ``MISSING`` line per unit that produced no result."""
    lines: List[str] = []
    for unit in outcome.outcomes:
        if unit.completed:
            continue
        detail = unit.error or "no result"
        if unit.status == STATUS_FAILED and unit.failure_class:
            detail = f"{unit.failure_class}: {detail}"
        lines.append(f"MISSING {unit.label}: {unit.status} ({detail})")
    return lines


def render_outcome(outcome: CampaignOutcome) -> str:
    """Summary block for one supervised campaign."""
    status = "PARTIAL" if outcome.partial else "COMPLETE"
    lines = [
        f"== campaign {outcome.campaign}: {status} ==",
        (
            f"units: {len(outcome.outcomes)} total, "
            f"{outcome.count('ok')} ok, "
            f"{outcome.count('skipped')} resumed, "
            f"{outcome.count(STATUS_FAILED)} failed, "
            f"{outcome.count(STATUS_CANCELLED)} cancelled"
        ),
    ]
    retries = sum(max(0, u.attempts - 1) for u in outcome.outcomes)
    if retries:
        lines.append(f"retries: {retries}")
    if outcome.degraded is not None:
        lines.append(f"degraded: {outcome.degraded}")
    lines.extend(missing_cell_lines(outcome))
    return "\n".join(lines)
