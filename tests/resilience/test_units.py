"""Content-addressed work units and campaign fingerprints."""

import pytest

from repro.common.errors import ResilienceError
from repro.resilience import (
    Campaign,
    WorkUnit,
    campaign_fingerprint,
    canonical_params,
    json_roundtrip,
)


def unit(value=1, kind="cell", **extra):
    return WorkUnit(
        kind=kind,
        params={"value": value, **extra},
        runner=lambda: {"value": value},
        label=f"cell[{value}]",
    )


class TestCanonicalParams:
    def test_key_order_does_not_matter(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params(
            {"b": 2, "a": 1}
        )

    def test_whitespace_free_and_sorted(self):
        assert canonical_params({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_non_jsonable_params_rejected(self):
        with pytest.raises(ResilienceError, match="not JSON-able"):
            canonical_params({"bad": object()})


class TestJsonRoundtrip:
    def test_preserves_dict_key_order(self):
        # Report tables render columns in insertion order, so the
        # roundtrip must not sort keys.
        assert list(json_roundtrip({"z": 1, "a": 2})) == ["z", "a"]

    def test_normalizes_tuples_to_lists(self):
        assert json_roundtrip({"axis": (1, 2)}) == {"axis": [1, 2]}

    def test_non_jsonable_result_rejected(self):
        with pytest.raises(ResilienceError, match="not JSON-able"):
            json_roundtrip({"bad": object()})


class TestWorkUnit:
    def test_identity_ignores_param_order_and_runner(self):
        a = WorkUnit(kind="cell", params={"x": 1, "y": 2}, runner=lambda: 1)
        b = WorkUnit(kind="cell", params={"y": 2, "x": 1}, runner=lambda: 2)
        assert a.unit_id == b.unit_id

    def test_identity_depends_on_params_and_kind(self):
        base = WorkUnit(kind="cell", params={"x": 1})
        assert base.unit_id != WorkUnit(kind="cell", params={"x": 2}).unit_id
        assert base.unit_id != WorkUnit(kind="other", params={"x": 1}).unit_id

    def test_label_defaults_to_kind(self):
        assert WorkUnit(kind="cell", params={}).label == "cell"

    def test_execute_without_runner_rejected(self):
        with pytest.raises(ResilienceError, match="no runner"):
            WorkUnit(kind="cell", params={}).execute()

    def test_execute_normalizes_result(self):
        u = WorkUnit(kind="cell", params={}, runner=lambda: {"axis": (1, 2)})
        assert u.execute() == {"axis": [1, 2]}


class TestCampaign:
    def test_empty_campaign_rejected(self):
        with pytest.raises(ResilienceError, match="no units"):
            Campaign(name="empty", units=[])

    def test_duplicate_unit_ids_rejected(self):
        with pytest.raises(ResilienceError, match="duplicate unit id"):
            Campaign(name="dup", units=[unit(1), unit(1)])

    def test_fingerprint_is_order_sensitive(self):
        forward = Campaign(name="c", units=[unit(1), unit(2)])
        backward = Campaign(name="c", units=[unit(2), unit(1)])
        assert forward.fingerprint != backward.fingerprint

    def test_fingerprint_depends_on_name(self):
        assert (
            Campaign(name="a", units=[unit(1)]).fingerprint
            != Campaign(name="b", units=[unit(1)]).fingerprint
        )

    def test_fingerprint_matches_helper(self):
        units = [unit(1), unit(2)]
        campaign = Campaign(name="c", units=units)
        assert campaign.fingerprint == campaign_fingerprint("c", units)

    def test_default_run_id_is_fingerprint_prefix(self):
        campaign = Campaign(name="c", units=[unit(1)])
        assert campaign.default_run_id == campaign.fingerprint[:12]
        assert len(campaign.default_run_id) == 12
