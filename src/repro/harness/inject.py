"""The ``inject`` harness subcommand: adversarial fault campaigns.

Mounts a named fault-injection campaign (see
:mod:`repro.faults.campaign`) against the secure-memory model, using a
benchmark trace as the victim workload so the attacked state has the
same spatial structure and value locality the performance experiments
exercise. The subcommand renders the detection matrix and exits
non-zero when any fault is missed, silently accepted outside the
quantified kinds, or accepted above the campaign's rate bound.

Campaigns whose workload is not ``"synthetic"`` (the value-stress
regime) bring their own purpose-built op stream; the benchmark then
only names the run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.common.errors import FaultInjectionError
from repro.faults.campaign import CampaignReport, campaign_spec, run_campaign
from repro.faults.crashpoints import (
    CrashReport,
    crash_campaign_spec,
    crash_ops_from_accesses,
    run_crash_campaign,
)
from repro.faults.workload import Op, ops_from_trace
from repro.gpu.config import VOLTA, GpuConfig
from repro.harness.runner import DEFAULT_TRACE_LENGTH, ExperimentContext
from repro.workloads.trace import Trace


@dataclass
class InjectResult:
    """One campaign run plus the workload it attacked."""

    benchmark: str
    campaign: str
    report: CampaignReport
    victim_ops: int

    @property
    def ok(self) -> bool:
        return self.report.ok


@dataclass
class InjectCrashResult:
    """One crash-torture sweep plus the workload it killed."""

    benchmark: str
    campaign: str
    report: CrashReport
    victim_ops: int

    @property
    def ok(self) -> bool:
        return self.report.ok


def _plan_viable(ops: List[Op]) -> bool:
    """Whether every plan kind can find targets in this op stream.

    Mirrors :func:`repro.faults.campaign.build_plans`: the earliest
    trigger candidate sits at two-thirds of the stream, and splicing
    needs two distinct written addresses before it.
    """
    earliest = max(2, (len(ops) * 2) // 3)
    written = {op.address for op in ops[:earliest] if op.write}
    return len(written) >= 2


def _victim_ops(trace: Trace, size_bytes: int, warmup_ops: int) -> List[Op]:
    """Distill a plan-viable op stream from *trace*.

    Read-heavy traces may take many accesses to write two distinct
    sectors; the limit doubles until the plans are viable or the trace
    is exhausted.
    """
    limit = warmup_ops
    while True:
        ops = ops_from_trace(trace, size_bytes, limit=limit)
        if _plan_viable(ops):
            return ops
        if len(ops) < limit:
            raise FaultInjectionError(
                f"trace {trace.name!r} never writes two distinct sectors; "
                "cannot target splicing faults"
            )
        limit *= 2


def inject_campaign(
    benchmark: str,
    campaign: str = "quick",
    *,
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 2023,
    engines: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
):
    """Build the fault campaign's work units without running them.

    Exactly the campaign :func:`run_inject` would execute (same spec,
    same victim ops, same seeded plans) — used as the worker-side
    factory of distributed runs, where every process must rebuild an
    identical, identically-fingerprinted campaign from JSON kwargs.
    Crash campaigns are deliberately not constructible here: they
    torture a single recoverable engine serially.
    """
    from repro.faults.campaign import build_plans, engine_campaign

    spec = campaign_spec(campaign)
    if engines is not None:
        spec = replace(spec, engines=tuple(engines))
    ops: Optional[List[Op]] = None
    if spec.workload == "synthetic":
        ctx = ExperimentContext(
            trace_length=length,
            seed=seed,
            benchmarks=[benchmark],
            cache_dir=cache_dir,
        )
        trace = ctx.trace(benchmark)
        ops = _victim_ops(trace, spec.size_bytes, spec.warmup_ops)
    if ops is None:
        from repro.faults.campaign import _default_ops

        ops = _default_ops(spec)
    plans = build_plans(spec, ops)
    return engine_campaign(spec, ops, plans)


def run_inject(
    benchmark: str,
    campaign: str = "quick",
    *,
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 2023,
    config: GpuConfig = VOLTA,
    engines: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    supervisor=None,
) -> InjectResult:
    """Run one campaign against a benchmark-derived victim workload.

    ``engines`` overrides the campaign's engine roster (e.g. the CI
    smoke runs two engines instead of three). ``supervisor`` opts into
    resilient per-engine execution (retry, budgets, chaos); see
    :func:`repro.faults.campaign.run_campaign`. Raises
    :class:`~repro.common.errors.FaultInjectionError` for unknown
    campaign names or unviable plans.
    """
    spec = campaign_spec(campaign)
    if engines is not None:
        spec = replace(spec, engines=tuple(engines))

    ops: Optional[List[Op]] = None
    if spec.workload == "synthetic":
        ctx = ExperimentContext(
            config=config,
            trace_length=length,
            seed=seed,
            benchmarks=[benchmark],
            cache_dir=cache_dir,
        )
        trace = ctx.trace(benchmark)
        ops = _victim_ops(trace, spec.size_bytes, spec.warmup_ops)

    # The supervisor kwarg is only forwarded when set: tests (and other
    # callers) may substitute run_campaign with a (spec, ops) callable.
    if supervisor is None:
        report = run_campaign(spec, ops=ops)
    else:
        report = run_campaign(spec, ops=ops, supervisor=supervisor)
    victim = len(ops) if ops is not None else spec.warmup_ops
    return InjectResult(
        benchmark=benchmark,
        campaign=campaign,
        report=report,
        victim_ops=victim,
    )


def run_inject_crash(
    benchmark: str,
    campaign: str = "crash",
    *,
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 2023,
    config: GpuConfig = VOLTA,
    cache_dir: Optional[str] = None,
    supervisor_factory=None,
) -> InjectCrashResult:
    """Run one crash-point torture sweep on a benchmark-shaped workload.

    The benchmark trace supplies the access *shape* (read/write mix and
    hot-sector locality, folded into the campaign's tiny footprint);
    :func:`~repro.faults.crashpoints.crash_ops_from_accesses` appends a
    deterministic tail so every persist-barrier op class fires even for
    read-heavy traces. ``supervisor_factory`` enables journaled,
    resumable supervision — it receives the concrete campaign and
    returns the supervisor.
    """
    spec = crash_campaign_spec(campaign)
    ctx = ExperimentContext(
        config=config,
        trace_length=length,
        seed=seed,
        benchmarks=[benchmark],
        cache_dir=cache_dir,
    )
    trace = ctx.trace(benchmark)
    victim = ops_from_trace(trace, spec.size_bytes, limit=spec.num_ops)
    accesses = [(op.address, op.write) for op in victim]
    ops = crash_ops_from_accesses(spec, accesses)
    report = run_crash_campaign(
        spec, ops=ops, supervisor_factory=supervisor_factory
    )
    return InjectCrashResult(
        benchmark=benchmark,
        campaign=campaign,
        report=report,
        victim_ops=len(ops),
    )
