"""Sensitivity and robustness sweeps beyond the paper's figures.

The paper reports single-configuration numbers; a reproduction should
also show they are *stable*. This module sweeps the axes most likely to
move the headline result:

* :func:`sweep_seeds` — trace-generation randomness: the Plutus-vs-PSSM
  speedup should vary little across seeds (it is a property of the
  workload class, not of one drawn trace);
* :func:`sweep_trace_length` — window-size convergence: the speedup
  should stabilize as the simulated window grows;
* :func:`sweep_metadata_cache` — the 2 kB per-partition metadata caches
  of Table II: how sensitive each design is to that SRAM budget
  (Plutus's fine-grained metadata makes better use of small caches);
* :func:`sweep_memory_intensity` — the performance-model blend: gains
  scale with how memory-bound the kernel is, vanishing at I = 0.

Each sweep returns plain row dictionaries renderable with
:func:`repro.harness.report.format_table`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.gpu.config import GpuConfig, VOLTA
from repro.gpu.perf_model import normalized_ipc, slowdown_vs_baseline
from repro.gpu.simulator import replay_events, simulate_l2
from repro.harness.runner import EngineSpec, ExperimentContext
from repro.secure.engine import MetadataCacheConfig, NoSecurityEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine
from repro.workloads.benchmarks import build_trace


def _speedup_for_trace(trace, config: GpuConfig = VOLTA,
                       cache_config: Optional[MetadataCacheConfig] = None,
                       workers: "int | None" = 1):
    """(pssm_ipc, plutus_ipc, speedup) for one prepared trace.

    Factories are picklable :class:`EngineSpec` instances, so sweeps
    can shard their replays across worker processes (``workers``
    follows :func:`repro.gpu.simulator.replay_events` semantics).
    """
    log = simulate_l2(trace, config)
    kwargs = {}
    if cache_config is not None:
        kwargs["cache_config"] = cache_config
    base = replay_events(
        log, EngineSpec(NoSecurityEngine), config, workers=workers
    )
    pssm = replay_events(
        log, EngineSpec(PssmEngine, **kwargs), config, workers=workers
    )
    plutus = replay_events(
        log, EngineSpec(PlutusEngine, **kwargs), config, workers=workers
    )
    pssm_ipc = normalized_ipc(pssm, base)
    plutus_ipc = normalized_ipc(plutus, base)
    return pssm_ipc, plutus_ipc, plutus_ipc / pssm_ipc


def sweep_seeds(
    benchmark: str,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    trace_length: int = 8000,
    workers: "int | None" = 1,
) -> List[Dict[str, object]]:
    """Plutus-vs-PSSM speedup across trace-generation seeds."""
    rows: List[Dict[str, object]] = []
    for seed in seeds:
        trace = build_trace(benchmark, length=trace_length, seed=seed)
        pssm, plutus, speedup = _speedup_for_trace(trace, workers=workers)
        rows.append(
            {
                "seed": seed,
                "pssm_ipc": pssm,
                "plutus_ipc": plutus,
                "speedup": speedup,
            }
        )
    return rows


def sweep_trace_length(
    benchmark: str,
    lengths: Sequence[int] = (2000, 4000, 8000, 16000),
    seed: int = 2023,
    workers: "int | None" = 1,
) -> List[Dict[str, object]]:
    """Window-size convergence of the headline speedup."""
    rows: List[Dict[str, object]] = []
    for length in lengths:
        trace = build_trace(benchmark, length=length, seed=seed)
        _pssm, _plutus, speedup = _speedup_for_trace(trace, workers=workers)
        rows.append({"length": length, "speedup": speedup})
    return rows


def sweep_metadata_cache(
    benchmark: str,
    sizes: Sequence[int] = (1024, 2048, 4096, 8192),
    trace_length: int = 8000,
    seed: int = 2023,
    workers: "int | None" = 1,
) -> List[Dict[str, object]]:
    """Sensitivity to the per-partition metadata cache budget."""
    trace = build_trace(benchmark, length=trace_length, seed=seed)
    rows: List[Dict[str, object]] = []
    for size in sizes:
        cache_config = MetadataCacheConfig(size_bytes=size)
        pssm, plutus, speedup = _speedup_for_trace(
            trace, cache_config=cache_config, workers=workers
        )
        rows.append(
            {
                "cache_bytes": size,
                "pssm_ipc": pssm,
                "plutus_ipc": plutus,
                "speedup": speedup,
            }
        )
    return rows


def sweep_memory_intensity(
    ctx: ExperimentContext,
    benchmark: str,
    intensities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> List[Dict[str, object]]:
    """How the roofline blend maps traffic into performance.

    Re-uses the already-simulated traffic of *benchmark* and re-blends
    it at different memory intensities, isolating the performance-model
    assumption from the traffic measurement.
    """
    base = ctx.run(benchmark, "nosec")
    pssm = ctx.run(benchmark, "pssm")
    plutus = ctx.run(benchmark, "plutus")
    rows: List[Dict[str, object]] = []
    for intensity in intensities:
        pssm_ipc = 1.0 / slowdown_vs_baseline(
            pssm.total_bytes, base.total_bytes, intensity
        )
        plutus_ipc = 1.0 / slowdown_vs_baseline(
            plutus.total_bytes, base.total_bytes, intensity
        )
        rows.append(
            {
                "memory_intensity": intensity,
                "pssm_ipc": pssm_ipc,
                "plutus_ipc": plutus_ipc,
                "speedup": plutus_ipc / pssm_ipc,
            }
        )
    return rows


def sweep_partitions(
    benchmark: str,
    partition_counts: Sequence[int] = (8, 16, 32),
    trace_length: int = 6000,
    seed: int = 2023,
    workers: "int | None" = 1,
) -> List[Dict[str, object]]:
    """Scalability across memory-partition counts.

    Smaller GPUs concentrate the same metadata into fewer engines with
    the same per-partition SRAM; the relative Plutus win should persist.
    """
    rows: List[Dict[str, object]] = []
    trace = build_trace(benchmark, length=trace_length, seed=seed)
    for count in partition_counts:
        config = replace(
            VOLTA,
            address_map=replace(VOLTA.address_map, num_partitions=count),
            dram=replace(VOLTA.dram, num_partitions=count),
        )
        _pssm, _plutus, speedup = _speedup_for_trace(
            trace, config=config, workers=workers
        )
        rows.append({"partitions": count, "speedup": speedup})
    return rows
