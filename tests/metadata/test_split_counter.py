"""Tests for the split-counter organization."""

import pytest

from repro.common.errors import ConfigurationError, CounterOverflowError
from repro.metadata.split_counter import SplitCounterConfig, SplitCounterStore


class TestConfig:
    def test_default_geometry(self):
        config = SplitCounterConfig()
        assert config.minor_limit == 64
        # 8 B major + 32 x 6-bit minors = 32 B: one counter sector.
        assert config.group_bytes == 32

    def test_minors_must_pack_to_bytes(self):
        with pytest.raises(ConfigurationError):
            SplitCounterConfig(minor_bits=5, sectors_per_group=3)

    def test_invalid_widths_rejected(self):
        with pytest.raises(ConfigurationError):
            SplitCounterConfig(minor_bits=0)
        with pytest.raises(ConfigurationError):
            SplitCounterConfig(sectors_per_group=0)


class TestCountersStartAtZero:
    def test_untouched_sector_is_zero(self):
        store = SplitCounterStore()
        assert store.value(123) == (0, 0)
        assert store.combined(123) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            SplitCounterStore().value(-1)


class TestIncrement:
    def test_simple_increment(self):
        store = SplitCounterStore()
        outcome = store.increment(5)
        assert (outcome.major, outcome.minor) == (0, 1)
        assert not outcome.minor_overflowed
        assert store.combined(5) == 1

    def test_combined_encodes_major_and_minor(self):
        store = SplitCounterStore(SplitCounterConfig(minor_bits=6))
        for _ in range(3):
            store.increment(0)
        assert store.combined(0) == 3

    def test_independent_sectors(self):
        store = SplitCounterStore()
        store.increment(0)
        assert store.combined(1) == 0


class TestMinorOverflow:
    def test_overflow_bumps_major_and_resets_group(self):
        config = SplitCounterConfig(minor_bits=2, sectors_per_group=4)
        store = SplitCounterStore(config)
        store.increment(1)  # neighbour with some count
        outcome = None
        for _ in range(4):  # minor_limit = 4 -> 4th increment overflows
            outcome = store.increment(0)
        assert outcome.minor_overflowed
        assert outcome.major == 1
        assert outcome.reencrypted_sectors == (0, 1, 2, 3)
        # Neighbour minor was reset; shares the new major.
        assert store.value(1) == (1, 0)
        # The written sector advances to minor 1 under the new major.
        assert store.value(0) == (1, 1)

    def test_overflow_event_counted(self):
        config = SplitCounterConfig(minor_bits=2, sectors_per_group=4)
        store = SplitCounterStore(config)
        for _ in range(4):
            store.increment(0)
        assert store.overflow_events == 1

    def test_combined_is_monotone_through_overflow(self):
        """The tweak-visible counter must never repeat for a sector."""
        config = SplitCounterConfig(minor_bits=2, sectors_per_group=4)
        store = SplitCounterStore(config)
        seen = {store.combined(0)}
        for _ in range(10):
            store.increment(0)
            combined = store.combined(0)
            assert combined not in seen
            seen.add(combined)

    def test_major_exhaustion_raises(self):
        config = SplitCounterConfig(minor_bits=2, major_bits=1, sectors_per_group=4)
        store = SplitCounterStore(config)
        for _ in range(4):
            store.increment(0)  # major -> 1 (its ceiling)
        with pytest.raises(CounterOverflowError):
            for _ in range(4):
                store.increment(0)


class TestBookkeeping:
    def test_touched_sectors(self):
        store = SplitCounterStore()
        store.increment(3)
        store.increment(9)
        store.increment(3)
        assert store.touched_sectors() == 2

    def test_group_of(self):
        store = SplitCounterStore(SplitCounterConfig(sectors_per_group=32))
        assert store.group_of(0) == 0
        assert store.group_of(31) == 0
        assert store.group_of(32) == 1
