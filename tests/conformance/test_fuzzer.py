"""Fuzzer tests: determinism, pattern validity, ddmin shrinking."""

import random

import pytest

import repro.conformance.fuzzer as fuzzer_mod
from repro.conformance.fuzzer import (
    PATTERNS,
    fuzz,
    generate_log,
    rebuild_log,
    shrink,
)
from repro.gpu.simulator import EventKind
from repro.workloads.traceio import dumps_event_log


class TestGenerators:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_counts_match_events(self, pattern):
        log = generate_log(pattern, random.Random(99), f"t-{pattern}")
        fills = sum(1 for e in log.events if e.kind is EventKind.FILL)
        assert log.fill_sectors == fills
        assert log.writeback_sectors == len(log.events) - fills
        assert log.events

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_deterministic_for_a_seed(self, pattern):
        a = generate_log(pattern, random.Random(7), "t")
        b = generate_log(pattern, random.Random(7), "t")
        assert dumps_event_log(a) == dumps_event_log(b)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError, match="doom"):
            generate_log("doom", random.Random(0), "t")

    def test_write_storm_is_write_heavy(self):
        log = generate_log("write-storm", random.Random(5), "t")
        assert log.writeback_sectors > log.fill_sectors

    def test_value_thrash_values_all_distinct(self):
        log = generate_log("value-thrash", random.Random(5), "t")
        values = [e.values for e in log.events]
        assert len(set(values)) == len(values)


class TestShrink:
    def test_minimizes_to_predicate_core(self):
        log = generate_log("uniform", random.Random(1), "t")
        magic = log.events[len(log.events) // 2].sector_index

        def predicate(candidate):
            return any(e.sector_index == magic for e in candidate.events)

        shrunk = shrink(log, predicate)
        assert len(shrunk.events) == 1
        assert shrunk.events[0].sector_index == magic
        assert predicate(shrunk)

    def test_counts_recomputed_on_shrunk_log(self):
        log = generate_log("uniform", random.Random(2), "t")

        def predicate(candidate):
            return candidate.writeback_sectors >= 2

        shrunk = shrink(log, predicate)
        assert shrunk.writeback_sectors == 2
        assert shrunk.fill_sectors == 0
        assert len(shrunk.events) == 2

    def test_original_log_not_mutated(self):
        log = generate_log("uniform", random.Random(3), "t")
        before = dumps_event_log(log)
        shrink(log, lambda candidate: bool(candidate.events))
        assert dumps_event_log(log) == before

    def test_rejects_non_failing_original(self):
        log = generate_log("uniform", random.Random(4), "t")
        with pytest.raises(ValueError):
            shrink(log, lambda candidate: False)


class TestFuzzCampaign:
    def test_small_campaign_passes(self):
        report = fuzz(2, seed=2023, functional_events=24)
        assert report.ok
        assert report.iterations == 2
        assert sum(report.pattern_counts.values()) == 2

    def test_rejects_nonpositive_iterations(self):
        with pytest.raises(ValueError):
            fuzz(0, seed=1)

    def test_injected_violation_is_shrunk(self, monkeypatch):
        # Simulate an invariant violation triggered by any writeback:
        # the campaign must record the failure and hand back a ddmin
        # reproducer strictly smaller than the generating log.
        from repro.conformance.invariants import Violation

        def fake_evaluate(log, **kwargs):
            if any(e.kind is EventKind.WRITEBACK for e in log.events):
                return [Violation("injected", "writeback present")]
            return []

        monkeypatch.setattr(fuzzer_mod, "evaluate_log", fake_evaluate)
        report = fuzz(3, seed=2023, functional_events=8)
        assert not report.ok
        failure = report.failures[0]
        assert len(failure.shrunk.events) < len(failure.log.events)
        assert len(failure.shrunk.events) == 1
        assert failure.shrunk.events[0].kind is EventKind.WRITEBACK
        assert failure.violations


class TestRebuild:
    def test_rebuild_preserves_profile(self):
        log = generate_log("sweep", random.Random(6), "profile-check")
        rebuilt = rebuild_log(log, log.events[:3])
        assert rebuilt.trace_name == log.trace_name
        assert rebuilt.counter_warmup_passes == log.counter_warmup_passes
        assert len(rebuilt.events) == 3
