"""CLI entry: ``python -m repro.harness [experiment ...]``.

Runs the requested experiments (default: all) and prints their reports.
Useful flags: ``--length`` to control trace size, ``--benchmarks`` to
restrict the roster, ``--workers`` to shard engine replay across a
process pool (default ``auto`` = one per core; ``1`` forces the serial
reference path), ``--cache-dir`` to relocate or disable the on-disk
trace/event-log cache.

``python -m repro.harness profile <benchmark>`` instead runs one fully
instrumented simulation and renders the observability dashboard; see
docs/ARCHITECTURE.md § Observability.

``python -m repro.harness inject <benchmark> --campaign <name>`` mounts
an adversarial fault-injection campaign against the secure-memory model
and prints the detection matrix, exiting 1 if any injected fault is
missed; see docs/ARCHITECTURE.md § Fault model & injection.

``python -m repro.harness conform [--corpus|--fuzz N] [--update]`` runs
the differential conformance subsystem — golden corpus, cross-engine
invariants, seeded trace fuzzer — and exits 1 on any invariant
violation or snapshot drift; see docs/ARCHITECTURE.md § Conformance.

``python -m repro.harness sweep <axis> <benchmark>`` runs one
sensitivity sweep as a supervised campaign: every cell is a journaled
work unit, so ``--resume <run-id>`` after a crash re-runs only the
unfinished cells, ``--budget`` degrades gracefully into an explicit
partial report, and ``--chaos`` sabotages the runtime on purpose; see
docs/ARCHITECTURE.md § Resilient execution. With ``--workers N``
(N >= 2) the campaign runs on N worker *subprocesses* pulling from a
shared lease-based work queue — dead workers are detected by
heartbeat and their units stolen, ``--speculate`` duplicates
stragglers, and the merged report stays byte-identical to a serial
run; see docs/ARCHITECTURE.md § Distributed execution. The same flag
reaches ``inject``, ``conform --fuzz``, and the experiments command.

``python -m repro.harness status <journal>`` monitors a supervised run
from its journal, read-only and safe against the live campaign;
``--follow`` tails it to completion, and distributed runs get a
per-worker roll-up (throughput, leases held, steals, speculations).
See docs/SCHEMAS.md for the journal record layout it consumes.

``python -m repro.harness cache stats|gc`` inspects the shared
artifact store: entry/byte counts and lifetime hit/corruption
counters, plus LRU eviction down to ``--max-bytes`` that never evicts
entries pinned by an in-flight campaign.

``python -m repro.harness bench`` measures replay throughput
(events/sec, serial and sharded) across engine design points and
appends the result to the committed benchmark trajectory
(benchmarks/BENCH_0001.json).

``python -m repro.harness list`` enumerates every key the other
subcommands accept (benchmarks, engine design points, experiments,
sweeps, fault campaigns, fuzz patterns, conformance invariants).

All subcommands share the logging flags (``-v``/``-vv``/``-q``; see
repro.harness.logsetup) and log to stderr only.

Exit statuses are uniform across subcommands: 0 success, 1 violation
or regression, 2 usage/runtime error (one-line message, never a
traceback), 3 partial — a supervised campaign degraded or lost units.
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    ReproError,
)
from repro.harness.experiments import EXPERIMENTS
from repro.harness.logsetup import add_logging_flags, setup_logging
from repro.harness.report import render_experiment, render_profile
from repro.harness.runner import (
    DEFAULT_TRACE_LENGTH,
    ExperimentContext,
    engine_factories,
)
from repro.harness.supervise import (
    add_resilience_flags,
    build_supervisor,
    supervision_requested,
)
from repro.obs import ObsConfig
from repro.workloads.benchmarks import benchmark_names


def _workers_arg(value: str):
    """Parse ``--workers``: a positive int, or ``auto`` for one per core."""
    if value == "auto":
        return None
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1 (or 'auto')")
    return workers


def _shard_timeout_arg(value: str) -> float:
    """Parse ``--shard-timeout``: positive wall-clock seconds."""
    try:
        timeout = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard timeout must be a positive number of seconds, "
            f"got {value!r}"
        ) from None
    if timeout <= 0:
        raise argparse.ArgumentTypeError("shard timeout must be > 0")
    return timeout


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_workers_arg, default=None, metavar="N|auto",
        help="replay worker processes: an integer, or 'auto' for one per "
             "CPU core (default); 1 forces the serial path",
    )
    parser.add_argument(
        "--shard-timeout", type=_shard_timeout_arg, default=None,
        metavar="SECONDS",
        help="wall-clock bound per parallel replay shard; shards that "
             "exceed it are retried serially instead of hanging the run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="root of the on-disk trace/event-log cache (default: "
             "$REPRO_CACHE_DIR or .cache; pass '' to disable)",
    )


def _check_known(parser: argparse.ArgumentParser, kind: str, key: str,
                 known) -> None:
    """Exit with a one-line parser error if *key* is not a known name."""
    if key not in known:
        parser.error(f"unknown {kind} {key!r}; known: {sorted(known)}")


def profile_main(argv) -> int:
    """Parse and run the ``profile`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness profile",
        description="Run one instrumented simulation and render the "
                    "observability dashboard.",
    )
    parser.add_argument(
        "benchmark",
        help="benchmark trace to profile",
    )
    parser.add_argument(
        "--engine", default="plutus",
        help="engine design point (default: plutus)",
    )
    parser.add_argument(
        "--length", type=int, default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the event trace as JSONL",
    )
    parser.add_argument(
        "--interval", type=int, default=1024, metavar="EVENTS",
        help="DRAM events between traffic snapshots (default 1024)",
    )
    parser.add_argument(
        "--trace-events", action="store_true",
        help="also trace every individual fill/writeback (verbose)",
    )
    parser.add_argument(
        "--span-detail", action="store_true",
        help="profile per-event spans too (engine reads/writes, BMT "
             "traversals, crypto primitives); higher overhead",
    )
    parser.add_argument(
        "--chrome-out", default=None, metavar="PATH",
        help="write the span profile as Chrome trace_event JSON "
             "(load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--collapsed-out", default=None, metavar="PATH",
        help="write the span profile as collapsed stacks "
             "(flamegraph.pl / speedscope input)",
    )
    _add_execution_flags(parser)
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)
    _check_known(parser, "benchmark", args.benchmark, benchmark_names())
    _check_known(parser, "engine", args.engine, engine_factories())

    from repro.harness.profile import run_profile

    try:
        profile = run_profile(
            args.benchmark,
            args.engine,
            length=args.length,
            seed=args.seed,
            obs=ObsConfig(
                enabled=True,
                interval_events=args.interval,
                trace_memory_events=args.trace_events,
                span_detail=args.span_detail,
            ),
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            chrome_out=args.chrome_out,
            collapsed_out=args.collapsed_out,
            workers=args.workers,
            shard_timeout=args.shard_timeout,
            cache_dir=args.cache_dir,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_profile(profile))
    return EXIT_OK


def inject_main(argv) -> int:
    """Parse and run the ``inject`` subcommand."""
    from repro.faults.campaign import CAMPAIGNS
    from repro.faults.crashpoints import CRASH_CAMPAIGNS
    from repro.faults.plan import ENGINE_VARIANTS

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness inject",
        description="Mount an adversarial fault-injection campaign and "
                    "print the detection matrix. Crash campaigns instead "
                    "kill the recoverable engine at every persist "
                    "barrier and print the recovery matrix.",
    )
    parser.add_argument(
        "benchmark",
        help="benchmark trace supplying the victim workload",
    )
    parser.add_argument(
        "--campaign", default="quick",
        help=f"campaign to mount (default: quick; fault campaigns: "
             f"{sorted(CAMPAIGNS)}; crash campaigns: "
             f"{sorted(CRASH_CAMPAIGNS)})",
    )
    parser.add_argument(
        "--engines", nargs="+", default=None, metavar="ENGINE",
        help="restrict the engine roster (default: the campaign's own; "
             f"known: {sorted(ENGINE_VARIANTS)}; not applicable to "
             "crash campaigns)",
    )
    parser.add_argument(
        "--length", type=int, default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="root of the on-disk trace cache (default: $REPRO_CACHE_DIR "
             "or .cache; pass '' to disable)",
    )
    add_resilience_flags(parser, workers=True)
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)
    _check_known(parser, "benchmark", args.benchmark, benchmark_names())
    _check_known(
        parser, "campaign", args.campaign,
        set(CAMPAIGNS) | set(CRASH_CAMPAIGNS),
    )
    for engine in args.engines or ():
        _check_known(parser, "engine variant", engine, ENGINE_VARIANTS)

    from repro.harness.supervise import distributed_requested

    if args.campaign in CRASH_CAMPAIGNS:
        if args.engines:
            parser.error(
                "--engines does not apply to crash campaigns: they "
                "always torture the recoverable engine"
            )
        if distributed_requested(args):
            parser.error(
                "--workers does not apply to crash campaigns: crash "
                "points re-execute one recoverable engine serially"
            )
        return _inject_crash(args)

    from repro.faults.report import render_campaign
    from repro.harness.inject import run_inject
    from repro.resilience import factory_spec, render_outcome

    try:
        supervisor = None
        if distributed_requested(args):
            # Distributed runs need the concrete campaign up front (the
            # journal opens against its fingerprint) plus a JSON factory
            # workers rebuild it from.
            from repro.harness.inject import inject_campaign

            kwargs = {
                "benchmark": args.benchmark,
                "campaign": args.campaign,
                "length": args.length,
                "seed": args.seed,
                "engines": list(args.engines) if args.engines else None,
                "cache_dir": args.cache_dir,
            }
            supervisor = build_supervisor(
                args,
                inject_campaign(**kwargs),
                factory_spec=factory_spec(
                    "repro.harness.inject:inject_campaign", kwargs
                ),
            )
        elif supervision_requested(args):
            supervisor = build_supervisor(args)
        outcome = run_inject(
            args.benchmark,
            args.campaign,
            length=args.length,
            seed=args.seed,
            engines=args.engines,
            cache_dir=args.cache_dir,
            supervisor=supervisor,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_campaign(outcome.report))
    supervision = outcome.report.supervision
    if supervision is not None:
        print(render_outcome(supervision), file=sys.stderr)
    if not outcome.ok:
        return EXIT_FAILURE
    if supervision is not None and supervision.partial:
        return EXIT_PARTIAL
    return EXIT_OK


def _inject_crash(args) -> int:
    """Run a crash-point torture campaign for ``inject``.

    Silent corruption is an unconditional failure; an incomplete sweep
    under a budget-cancelled (partial) supervision exits 3 so resumed
    runs can finish the coverage.
    """
    from repro.faults.report import render_crash_report
    from repro.harness.inject import run_inject_crash
    from repro.resilience import render_outcome

    supervisor_factory = None
    if supervision_requested(args):
        def supervisor_factory(campaign):
            return build_supervisor(args, campaign)

    try:
        outcome = run_inject_crash(
            args.benchmark,
            args.campaign,
            length=args.length,
            seed=args.seed,
            cache_dir=args.cache_dir,
            supervisor_factory=supervisor_factory,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_crash_report(outcome.report))
    supervision = outcome.report.supervision
    if supervision is not None:
        print(render_outcome(supervision), file=sys.stderr)
    if outcome.report.silent_corruptions:
        return EXIT_FAILURE
    if supervision is not None and supervision.partial:
        return EXIT_PARTIAL
    if not outcome.ok:
        return EXIT_FAILURE
    return EXIT_OK


def conform_main(argv) -> int:
    """Parse and run the ``conform`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness conform",
        description="Differential conformance: replay event logs through "
                    "the full engine matrix and check the declared "
                    "cross-engine invariants.",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="verify the committed golden corpus (the default when no "
             "stage is selected)",
    )
    parser.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="additionally run N seeded fuzz iterations against the "
             "universal invariants",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate the corpus .events/.snap files from their specs "
             "(still runs the invariant oracle)",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="fuzz campaign seed"
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="PATH",
        help="corpus location (default: tests/conformance/corpus)",
    )
    parser.add_argument(
        "--functional-events", type=int, default=None, metavar="N",
        help="cap on events the functional-crypto oracle executes per "
             "mode (default 240; pure-Python AES is slow)",
    )
    parser.add_argument(
        "--fuzz-chunk", type=int, default=8, metavar="N",
        help="fuzz iterations per supervised work unit (default 8); "
             "chunking never changes results, only journal granularity",
    )
    add_resilience_flags(parser, workers=True)
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)
    if args.fuzz < 0:
        parser.error("--fuzz must be >= 0")
    if args.fuzz_chunk < 1:
        parser.error("--fuzz-chunk must be >= 1")
    if getattr(args, "workers", None) is not None and args.fuzz <= 0:
        parser.error("--workers applies to the fuzz stage; pass --fuzz N")

    from pathlib import Path

    from repro.conformance.matrix import DEFAULT_FUNCTIONAL_EVENTS
    from repro.conformance.report import render_corpus, render_fuzz
    from repro.harness.conform import run_conform
    from repro.resilience import render_outcome

    supervisor_factory = None
    if args.fuzz > 0 and supervision_requested(args):
        from repro.resilience import factory_spec

        # Mirrors run_conform's own fuzz_campaign call so distributed
        # workers rebuild the identical campaign.
        fuzz_spec = factory_spec(
            "repro.conformance.fuzzer:fuzz_campaign",
            {
                "iterations": args.fuzz,
                "seed": args.seed,
                "chunk_size": args.fuzz_chunk,
                "functional_events": (
                    args.functional_events
                    if args.functional_events is not None
                    else DEFAULT_FUNCTIONAL_EVENTS
                ),
            },
        )

        def supervisor_factory(campaign):
            return build_supervisor(args, campaign, factory_spec=fuzz_spec)

    run_corpus_stage = args.corpus or args.update or args.fuzz == 0
    try:
        outcome = run_conform(
            corpus=run_corpus_stage,
            fuzz_iterations=args.fuzz,
            seed=args.seed,
            update=args.update,
            corpus_dir=Path(args.corpus_dir) if args.corpus_dir else None,
            functional_events=(
                args.functional_events
                if args.functional_events is not None
                else DEFAULT_FUNCTIONAL_EVENTS
            ),
            supervisor_factory=supervisor_factory,
            fuzz_chunk=args.fuzz_chunk,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if outcome.corpus is not None:
        print(render_corpus(outcome.corpus))
    if outcome.fuzz is not None:
        print(render_fuzz(outcome.fuzz))
    if outcome.supervision is not None:
        print(render_outcome(outcome.supervision), file=sys.stderr)
    if not outcome.ok:
        return EXIT_FAILURE
    if outcome.partial:
        return EXIT_PARTIAL
    return EXIT_OK


def sweep_main(argv) -> int:
    """Parse and run the ``sweep`` subcommand (always supervised)."""
    from repro.harness.sweeps import SWEEP_NAMES

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run one sensitivity sweep as a supervised, "
                    "journaled campaign: resumable after a crash, "
                    "budget-bounded, chaos-testable.",
    )
    parser.add_argument(
        "sweep",
        help=f"sweep axis (known: {list(SWEEP_NAMES)})",
    )
    parser.add_argument(
        "benchmark",
        help="benchmark trace the sweep varies around",
    )
    parser.add_argument(
        "--length", type=int, default=None,
        help="trace length in coalesced accesses (default: the sweep's "
             "own, 8000 for most axes)",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="additionally write the report to PATH (crash-atomically)",
    )
    _add_execution_flags(parser)
    add_resilience_flags(parser)
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)
    _check_known(parser, "sweep", args.sweep, set(SWEEP_NAMES))
    _check_known(parser, "benchmark", args.benchmark, benchmark_names())

    from repro.harness.report import render_sweep
    from repro.harness.sweeps import completed_rows, sweep_campaign
    from repro.resilience import factory_spec, render_outcome

    try:
        campaign = sweep_campaign(
            args.sweep,
            args.benchmark,
            trace_length=args.length,
            seed=args.seed,
            workers=args.workers,
            cache_dir=args.cache_dir,
            shard_timeout=args.shard_timeout,
        )
        # Worker-side factory: cells replay serially inside each worker
        # (the distributed fan-out *is* the parallelism); the execution
        # knobs are outside unit identity, so fingerprints still match.
        spec = factory_spec(
            "repro.harness.sweeps:sweep_campaign",
            {
                "sweep": args.sweep,
                "benchmark": args.benchmark,
                "trace_length": args.length,
                "seed": args.seed,
                "workers": 1,
                "cache_dir": args.cache_dir,
                "shard_timeout": args.shard_timeout,
            },
        )
        supervisor = build_supervisor(args, campaign, factory_spec=spec)
        outcome = supervisor.run(campaign)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    from repro.resilience import render_campaign_telemetry

    report = render_sweep(
        args.sweep, args.benchmark, completed_rows(campaign, outcome), outcome
    )
    print(report)
    print(render_outcome(outcome), file=sys.stderr)
    if outcome.telemetry:
        print(render_campaign_telemetry(outcome.telemetry), file=sys.stderr)
    if args.report_out:
        from repro.common.atomicio import atomic_write_text

        atomic_write_text(args.report_out, report + "\n")
    return outcome.exit_code


def list_main(argv) -> int:
    """Parse and run the ``list`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness list",
        description="Enumerate the keys every subcommand accepts.",
    )
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)

    from repro.conformance.corpus import CORPUS
    from repro.conformance.fuzzer import PATTERNS
    from repro.conformance.report import render_invariant_table
    from repro.faults.campaign import CAMPAIGNS
    from repro.faults.crashpoints import CRASH_CAMPAIGNS
    from repro.faults.plan import ENGINE_VARIANTS
    from repro.harness.sweeps import SWEEP_NAMES

    def section(title, keys):
        print(f"{title}:")
        for key in keys:
            print(f"  {key}")

    # Every section is sorted (or a deliberately ordered tuple like
    # SWEEP_NAMES) so the listing is byte-stable across runs.
    section("benchmarks", sorted(benchmark_names()))
    section("engines", sorted(engine_factories()))
    # How a campaign's units get executed: the serial reference path,
    # the in-process sharded replay pool (--workers auto), or the
    # multi-process lease-queue executor (--workers N with journaling).
    section("executors", ("serial", "pool", "distributed"))
    section("experiments", sorted(EXPERIMENTS))
    section("sweeps", SWEEP_NAMES)
    section("fault campaigns", sorted(CAMPAIGNS))
    section("crash campaigns", sorted(CRASH_CAMPAIGNS))
    section("fault engine variants", sorted(ENGINE_VARIANTS))
    section("fuzz patterns", sorted(PATTERNS))
    section("corpus entries", sorted(spec.name for spec in CORPUS))
    print(render_invariant_table())
    return EXIT_OK


def main(argv=None) -> int:
    """Parse arguments, run the selected experiments, print reports."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "inject":
        return inject_main(argv[1:])
    if argv and argv[0] == "conform":
        return conform_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "status":
        from repro.harness.status import status_main

        return status_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.harness.bench import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "cache":
        from repro.harness.cache_cli import cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "list":
        return list_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the Plutus paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default all): {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses per benchmark",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        metavar="BENCHMARK",
        help="restrict to a subset of the benchmark roster",
    )
    _add_execution_flags(parser)
    parser.add_argument(
        "--supervise", action="store_true",
        help="run the experiments under the campaign supervisor: one "
             "journaled, retryable work unit per experiment (implied by "
             "any other resilience flag)",
    )
    add_resilience_flags(parser)
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)

    selected = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    for benchmark in args.benchmarks or ():
        _check_known(parser, "benchmark", benchmark, benchmark_names())

    ctx = ExperimentContext(
        trace_length=args.length,
        seed=args.seed,
        benchmarks=args.benchmarks or benchmark_names(),
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        cache_dir=args.cache_dir,
    )
    if supervision_requested(args):
        return _supervised_experiments(args, ctx, selected)
    try:
        for key in selected:
            print(render_experiment(EXPERIMENTS[key](ctx)))
    except (ReproError, KeyError) as exc:
        # Unknown engine keys and malformed traces surface here; a clear
        # message beats a traceback for a CLI user.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_OK


def _supervised_experiments(args, ctx, selected) -> int:
    """The opt-in resilient path of the default experiments command.

    Unlike the plain loop above, a deterministic experiment failure
    here does not abort the run: the unit is marked failed, the rest of
    the suite still completes, and the exit status is 3 (partial).
    """
    from repro.harness.experiments import (
        experiments_campaign,
        result_from_payload,
    )
    from repro.resilience import factory_spec, render_outcome

    try:
        campaign = experiments_campaign(ctx, selected)
        spec = factory_spec(
            "repro.harness.experiments:experiments_campaign_from_params",
            {
                "selected": list(selected),
                "trace_length": args.length,
                "seed": args.seed,
                "benchmarks": list(ctx.benchmarks),
                "workers": 1,
                "shard_timeout": args.shard_timeout,
                "cache_dir": args.cache_dir,
            },
        )
        supervisor = build_supervisor(args, campaign, factory_spec=spec)
        outcome = supervisor.run(campaign)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    results = outcome.results
    for unit in campaign.units:
        payload = results.get(unit.unit_id)
        if payload is not None:
            print(render_experiment(result_from_payload(payload)))
    print(render_outcome(outcome), file=sys.stderr)
    return outcome.exit_code


if __name__ == "__main__":
    sys.exit(main())
