"""Property-based round-trip tests for trace I/O (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.trace import Trace, TraceAccess
from repro.workloads.traceio import dumps_trace, loads_trace


@st.composite
def trace_accesses(draw):
    mask = draw(st.integers(min_value=1, max_value=15))
    line = draw(st.integers(min_value=0, max_value=2**20)) * 128
    write = draw(st.booleans())
    with_values = draw(st.booleans())
    values = None
    if with_values:
        values = [
            (slot, draw(st.binary(min_size=32, max_size=32)))
            for slot in range(4)
            if (mask >> slot) & 1
        ]
    return TraceAccess(line, mask, write, values)


traces = st.builds(
    Trace,
    # Names must be whitespace-free tokens in the text format.
    name=st.sampled_from(["k1", "bfs2", "mytrace", "lbm_slice"]),
    accesses=st.lists(trace_accesses(), min_size=1, max_size=40),
    memory_intensity=st.floats(min_value=0.0, max_value=1.0),
    instructions=st.integers(min_value=1, max_value=10**6),
    counter_warmup_passes=st.integers(min_value=0, max_value=20),
)


@settings(max_examples=40, deadline=None)
@given(trace=traces)
def test_roundtrip_preserves_trace(trace):
    recovered = loads_trace(dumps_trace(trace))
    assert recovered.name == trace.name
    assert recovered.memory_intensity == trace.memory_intensity
    assert recovered.instructions == trace.instructions
    assert recovered.counter_warmup_passes == trace.counter_warmup_passes
    assert len(recovered) == len(trace)
    for a, b in zip(trace, recovered):
        assert a.line_addr == b.line_addr
        assert a.sector_mask == b.sector_mask
        assert a.write == b.write
        assert a.values == b.values
