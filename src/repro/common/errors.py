"""Exception hierarchy for the Plutus reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError``, ...).

The security-related exceptions mirror the attack classes the paper's
threat model defends against (Section IV-A): spoofing and splicing are
caught by MAC verification (:class:`IntegrityError`), replay is caught by
the integrity tree (:class:`ReplayError`), and counter-mode misuse is
prevented eagerly (:class:`CounterOverflowError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class AlignmentError(ReproError, ValueError):
    """An address or size violated a required alignment."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeySizeError(CryptoError, ValueError):
    """A key of unsupported length was supplied to a cipher."""


class BlockSizeError(CryptoError, ValueError):
    """Data had an invalid length for the selected cipher mode."""


class SecurityViolation(ReproError):
    """Base class for detected attacks on the protected memory.

    Carries enough context for a campaign report (or a user traceback)
    to be actionable: the physical address the violation was detected
    at and the metadata *stream* whose check tripped (``"data"``,
    ``"mac"``, ``"counter"``, ``"bmt"``).
    """

    def __init__(
        self,
        message: str,
        address: "int | None" = None,
        stream: "str | None" = None,
    ) -> None:
        super().__init__(message)
        #: Physical address at which the violation was detected (if known).
        self.address = address
        #: Metadata stream whose verification failed (if known).
        self.stream = stream


class IntegrityError(SecurityViolation):
    """MAC (or value-based) verification failed: data was tampered with."""


class ReplayError(SecurityViolation):
    """Integrity-tree verification failed: stale data was replayed."""


class CounterOverflowError(ReproError):
    """An encryption counter exhausted its range.

    Real designs re-encrypt the affected region with a fresh key; the
    reproduction surfaces the event so that tests can assert on the exact
    overflow semantics of split and compact counters.
    """


class SimulationError(ReproError):
    """The trace-driven simulator reached an inconsistent state."""


class TraceError(ReproError):
    """A workload trace record was malformed or out of accepted range."""


class TraceFormatError(TraceError):
    """A trace or event-log *file* failed structural validation.

    Raised by :mod:`repro.workloads.traceio` for malformed or truncated
    files, always naming the offending line so users can fix real dumps
    by hand. ``line`` is ``None`` for whole-file problems (missing
    header, record-count mismatch against the footer).
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        super().__init__(
            f"line {line}: {message}" if line is not None else message
        )
        #: 1-based line number the problem was detected at (if known).
        self.line = line


class FaultInjectionError(ReproError):
    """A fault-injection plan or campaign was invalid or inapplicable."""
