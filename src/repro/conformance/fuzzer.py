"""Seeded adversarial-trace fuzzer with ddmin shrinking.

The fuzzer builds :class:`MemoryEventLog` instances directly — below
the L2, so it can express DRAM-side patterns no cache pass would emit —
and feeds each one to the differential oracle. Patterns target the
mechanisms most likely to disagree across engines:

* ``alias`` — sectors exactly one fold apart, so the functional
  oracle's bounded memory sees colliding addresses and the metadata
  caches see conflicting sets;
* ``write-storm`` — long writeback runs against a handful of sectors,
  saturating compact counters (adaptive disable, mirror-layer double
  accesses) and driving split-counter minor overflow re-encryption;
* ``value-thrash`` — every fill carries a fresh value, defeating the
  value cache entirely;
* ``value-hot`` — a two-value pool, maximizing value-cache hits and
  MAC avoidance;
* ``value-bound`` — sector images built so each 128-bit unit carries
  exactly 2, 3, or 4 hot words, straddling the value cache's
  ``hits_required = 3``-of-4 verification bound (Eq. 1); hot words are
  perturbed only in their low ``mask_bits`` so masked-key matching is
  load-bearing, which pins down the batch key-extraction path;
* ``sweep`` and ``uniform`` — regular and mixed baselines.

Failures are shrunk with :func:`shrink`, a generic ddmin over the event
list: it works for any predicate, so tests can inject synthetic
failure conditions without running the full oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.conformance.invariants import Violation, check_run
from repro.conformance.matrix import (
    CONFORMANCE_ENGINES,
    DEFAULT_FUNCTIONAL_EVENTS,
    run_matrix,
)
from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.simulator import EventKind, MemoryEvent, MemoryEventLog

#: Fold distance used by the alias pattern (matches the functional
#: oracle's default bounded-memory size, in sectors).
ALIAS_STRIDE = 2048

#: Pattern names the fuzzer draws from, uniformly per iteration.
PATTERNS = (
    "uniform",
    "alias",
    "write-storm",
    "value-thrash",
    "value-hot",
    "value-bound",
    "sweep",
)


def _value(rng: random.Random) -> bytes:
    return rng.getrandbits(256).to_bytes(32, "little")


def _partitions(rng: random.Random) -> List[int]:
    count = rng.randint(1, 4)
    return rng.sample(range(32), count)


def _finish(
    name: str,
    events: List[MemoryEvent],
    counter_warmup_passes: int,
) -> MemoryEventLog:
    log = MemoryEventLog(
        trace_name=name,
        memory_intensity=0.5,
        instructions=max(1, len(events)),
        counter_warmup_passes=counter_warmup_passes,
        events=events,
    )
    for event in events:
        if event.kind is EventKind.FILL:
            log.fill_sectors += 1
        else:
            log.writeback_sectors += 1
    return log


def _gen_uniform(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    sectors = [base + i for i in range(rng.randint(8, 64))]
    pool = [_value(rng) for _ in range(16)]
    events = []
    for _ in range(rng.randint(80, 240)):
        kind = EventKind.FILL if rng.random() < 0.6 else EventKind.WRITEBACK
        values: Optional[bytes] = rng.choice(pool)
        if rng.random() < 0.1:
            values = None  # Events can lose values (e.g. merged traces).
        events.append(
            MemoryEvent(kind, rng.choice(partitions), rng.choice(sectors),
                        values)
        )
    return _finish(name, events, rng.randint(0, 3))


def _gen_alias(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, ALIAS_STRIDE)
    rungs = [base + k * ALIAS_STRIDE for k in range(rng.randint(2, 4))]
    pool = [_value(rng) for _ in range(8)]
    events = []
    for _ in range(rng.randint(80, 200)):
        partition = rng.choice(partitions)
        sector = rng.choice(rungs)
        if rng.random() < 0.5:
            events.append(
                MemoryEvent(EventKind.WRITEBACK, partition, sector,
                            rng.choice(pool))
            )
        else:
            events.append(
                MemoryEvent(EventKind.FILL, partition, sector,
                            rng.choice(pool))
            )
    return _finish(name, events, rng.randint(0, 3))


def _gen_write_storm(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    sectors = [base + i for i in range(rng.randint(2, 5))]
    pool = [_value(rng) for _ in range(4)]
    events = []
    # Enough writes per sector to saturate compact counters and force
    # split-counter minor overflow (64 writes) during replay or warmup.
    for _ in range(rng.randint(140, 240)):
        events.append(
            MemoryEvent(EventKind.WRITEBACK, rng.choice(partitions),
                        rng.choice(sectors), rng.choice(pool))
        )
    for sector in sectors:
        events.append(
            MemoryEvent(EventKind.FILL, rng.choice(partitions), sector,
                        rng.choice(pool))
        )
    return _finish(name, events, rng.randint(0, 20))


def _gen_value_thrash(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    sectors = [base + i for i in range(rng.randint(32, 96))]
    events = []
    for _ in range(rng.randint(100, 240)):
        events.append(
            MemoryEvent(EventKind.FILL, rng.choice(partitions),
                        rng.choice(sectors), _value(rng))
        )
    return _finish(name, events, rng.randint(0, 3))


def _gen_value_hot(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    sectors = [base + i for i in range(rng.randint(4, 16))]
    pool = [_value(rng) for _ in range(2)]
    events = []
    for _ in range(rng.randint(100, 240)):
        kind = EventKind.FILL if rng.random() < 0.7 else EventKind.WRITEBACK
        events.append(
            MemoryEvent(kind, rng.choice(partitions), rng.choice(sectors),
                        rng.choice(pool))
        )
    return _finish(name, events, rng.randint(0, 3))


def _gen_value_bound(rng: random.Random, name: str) -> MemoryEventLog:
    """Images that straddle the value cache's x-of-n verification bound.

    The paper's cache verifies a 128-bit unit when at least 3 of its 4
    words hit (Table II / Eq. 1). Each generated image gives every unit
    exactly 2 (one short — must fall back to the MAC), 3 (barely
    verifiable), or 4 hot words, and every hot word is re-randomized in
    its low ``mask_bits`` so only the masked 28-bit key may match. A
    batch path that probes units with the wrong key mask, skips the
    per-unit short-circuit, or observes values out of order lands on
    the other side of the bound and diverges in ``mac_fetches_avoided``
    / ``value_verified_fills`` immediately.
    """
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    sectors = [base + i for i in range(rng.randint(4, 12))]
    hot = [rng.getrandbits(32) for _ in range(4)]

    def image(hot_per_unit: int) -> bytes:
        words: List[int] = []
        for _unit in range(2):
            picks = set(rng.sample(range(4), hot_per_unit))
            for slot in range(4):
                if slot in picks:
                    word = (hot[rng.randrange(len(hot))] & ~0xF) | (
                        rng.getrandbits(4)
                    )
                else:
                    word = rng.getrandbits(32)
                words.append(word)
        return b"".join(word.to_bytes(4, "little") for word in words)

    events = []
    # Writebacks seed the hot words (observe + write-verifiable probes);
    # fills then test them against the bound from both sides.
    for _ in range(rng.randint(100, 220)):
        kind = EventKind.FILL if rng.random() < 0.65 else EventKind.WRITEBACK
        hot_per_unit = rng.choice((2, 3, 3, 4))
        events.append(
            MemoryEvent(kind, rng.choice(partitions), rng.choice(sectors),
                        image(hot_per_unit))
        )
    return _finish(name, events, rng.randint(0, 3))


def _gen_sweep(rng: random.Random, name: str) -> MemoryEventLog:
    partitions = _partitions(rng)
    base = rng.randrange(0, 4096)
    length = rng.randint(40, 120)
    pool = [_value(rng) for _ in range(8)]
    events = []
    for i in range(length):
        events.append(
            MemoryEvent(EventKind.FILL, partitions[i % len(partitions)],
                        base + i, rng.choice(pool))
        )
    for i in range(length):
        events.append(
            MemoryEvent(EventKind.WRITEBACK, partitions[i % len(partitions)],
                        base + i, rng.choice(pool))
        )
    return _finish(name, events, rng.randint(0, 3))


_GENERATORS: Dict[str, Callable[[random.Random, str], MemoryEventLog]] = {
    "uniform": _gen_uniform,
    "alias": _gen_alias,
    "write-storm": _gen_write_storm,
    "value-thrash": _gen_value_thrash,
    "value-hot": _gen_value_hot,
    "value-bound": _gen_value_bound,
    "sweep": _gen_sweep,
}


def generate_log(
    pattern: str, rng: random.Random, name: str
) -> MemoryEventLog:
    """Build one adversarial event log for a named pattern."""
    try:
        generator = _GENERATORS[pattern]
    except KeyError:
        raise KeyError(
            f"unknown fuzz pattern {pattern!r}; known: {sorted(_GENERATORS)}"
        ) from None
    return generator(rng, name)


def rebuild_log(
    log: MemoryEventLog, events: Sequence[MemoryEvent]
) -> MemoryEventLog:
    """A copy of *log* holding exactly *events*, with counts recomputed."""
    return _finish(log.trace_name, list(events), log.counter_warmup_passes)


def shrink(
    log: MemoryEventLog,
    predicate: Callable[[MemoryEventLog], bool],
) -> MemoryEventLog:
    """ddmin: a minimal event sub-list still satisfying *predicate*.

    *predicate* receives a rebuilt log (sector counts recomputed) and
    returns True while the log still fails. The result is 1-minimal in
    the ddmin sense: removing any single tried chunk breaks the
    predicate. The original *log* is never mutated.
    """
    events = list(log.events)
    if not predicate(rebuild_log(log, events)):
        raise ValueError("original log does not satisfy the predicate")
    granularity = 2
    while len(events) >= 2:
        chunk = max(1, (len(events) + granularity - 1) // granularity)
        reduced = False
        for start in range(0, len(events), chunk):
            candidate = events[:start] + events[start + chunk:]
            if not candidate:
                continue
            if predicate(rebuild_log(log, candidate)):
                events = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(events):
                break
            granularity = min(len(events), granularity * 2)
    return rebuild_log(log, events)


@dataclass
class FuzzFailure:
    """One fuzz iteration that violated a universal invariant."""

    iteration: int
    pattern: str
    violations: List[Violation]
    log: MemoryEventLog
    #: The ddmin-minimized reproducer (equals ``log`` if not shrunk).
    shrunk: MemoryEventLog


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzz campaign."""

    iterations: int
    seed: int
    pattern_counts: Dict[str, int] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def evaluate_log(
    log: MemoryEventLog,
    config: GpuConfig = VOLTA,
    engines: Sequence[str] = CONFORMANCE_ENGINES,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    check_parallel: bool = True,
) -> List[Violation]:
    """Run the universal-invariant oracle on one (adversarial) log."""
    run = run_matrix(
        log,
        config=config,
        engines=engines,
        claims_apply=False,
        check_parallel=check_parallel,
        functional_events=functional_events,
    )
    return check_run(run)


def _fuzz_range(
    start: int,
    stop: int,
    seed: int,
    config: GpuConfig = VOLTA,
    engines: Sequence[str] = CONFORMANCE_ENGINES,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    shrink_failures: bool = True,
    on_iteration: Optional[Callable[[int, str], None]] = None,
) -> Tuple[Dict[str, int], List[FuzzFailure]]:
    """Run iterations ``[start, stop)`` of a seeded campaign.

    Each iteration derives its own RNG from (seed, iteration), so the
    result of a range never depends on how the campaign was chunked —
    the property behind supervised (resumable) fuzzing.
    """
    pattern_counts: Dict[str, int] = {}
    failures: List[FuzzFailure] = []
    for iteration in range(start, stop):
        rng = random.Random(seed * 1_000_003 + iteration)
        pattern = rng.choice(PATTERNS)
        pattern_counts[pattern] = pattern_counts.get(pattern, 0) + 1
        if on_iteration is not None:
            on_iteration(iteration, pattern)
        name = f"fuzz-s{seed}-i{iteration}-{pattern}"
        log = generate_log(pattern, rng, name)
        violations = evaluate_log(
            log, config=config, engines=engines,
            functional_events=functional_events,
        )
        if not violations:
            continue
        shrunk = log
        if shrink_failures:
            def still_failing(candidate: MemoryEventLog) -> bool:
                return bool(
                    evaluate_log(
                        candidate, config=config, engines=engines,
                        functional_events=functional_events,
                        check_parallel=False,
                    )
                )

            try:
                shrunk = shrink(log, still_failing)
            except ValueError:
                # Only the parallel cross-check failed; nothing to
                # shrink against the serial-only oracle.
                shrunk = log
        failures.append(
            FuzzFailure(
                iteration=iteration,
                pattern=pattern,
                violations=violations,
                log=log,
                shrunk=shrunk,
            )
        )
    return pattern_counts, failures


def fuzz(
    iterations: int,
    seed: int,
    config: GpuConfig = VOLTA,
    engines: Sequence[str] = CONFORMANCE_ENGINES,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    shrink_failures: bool = True,
    on_iteration: Optional[Callable[[int, str], None]] = None,
) -> FuzzReport:
    """Run a seeded fuzz campaign against the universal invariants.

    Each iteration derives its own RNG from (seed, iteration), so any
    failure is reproducible in isolation from its iteration number.
    Failing logs are ddmin-shrunk against the same oracle (with the
    parallel cross-check disabled during shrinking — it dominates the
    per-candidate cost and the shrunk log is re-checked in full).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    report = FuzzReport(iterations=iterations, seed=seed)
    report.pattern_counts, report.failures = _fuzz_range(
        0, iterations, seed,
        config=config,
        engines=engines,
        functional_events=functional_events,
        shrink_failures=shrink_failures,
        on_iteration=on_iteration,
    )
    return report


# -- supervised decomposition -------------------------------------------------

def _event_payload(event: MemoryEvent) -> Dict[str, object]:
    return {
        "kind": event.kind.name,
        "partition": event.partition,
        "sector": event.sector_index,
        "values": event.values.hex() if event.values is not None else None,
    }


def _event_from_payload(payload: Dict[str, object]) -> MemoryEvent:
    values = payload["values"]
    return MemoryEvent(
        EventKind[payload["kind"]],
        payload["partition"],
        payload["sector"],
        bytes.fromhex(values) if values is not None else None,
    )


def _failure_payload(failure: FuzzFailure) -> Dict[str, object]:
    return {
        "iteration": failure.iteration,
        "pattern": failure.pattern,
        "trace_name": failure.log.trace_name,
        "warmup": failure.log.counter_warmup_passes,
        "violations": [
            {"invariant": v.invariant, "message": v.message}
            for v in failure.violations
        ],
        "events": [_event_payload(e) for e in failure.log.events],
        "shrunk": [_event_payload(e) for e in failure.shrunk.events],
    }


def _failure_from_payload(payload: Dict[str, object]) -> FuzzFailure:
    name = payload["trace_name"]
    warmup = payload["warmup"]
    return FuzzFailure(
        iteration=payload["iteration"],
        pattern=payload["pattern"],
        violations=[
            Violation(invariant=v["invariant"], message=v["message"])
            for v in payload["violations"]
        ],
        log=_finish(
            name, [_event_from_payload(e) for e in payload["events"]], warmup
        ),
        shrunk=_finish(
            name, [_event_from_payload(e) for e in payload["shrunk"]], warmup
        ),
    )


def fuzz_campaign(
    iterations: int,
    seed: int,
    chunk_size: int = 8,
    config: GpuConfig = VOLTA,
    engines: Sequence[str] = CONFORMANCE_ENGINES,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    shrink_failures: bool = True,
):
    """Decompose a fuzz campaign into chunked, resumable work units.

    Per-iteration seeding makes chunk results independent of the chunk
    boundaries, so any chunking of the same (iterations, seed) campaign
    reaches the same verdict; the chunk merely amortizes journal writes
    over several iterations.
    """
    from repro.common.digest import content_digest
    from repro.resilience import Campaign, WorkUnit

    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    config_id = content_digest("gpu-config", repr(config))

    def runner_for(start: int, stop: int):
        def run() -> Dict[str, object]:
            counts, failures = _fuzz_range(
                start, stop, seed,
                config=config,
                engines=engines,
                functional_events=functional_events,
                shrink_failures=shrink_failures,
            )
            return {
                "pattern_counts": counts,
                "failures": [_failure_payload(f) for f in failures],
            }

        return run

    units = []
    for start in range(0, iterations, chunk_size):
        stop = min(start + chunk_size, iterations)
        units.append(
            WorkUnit(
                kind="fuzz-chunk",
                params={
                    "seed": seed,
                    "start": start,
                    "stop": stop,
                    "engines": list(engines),
                    "functional_events": functional_events,
                    "shrink": shrink_failures,
                    "config": config_id,
                },
                runner=runner_for(start, stop),
                label=f"fuzz[{start}:{stop}]",
            )
        )
    return Campaign(name=f"fuzz:s{seed}:n{iterations}", units=units)


def fuzz_report_from_outcome(outcome, iterations: int, seed: int) -> FuzzReport:
    """Merge supervised chunk results back into one :class:`FuzzReport`.

    Chunks lost to failure or degradation contribute nothing here; the
    supervised outcome itself records which ranges are missing.
    """
    report = FuzzReport(iterations=iterations, seed=seed)
    failures: List[FuzzFailure] = []
    for payload in outcome.results.values():
        for pattern, count in payload["pattern_counts"].items():
            report.pattern_counts[pattern] = (
                report.pattern_counts.get(pattern, 0) + count
            )
        failures.extend(
            _failure_from_payload(f) for f in payload["failures"]
        )
    report.failures = sorted(failures, key=lambda f: f.iteration)
    return report
