"""Tests for the Eq. 1 forgery analysis."""

import pytest

from repro.analysis.forgery import (
    binomial_tail,
    design_space,
    forgery_probability,
    minimum_hits_required,
    single_hit_probability,
)


class TestSingleHitProbability:
    def test_paper_parameters(self):
        """K = 256 entries, M = 28 effective bits -> p = 2^-20."""
        assert single_hit_probability(256, 28) == pytest.approx(2.0**-20)

    def test_capped_at_one(self):
        assert single_hit_probability(10**10, 8) == 1.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            single_hit_probability(0, 28)
        with pytest.raises(ValueError):
            single_hit_probability(256, 0)


class TestBinomialTail:
    def test_certain_event(self):
        assert binomial_tail(4, 0, 0.5) == pytest.approx(1.0)

    def test_all_successes(self):
        assert binomial_tail(4, 4, 0.5) == pytest.approx(0.5**4)

    def test_known_value(self):
        # P(at least 3 of 4 at p=0.5) = (4 + 1)/16
        assert binomial_tail(4, 3, 0.5) == pytest.approx(5 / 16)

    def test_monotone_in_x(self):
        p = 0.1
        tails = [binomial_tail(4, x, p) for x in range(5)]
        assert tails == sorted(tails, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_tail(4, 5, 0.5)
        with pytest.raises(ValueError):
            binomial_tail(4, 2, 1.5)


class TestPaperDerivation:
    def test_three_hits_suffice_at_256_entries(self):
        """The paper's headline Eq. 1 solve: x = 3 of 4."""
        assert minimum_hits_required(256, 28, 4, bound=2.0**-56) == 3

    def test_two_hits_do_not_suffice(self):
        assert forgery_probability(256, 28, 4, 2, 1) > 2.0**-56

    def test_larger_caches_need_more_hits(self):
        assert minimum_hits_required(512, 28, 4) == 4
        assert minimum_hits_required(1024, 28, 4) == 4

    def test_sector_check_beats_8B_mac(self):
        """Both 128-bit halves must pass: the sector-level probability
        is far below an 8-byte MAC's 2^-64 collision rate."""
        sector_p = forgery_probability(256, 28, 4, 3, units_per_access=2)
        assert sector_p < 2.0**-64

    def test_impossible_bound_returns_none(self):
        assert minimum_hits_required(2**28, 28, 4, bound=2.0**-56) is None


class TestDesignSpace:
    def test_rows_cover_requested_sizes(self):
        rows = design_space(entry_options=(64, 256))
        assert [r.cache_entries for r in rows] == [64, 256]

    def test_every_design_point_beats_8B_mac(self):
        assert all(r.beats_8B_mac for r in design_space())

    def test_per_sector_is_square_of_per_unit(self):
        for row in design_space():
            assert row.per_sector_probability == pytest.approx(
                row.per_unit_probability**2
            )

    def test_probability_grows_with_cache_at_fixed_x(self):
        p64 = forgery_probability(64, 28, 4, 3, 1)
        p256 = forgery_probability(256, 28, 4, 3, 1)
        assert p256 > p64
