"""Common-counters comparator (Na et al. [18]) layered on PSSM.

The strongest prior counter optimization the paper compares against in
Fig. 18: GPU data is overwhelmingly read-only or uniformly updated, so a
small on-chip structure can serve the counters of untouched regions
without any memory traffic (value zero, no BMT walk needed — the
freshness of a counter that provably never left its initial state needs
no tree check).

Faithful to the prior work's coarse tracking — and to this paper's
critique of it (Section III-C) — regions are 16 KiB and are demoted
*permanently on the first write*: "on the first write received by this
region, the whole region is no more considered read-only, and all new
accesses have to get the original counters from memory". Scattered
writes therefore poison large regions, which is exactly the missed
opportunity Plutus's fine-grained compact counters recover. MAC traffic
is untouched by this design.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.mem.traffic import TrafficCounter
from repro.metadata.layout import GranularityDesign
from repro.secure.engine import (
    MetadataCacheConfig,
    MetadataEngine,
    PartitionEngine,
)


class CommonCountersEngine(MetadataEngine):
    """PSSM plus an on-chip common-counter region tracker."""

    name = "common-counters+pssm"

    #: Region tracking granularity of the prior work (16 KiB of data).
    REGION_BYTES = 16 * 1024

    def __init__(
        self,
        partition_id: int,
        data_sectors: int,
        traffic: TrafficCounter,
        mac_tag_bytes: int = 8,
        design: GranularityDesign = GranularityDesign.BLOCK_128,
        cache_config: MetadataCacheConfig = MetadataCacheConfig(),
        lazy_update: bool = True,
        init_written_fraction: float = 0.5,
    ) -> None:
        super().__init__(
            partition_id,
            data_sectors,
            traffic,
            design=design,
            mac_tag_bytes=mac_tag_bytes,
            cache_config=cache_config,
            lazy_update=lazy_update,
        )
        if not 0.0 <= init_written_fraction <= 1.0:
            raise ValueError("init_written_fraction must be within [0, 1]")
        self.region_sectors = self.REGION_BYTES // self.layout.sector_bytes
        #: Regions that have received at least one write (demoted forever).
        self._written_regions: Set[int] = set()
        #: Applications initialize their device buffers (memset/copy-in/
        #: init kernels) before the measured kernels run; those writes
        #: demote regions under the first-write rule just as surely as
        #: kernel writes do. This fraction of regions starts demoted,
        #: chosen deterministically by region id.
        self.init_written_fraction = init_written_fraction

    def _region_of(self, sector_index: int) -> int:
        return sector_index // self.region_sectors

    def _init_written(self, region: int) -> bool:
        if self.init_written_fraction >= 1.0:
            return True
        # Cheap deterministic hash spreads demoted regions uniformly.
        h = (region * 2654435761 + self.partition_id * 97) & 0xFFFFFFFF
        return (h / 2**32) < self.init_written_fraction

    def counter_is_common(self, sector_index: int) -> bool:
        """True while the sector's region has never been written."""
        region = self._region_of(sector_index)
        return region not in self._written_regions and not self._init_written(region)

    def warm_counters(self, sector_index: int) -> None:
        """Pre-window write: advance the counter and demote the region."""
        self.counters.increment(sector_index)
        self._written_regions.add(self._region_of(sector_index))

    def on_fill(self, sector_index: int, values: Optional[bytes]) -> None:
        """Read miss: counter on-chip if the region is pristine; MAC always."""
        self.stats.fills += 1
        if self.counter_is_common(sector_index):
            self.stats.counter_onchip_hits += 1
        else:
            self.counter_read(sector_index)
        self.mac_read(sector_index)

    def on_writeback(self, sector_index: int, values: Optional[bytes]) -> None:
        """Dirty eviction: demote the region, then the full PSSM path."""
        self.stats.writebacks += 1
        self._written_regions.add(self._region_of(sector_index))
        self.counter_write(sector_index)
        self.mac_write(sector_index)

    # -- batch hooks (columnar path) --------------------------------------
    #
    # The common-region test is a pure function of the written-region
    # set, which only writebacks and warmup mutate — so within a fill
    # run every event sees the same set and the test vectorizes over
    # the unique regions. Within a writeback run no event reads the
    # set, so the region demotions hoist to one bulk update.

    batch_native = True

    def _common_mask(self, regions: np.ndarray) -> Optional[np.ndarray]:
        """Per-event common-counter verdicts, or None when none can be."""
        if self.init_written_fraction >= 1.0:
            return None  # every region starts demoted
        uniq, inverse = np.unique(regions, return_inverse=True)
        h = (uniq * np.int64(2654435761)
             + np.int64(self.partition_id * 97)) & np.int64(0xFFFFFFFF)
        init_written = (h / float(2**32)) < self.init_written_fraction
        written = self._written_regions
        never_written = np.fromiter(
            (r not in written for r in uniq.tolist()),
            dtype=bool,
            count=int(uniq.size),
        )
        return (never_written & ~init_written)[inverse]

    def on_fill_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        n = int(sectors.size)
        self.stats.fills += n
        common = (
            self._common_mask(sectors // self.region_sectors) if n else None
        )
        if common is None:
            self._batch_counter_reads(sectors)
        else:
            n_common = int(common.sum())
            self.stats.counter_onchip_hits += n_common
            if n_common < n:
                self._batch_counter_reads(sectors[~common])
        self._batch_mac_reads(sectors)

    def on_writeback_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        self.stats.writebacks += int(sectors.size)
        if sectors.size:
            self._written_regions.update(
                np.unique(sectors // self.region_sectors).tolist()
            )
        self._batch_counter_writes(sectors)
        self._batch_mac_writes(sectors)

    def warm_counters_batch(self, sector_indices, passes: int = 1) -> None:
        if passes <= 0:
            return
        sectors = np.asarray(sector_indices, dtype=np.int64)
        if sectors.size == 0:
            return
        if int(sectors.min()) < 0:
            # Scalar error semantics: raise mid-warmup, regions of the
            # already-processed prefix demoted.
            PartitionEngine.warm_counters_batch(self, sectors.tolist(), passes)
            return
        super().warm_counters_batch(sectors, passes)
        self._written_regions.update(
            np.unique(sectors // self.region_sectors).tolist()
        )

    def _state_summary(self) -> List:
        summary = super()._state_summary()
        summary.append(sorted(self._written_regions))
        return summary
