"""AES-XTS tests: IEEE P1619 vectors, ciphertext stealing, diffusion."""

import pytest

from repro.common.errors import BlockSizeError, KeySizeError
from repro.crypto.xts import AesXts


class TestP1619Vectors:
    def test_vector_1_zero_keys(self):
        xts = AesXts(bytes(32))
        ct = xts.encrypt_sector(bytes(32), 0)
        assert ct.hex() == (
            "917cf69ebd68b2ec9b9fe9a3eadda692"
            "cd43d2f59598ed858c02c2652fbf922e"
        )

    def test_vector_2_nonzero(self):
        key = bytes.fromhex("11" * 16 + "22" * 16)
        xts = AesXts(key)
        ct = xts.encrypt_sector(bytes.fromhex("44" * 32), 0x3333333333)
        assert ct.hex() == (
            "c454185e6a16936e39334038acef838b"
            "fb186fff7480adc4289382ecd6d394f0"
        )

    def test_vector_decrypts(self):
        key = bytes.fromhex("11" * 16 + "22" * 16)
        xts = AesXts(key)
        ct = xts.encrypt_sector(bytes.fromhex("44" * 32), 0x3333333333)
        assert xts.decrypt_sector(ct, 0x3333333333) == bytes.fromhex("44" * 32)


class TestRoundtrips:
    @pytest.mark.parametrize("length", [16, 17, 31, 32, 33, 48, 100, 512])
    def test_roundtrip_all_lengths(self, length):
        """Ciphertext stealing must handle every non-multiple length."""
        xts = AesXts(b"\xab" * 32)
        data = bytes(i % 251 for i in range(length))
        tweak = (77).to_bytes(16, "little")
        ct = xts.encrypt(data, tweak)
        assert len(ct) == length
        assert xts.decrypt(ct, tweak) == data

    def test_aes256_xts_roundtrip(self):
        xts = AesXts(b"\x5a" * 64)
        data = bytes(range(64))
        tweak = (3).to_bytes(16, "little")
        assert xts.decrypt(xts.encrypt(data, tweak), tweak) == data


class TestTweakSensitivity:
    def test_different_tweaks_different_ciphertexts(self):
        xts = AesXts(b"\x01" * 32)
        data = b"\x00" * 32
        a = xts.encrypt_sector(data, 1)
        b = xts.encrypt_sector(data, 2)
        assert a != b

    def test_same_plaintext_different_blocks_differ(self):
        """Within one sector, identical 16B blocks must not repeat."""
        xts = AesXts(b"\x01" * 32)
        ct = xts.encrypt_sector(b"\x00" * 64, 9)
        blocks = [ct[i : i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_decrypt_with_wrong_tweak_garbles(self):
        xts = AesXts(b"\x01" * 32)
        data = b"secret sector contents 32 bytes!"
        ct = xts.encrypt_sector(data, 5)
        assert xts.decrypt_sector(ct, 6) != data


class TestMalleabilityResistance:
    """The property Plutus's value check rests on (Section IV-C)."""

    def test_one_bit_flip_randomizes_whole_cipher_block(self):
        xts = AesXts(b"\x33" * 32)
        data = bytes(range(32))
        tweak = (11).to_bytes(16, "little")
        ct = bytearray(xts.encrypt(data, tweak))
        ct[0] ^= 0x01
        recovered = xts.decrypt(bytes(ct), tweak)
        changed = sum(a != b for a, b in zip(recovered[:16], data[:16]))
        assert changed >= 12  # essentially the whole block

    def test_tamper_is_confined_to_its_cipher_block(self):
        xts = AesXts(b"\x33" * 32)
        data = bytes(range(32))
        tweak = (11).to_bytes(16, "little")
        ct = bytearray(xts.encrypt(data, tweak))
        ct[0] ^= 0x01  # first cipher block only
        recovered = xts.decrypt(bytes(ct), tweak)
        assert recovered[16:] == data[16:]


class TestValidation:
    def test_key_must_be_two_aes_keys(self):
        for size in (16, 24, 48, 33):
            with pytest.raises(KeySizeError):
                AesXts(b"\x00" * size)

    def test_sub_block_data_rejected(self):
        xts = AesXts(b"\x00" * 32)
        with pytest.raises(BlockSizeError):
            xts.encrypt(b"\x00" * 15, b"\x00" * 16)

    def test_bad_tweak_length_rejected(self):
        xts = AesXts(b"\x00" * 32)
        with pytest.raises(BlockSizeError):
            xts.encrypt(b"\x00" * 16, b"\x00" * 8)
