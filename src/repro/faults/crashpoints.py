"""Crash-point torture: kill the recoverable engine at every barrier.

Where :mod:`repro.faults.campaign` mounts *adversarial* tampering, this
module mounts *power loss*. A crash campaign

1. replays a seeded workload once against
   :class:`~repro.secure.recoverable.RecoverableSecureMemory` with a
   recording hook to enumerate every persist-barrier firing (site label,
   global barrier sequence, workload op index, op class), plus once
   cleanly for the reference state digest;
2. for every enumerated barrier, forks the engine state just before the
   op that reaches it and kills it mid-update under several persistence
   modes — ``none`` (nothing pending survives), ``all`` (everything
   pending survives), and seeded ``partial:<k>`` modes that persist a
   random subset with random byte truncation (torn writes);
3. optionally re-kills the machine *during recovery* at the redo
   barriers, then recovers again;
4. recovers from the surviving persistent image, replays the remainder
   of the workload from the first non-durable write, and classifies:

   * :attr:`~repro.faults.campaign.Outcome.RECOVERED` — the final state
     digest is byte-identical to the uncrashed run (and every replayed
     read returned the expected data);
   * :attr:`~repro.faults.campaign.Outcome.TORN` — the crash left a
     state the engine *detected* (:class:`~repro.common.errors.RecoveryError`
     or a downstream security violation); acceptable, because nothing
     wrong was silently served;
   * :attr:`~repro.faults.campaign.Outcome.FALSE_ACCEPT` — silent
     corruption: recovery and replay completed but produced different
     bytes. This is the hard failure the sweep exists to rule out.

Under a :class:`~repro.resilience.Supervisor` the sweep decomposes into
one work unit per crash op index, so a torture run that dies mid-sweep
resumes from its journal byte-identically.
"""

from __future__ import annotations

import hashlib
import random
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    CrashError,
    FaultInjectionError,
    SecurityViolation,
)
from repro.faults.campaign import Outcome
from repro.mem.backing import NvmRegion
from repro.metadata.split_counter import SplitCounterConfig
from repro.secure.functional import SECTOR_BYTES
from repro.secure.recoverable import (
    FORMAT_SITE,
    RECOVERY_SITES,
    UPDATE_SITES,
    RecoverableSecureMemory,
)

#: The non-partial persistence modes every barrier is killed under.
BASE_MODES: Tuple[str, ...] = ("none", "all")

#: The op classes a sweep is expected to cover (crossed with sites in
#: the coverage matrix; ``format``/``recovery`` classes ride along).
OP_CLASSES: Tuple[str, ...] = ("read", "write", "writeback", "bmt-update")


@dataclass(frozen=True)
class CrashCampaignSpec:
    """A fully seeded, reproducible crash-torture definition.

    The geometry is deliberately tiny and hot: few sectors, a 2-bit
    minor counter, and small groups, so minor overflows (the
    ``bmt-update`` op class) and WAL checkpoints happen within a short
    workload and every persist-barrier site fires many times.
    """

    name: str
    seed: int = 20260808
    size_bytes: int = 1024
    num_ops: int = 36
    #: Distinct sectors the workload hammers (small = fast overflows).
    hot_sectors: int = 6
    #: Every Nth op is an explicit WAL checkpoint (the ``writeback``
    #: class); 0 disables.
    checkpoint_every: int = 12
    #: Seeded ``partial:<k>`` persistence modes per barrier (torn writes).
    partial_trials: int = 1
    #: Also kill the machine during recovery redo, then recover again.
    recovery_kills: bool = True
    minor_bits: int = 2
    sectors_per_group: int = 4

    def counter_config(self) -> SplitCounterConfig:
        return SplitCounterConfig(
            minor_bits=self.minor_bits,
            sectors_per_group=self.sectors_per_group,
        )

    def modes(self) -> Tuple[str, ...]:
        return BASE_MODES + tuple(
            f"partial:{k}" for k in range(self.partial_trials)
        )


#: Built-in crash campaigns. ``crash`` is the CI job; ``crash-full``
#: widens the workload and the torn-write sampling (the ``slow`` sweep).
CRASH_CAMPAIGNS: Dict[str, CrashCampaignSpec] = {
    "crash": CrashCampaignSpec(name="crash"),
    "crash-full": CrashCampaignSpec(
        name="crash-full",
        seed=20260809,
        size_bytes=2048,
        num_ops=72,
        hot_sectors=10,
        checkpoint_every=16,
        partial_trials=3,
    ),
}


def crash_campaign_spec(name: str) -> CrashCampaignSpec:
    """Look up a built-in crash campaign by name."""
    try:
        return CRASH_CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CRASH_CAMPAIGNS))
        raise FaultInjectionError(
            f"unknown crash campaign {name!r} (known: {known})"
        ) from None


#: One workload operation: ``("write", addr, data)``, ``("read", addr,
#: b"")`` or ``("checkpoint", 0, b"")``.
CrashOp = Tuple[str, int, bytes]


def build_crash_ops(spec: CrashCampaignSpec) -> List[CrashOp]:
    """Seeded workload hitting all four op classes within *num_ops*."""
    rng = random.Random(spec.seed)
    sectors = min(spec.hot_sectors, spec.size_bytes // SECTOR_BYTES)
    ops: List[CrashOp] = []
    for i in range(spec.num_ops):
        if spec.checkpoint_every and i and i % spec.checkpoint_every == 0:
            ops.append(("checkpoint", 0, b""))
            continue
        address = SECTOR_BYTES * rng.randrange(sectors)
        if rng.random() < 0.65:
            data = bytes(rng.randrange(256) for _ in range(SECTOR_BYTES))
            ops.append(("write", address, data))
        else:
            ops.append(("read", address, b""))
    return ops


def crash_ops_from_accesses(
    spec: CrashCampaignSpec,
    accesses: Sequence[Tuple[int, bool]],
) -> List[CrashOp]:
    """Shape a benchmark access stream into a crash-torture workload.

    *accesses* is a ``(sector_address, is_write)`` sequence (e.g.
    distilled from a benchmark trace); addresses are folded into the
    campaign's tiny hot footprint so the sweep keeps benchmark-shaped
    locality while staying cheap. A deterministic tail is appended to
    guarantee every op class fires regardless of the benchmark's
    read/write mix: enough same-sector writes to overflow a minor
    counter (the ``bmt-update`` class), one read, and one checkpoint.
    """
    rng = random.Random(spec.seed)
    sectors = min(spec.hot_sectors, spec.size_bytes // SECTOR_BYTES)
    ops: List[CrashOp] = []
    for address, is_write in list(accesses)[: spec.num_ops]:
        if (
            spec.checkpoint_every
            and ops
            and len(ops) % spec.checkpoint_every == 0
        ):
            ops.append(("checkpoint", 0, b""))
        folded = (address // SECTOR_BYTES % sectors) * SECTOR_BYTES
        if is_write:
            data = bytes(rng.randrange(256) for _ in range(SECTOR_BYTES))
            ops.append(("write", folded, data))
        else:
            ops.append(("read", folded, b""))
    for _ in range(spec.counter_config().minor_limit + 1):
        data = bytes(rng.randrange(256) for _ in range(SECTOR_BYTES))
        ops.append(("write", 0, data))
    ops.append(("read", 0, b""))
    ops.append(("checkpoint", 0, b""))
    return ops


def _ops_digest(ops: Sequence[CrashOp]) -> str:
    digest = hashlib.sha256()
    for kind, address, data in ops:
        digest.update(f"{kind}:{address}:".encode("ascii"))
        digest.update(data)
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class BarrierEvent:
    """One persist-barrier firing observed during the dry run."""

    site: str
    barrier_seq: int
    #: Workload op in flight when the barrier fired (-1 = provisioning).
    op_index: int
    op_class: str


def _apply_op(engine: RecoverableSecureMemory, op: CrashOp) -> None:
    kind, address, data = op
    if kind == "write":
        engine.write(address, data)
    elif kind == "read":
        engine.read(address, SECTOR_BYTES)
    elif kind == "checkpoint":
        engine.checkpoint()
    else:
        raise FaultInjectionError(f"unknown crash op kind {kind!r}")


def _build_engine(
    spec: CrashCampaignSpec, nvm: Optional[NvmRegion] = None, **kwargs
) -> RecoverableSecureMemory:
    return RecoverableSecureMemory(
        spec.size_bytes,
        counter_config=spec.counter_config(),
        nvm=nvm,
        **kwargs,
    )


def nvm_geometry_bytes(spec: CrashCampaignSpec) -> int:
    """Size of the NVM region the campaign's engine geometry needs."""
    return _build_engine(spec).nvm_bytes


def enumerate_barriers(
    spec: CrashCampaignSpec, ops: Sequence[CrashOp]
) -> List[BarrierEvent]:
    """Dry-run the workload, recording every persist-barrier firing."""
    events: List[BarrierEvent] = []
    cursor = {"op": -1}
    holder: Dict[str, RecoverableSecureMemory] = {}

    def recorder(site: str, seq: int, pending) -> None:
        engine = holder.get("engine")
        op_class = engine.last_op_class if engine is not None else "format"
        events.append(BarrierEvent(site, seq, cursor["op"], op_class))

    region = NvmRegion(nvm_geometry_bytes(spec))
    region.install_barrier_hook(recorder)
    engine = _build_engine(spec, nvm=region, fresh=True)
    holder["engine"] = engine
    for i, op in enumerate(ops):
        cursor["op"] = i
        _apply_op(engine, op)
    region.install_barrier_hook(None)
    return events


def reference_digest(
    spec: CrashCampaignSpec, ops: Sequence[CrashOp]
) -> Tuple[str, int]:
    """(state digest, committed seq) of the uncrashed end state."""
    engine = _build_engine(spec)
    for op in ops:
        _apply_op(engine, op)
    return engine.state_digest(), engine.committed_seq


@dataclass(frozen=True)
class CrashTrial:
    """One planned kill: a barrier event × persistence mode."""

    event: BarrierEvent
    #: ``"none"`` / ``"all"`` / ``"partial:<k>"``.
    mode: str
    #: Optionally re-kill during recovery: ``(redo site, mode)``.
    recovery_kill: Optional[Tuple[str, str]] = None


def build_crash_trials(
    spec: CrashCampaignSpec, events: Sequence[BarrierEvent]
) -> List[CrashTrial]:
    """The systematic sweep: every barrier × every persistence mode.

    Recovery re-kills are added for the write-transaction sites (the
    only ones whose crash can leave an uncommitted WAL record for the
    redo path to replay).
    """
    trials = [
        CrashTrial(event=event, mode=mode)
        for event in events
        for mode in spec.modes()
    ]
    if spec.recovery_kills:
        redo_reachable = {"write:wal-append", "write:home-apply",
                          "write:root-commit"}
        for event in events:
            if event.site not in redo_reachable:
                continue
            for i, redo_site in enumerate(RECOVERY_SITES):
                # Alternate the persistence mode of the second kill so
                # both torn and clean redo crashes are exercised.
                mode = BASE_MODES[(event.barrier_seq + i) % len(BASE_MODES)]
                trials.append(
                    CrashTrial(
                        event=event,
                        mode="all",
                        recovery_kill=(redo_site, mode),
                    )
                )
    return trials


def _select_persisted(
    pending: Tuple[Tuple[int, bytes], ...], mode: str, rng: random.Random
) -> Tuple[Tuple[int, bytes], ...]:
    if mode == "none":
        return ()
    if mode == "all":
        return pending
    if mode.startswith("partial:"):
        chosen = []
        for address, data in pending:
            roll = rng.random()
            if roll < 0.4:
                continue  # write lost entirely
            if roll < 0.7 and len(data) > 1:
                # Torn write: only a prefix reached the medium.
                chosen.append((address, data[: rng.randrange(1, len(data))]))
            else:
                chosen.append((address, data))
        return tuple(chosen)
    raise FaultInjectionError(f"unknown crash mode {mode!r}")


def _make_kill_hook(region: NvmRegion, trial: CrashTrial,
                    rng: random.Random):
    """Hook that kills *region* exactly at the trial's barrier seq."""

    def hook(site: str, seq: int, pending) -> None:
        if seq != trial.event.barrier_seq:
            return
        if site != trial.event.site:
            raise FaultInjectionError(
                f"barrier seq {seq} fired at site {site!r}, but the dry "
                f"run recorded {trial.event.site!r} — nondeterministic "
                "workload replay"
            )
        region.crash(_select_persisted(pending, trial.mode, rng))
        raise CrashError(
            f"injected crash ({trial.mode}) at {site}",
            site=site, barrier_seq=seq,
        )

    return hook


def _make_site_kill_hook(region: NvmRegion, site_name: str, mode: str,
                         rng: random.Random):
    """Hook that kills at the first firing of *site_name* (recovery)."""

    def hook(site: str, seq: int, pending) -> None:
        if site != site_name:
            return
        region.crash(_select_persisted(pending, mode, rng))
        raise CrashError(
            f"injected recovery crash ({mode}) at {site}",
            site=site, barrier_seq=seq,
        )

    return hook


@dataclass(frozen=True)
class CrashTrialRecord:
    """One executed kill and its classified result."""

    site: str
    op_class: str
    op_index: int
    barrier_seq: int
    mode: str
    recovery_kill: Optional[str]
    #: Whether the planned recovery re-kill actually fired (it cannot
    #: when the first crash left nothing for the redo path to replay).
    recovery_fired: bool
    outcome: Outcome
    #: Durable transaction count recovery settled on (-1 when recovery
    #: itself failed).
    committed_seq: int
    detail: str


def _trial_rng(spec: CrashCampaignSpec, trial: CrashTrial) -> random.Random:
    material = (
        f"{spec.seed}:{trial.event.barrier_seq}:{trial.mode}:"
        f"{trial.recovery_kill}"
    )
    return random.Random(
        int.from_bytes(
            hashlib.sha256(material.encode("ascii")).digest()[:8], "little"
        )
    )


def _recover_engine(
    spec: CrashCampaignSpec,
    image: NvmRegion,
    trial: CrashTrial,
    rng: random.Random,
    fired: Dict[str, bool],
) -> RecoverableSecureMemory:
    """Recover from *image*, optionally surviving a second kill.

    ``fired["recovery"]`` reports whether the planned re-kill actually
    fired — it cannot when the first crash left no redo work. The flag
    is written *before* the second recovery attempt so a detected
    (TORN) outcome still attributes the redo site correctly.
    """
    if trial.recovery_kill is not None:
        redo_site, mode = trial.recovery_kill
        image.install_barrier_hook(
            _make_site_kill_hook(image, redo_site, mode, rng)
        )
        try:
            engine = _build_engine(spec, nvm=image)
        except CrashError:
            # The machine died again mid-redo; recovery must be
            # restartable from whatever that second crash persisted.
            fired["recovery"] = True
            return _build_engine(spec, nvm=image.persistent_image())
        image.install_barrier_hook(None)
        return engine
    return _build_engine(spec, nvm=image)


def _replay_and_classify(
    spec: CrashCampaignSpec,
    engine: RecoverableSecureMemory,
    ops: Sequence[CrashOp],
    ref_digest: str,
    ref_committed: int,
) -> Tuple[Outcome, str]:
    """Resume the workload on a recovered engine and compare end states.

    The resume point follows from the persist discipline alone: exactly
    one committed transaction per write op, so the first
    ``engine.committed_seq`` writes (and everything interleaved before
    the next write) are durable and must *not* be replayed.
    """
    shadow: Dict[int, bytes] = {}
    remaining = engine.committed_seq
    resume = 0
    if remaining:
        for i, (kind, address, data) in enumerate(ops):
            if kind != "write":
                continue
            shadow[address] = data
            remaining -= 1
            if remaining == 0:
                resume = i + 1
                break
    if remaining:
        return (
            Outcome.FALSE_ACCEPT,
            f"recovered committed_seq {engine.committed_seq} exceeds the "
            f"workload's write count",
        )
    # Reads/checkpoints between the last durable write and the first
    # non-durable one are replayed again — they have no durable effect,
    # and re-running the reads gives detection another chance to fire.
    for kind, address, data in ops[resume:]:
        if kind == "write":
            engine.write(address, data)
            shadow[address] = data
        elif kind == "read":
            got = engine.read(address, SECTOR_BYTES)
            expected = shadow.get(address, b"\x00" * SECTOR_BYTES)
            if got != expected:
                return (
                    Outcome.FALSE_ACCEPT,
                    f"replayed read at {address:#x} silently returned "
                    "wrong data after recovery",
                )
        else:
            engine.checkpoint()
    if engine.committed_seq != ref_committed:
        return (
            Outcome.FALSE_ACCEPT,
            f"replay converged on committed_seq {engine.committed_seq}, "
            f"reference has {ref_committed}",
        )
    if engine.state_digest() != ref_digest:
        return (
            Outcome.FALSE_ACCEPT,
            "state digest diverged from the uncrashed run",
        )
    return Outcome.RECOVERED, "recovered and replayed to byte-identity"


def run_crash_trial(
    spec: CrashCampaignSpec,
    ops: Sequence[CrashOp],
    trial: CrashTrial,
    base: Optional[RecoverableSecureMemory],
    ref_digest: str,
    ref_committed: int,
) -> CrashTrialRecord:
    """Execute one kill from a pre-advanced engine state.

    *base* is the engine advanced to just before the trial's op (``None``
    for provisioning-time trials, which build from a blank region). The
    caller owns forking: *base* is deepcopied here and never mutated.
    """
    rng = _trial_rng(spec, trial)
    if trial.event.op_index < 0:
        region = NvmRegion(nvm_geometry_bytes(spec))
        region.install_barrier_hook(_make_kill_hook(region, trial, rng))
        crashed = None
        try:
            _build_engine(spec, nvm=region, fresh=True)
        except CrashError:
            crashed = region
        if crashed is None:
            raise FaultInjectionError(
                f"provisioning crash at seq {trial.event.barrier_seq} "
                "never fired"
            )
    else:
        fork = deepcopy(base)
        fork.nvm.install_barrier_hook(
            _make_kill_hook(fork.nvm, trial, rng)
        )
        crashed = None
        try:
            _apply_op(fork, ops[trial.event.op_index])
        except CrashError:
            crashed = fork.nvm
        if crashed is None:
            raise FaultInjectionError(
                f"crash at barrier seq {trial.event.barrier_seq} "
                f"({trial.event.site}) never fired during op "
                f"{trial.event.op_index}"
            )

    outcome: Outcome
    committed = -1
    fired: Dict[str, bool] = {"recovery": False}
    try:
        engine = _recover_engine(
            spec, crashed.persistent_image(), trial, rng, fired
        )
        committed = engine.committed_seq
        outcome, detail = _replay_and_classify(
            spec, engine, ops, ref_digest, ref_committed
        )
    except SecurityViolation as exc:
        outcome = Outcome.TORN
        detail = f"{type(exc).__name__}: {exc}"
    return CrashTrialRecord(
        site=trial.event.site,
        op_class=trial.event.op_class,
        op_index=trial.event.op_index,
        barrier_seq=trial.event.barrier_seq,
        mode=trial.mode,
        recovery_kill=(
            ":".join(trial.recovery_kill) if trial.recovery_kill else None
        ),
        recovery_fired=fired["recovery"],
        outcome=outcome,
        committed_seq=committed,
        detail=detail,
    )


@dataclass
class CrashCell:
    """Aggregated outcomes of one (site, op class) coverage cell."""

    trials: int = 0
    recovered: int = 0
    torn: int = 0
    silent: int = 0

    def absorb(self, outcome: Outcome) -> None:
        self.trials += 1
        if outcome is Outcome.RECOVERED:
            self.recovered += 1
        elif outcome is Outcome.TORN:
            self.torn += 1
        else:
            self.silent += 1


@dataclass
class CrashReport:
    """Everything a crash campaign learned, plus the verdict."""

    spec: CrashCampaignSpec
    records: List[CrashTrialRecord] = field(default_factory=list)
    #: (site, op class) -> aggregated cell.
    cells: Dict[Tuple[str, str], CrashCell] = field(default_factory=dict)
    #: Supervision outcome when run under a supervisor (``None`` direct).
    supervision: Optional[object] = None

    def absorb(self, record: CrashTrialRecord) -> None:
        self.records.append(record)
        key = (record.site, record.op_class)
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = CrashCell()
        cell.absorb(record.outcome)

    @property
    def silent_corruptions(self) -> List[CrashTrialRecord]:
        """The hard failures: crashes that survived *undetected*."""
        return [
            r for r in self.records if r.outcome is Outcome.FALSE_ACCEPT
        ]

    @property
    def sites_covered(self) -> Tuple[str, ...]:
        sites = {r.site for r in self.records}
        for r in self.records:
            if r.recovery_kill and r.recovery_fired:
                sites.add(r.recovery_kill.rsplit(":", 1)[0])
        return tuple(sorted(sites))

    @property
    def op_classes_covered(self) -> Tuple[str, ...]:
        return tuple(sorted({r.op_class for r in self.records}))

    @property
    def complete(self) -> bool:
        """Did the sweep reach every site and steady-state op class?"""
        sites = set(self.sites_covered)
        expected = set(UPDATE_SITES) | {FORMAT_SITE}
        if self.spec.recovery_kills:
            expected |= set(RECOVERY_SITES)
        return expected <= sites and set(OP_CLASSES) <= set(
            self.op_classes_covered
        )

    @property
    def ok(self) -> bool:
        return not self.silent_corruptions and self.complete


def _record_payload(record: CrashTrialRecord) -> Dict[str, object]:
    return {
        "site": record.site,
        "op_class": record.op_class,
        "op_index": record.op_index,
        "barrier_seq": record.barrier_seq,
        "mode": record.mode,
        "recovery_kill": record.recovery_kill,
        "recovery_fired": record.recovery_fired,
        "outcome": record.outcome.value,
        "committed_seq": record.committed_seq,
        "detail": record.detail,
    }


def _record_from_payload(payload: Dict[str, object]) -> CrashTrialRecord:
    return CrashTrialRecord(
        site=payload["site"],
        op_class=payload["op_class"],
        op_index=payload["op_index"],
        barrier_seq=payload["barrier_seq"],
        mode=payload["mode"],
        recovery_kill=payload["recovery_kill"],
        recovery_fired=payload["recovery_fired"],
        outcome=Outcome(payload["outcome"]),
        committed_seq=payload["committed_seq"],
        detail=payload["detail"],
    )


def _advance(
    spec: CrashCampaignSpec, ops: Sequence[CrashOp], op_index: int
) -> RecoverableSecureMemory:
    """Fresh engine advanced to just before ``ops[op_index]``."""
    engine = _build_engine(spec)
    for op in ops[:op_index]:
        _apply_op(engine, op)
    return engine


def _run_op_group(
    spec: CrashCampaignSpec,
    ops: Sequence[CrashOp],
    trials: Sequence[CrashTrial],
    ref_digest: str,
    ref_committed: int,
    base: Optional[RecoverableSecureMemory],
) -> List[CrashTrialRecord]:
    return [
        run_crash_trial(spec, ops, trial, base, ref_digest, ref_committed)
        for trial in trials
    ]


def crash_campaign(
    spec: CrashCampaignSpec,
    ops: Sequence[CrashOp],
    trials: Sequence[CrashTrial],
    ref_digest: str,
    ref_committed: int,
):
    """Decompose a crash sweep into per-op-index work units.

    The crash op index is the natural unit: all its trials fork from
    one advanced engine state, and units share nothing but the seeded
    workload. Identity covers the spec plus the ops digest, so a
    journaled unit result is only ever reused against the exact same
    torture.
    """
    from repro.resilience import Campaign, WorkUnit

    ops_id = _ops_digest(ops)
    by_op: Dict[int, List[CrashTrial]] = {}
    for trial in trials:
        by_op.setdefault(trial.event.op_index, []).append(trial)

    def runner_for(op_index: int, group: List[CrashTrial]):
        def run() -> List[Dict[str, object]]:
            base = (
                _advance(spec, ops, op_index) if op_index >= 0 else None
            )
            return [
                _record_payload(r)
                for r in _run_op_group(
                    spec, ops, group, ref_digest, ref_committed, base
                )
            ]

        return run

    units = [
        WorkUnit(
            kind="crash-op",
            params={
                "campaign": spec.name,
                "seed": spec.seed,
                "ops": ops_id,
                "op_index": op_index,
                "trials": len(group),
            },
            runner=runner_for(op_index, group),
            label=f"{spec.name}:op{op_index}",
        )
        for op_index, group in sorted(by_op.items())
    ]
    return Campaign(name=f"crash:{spec.name}", units=units)


def run_crash_campaign(
    spec: CrashCampaignSpec,
    ops: Optional[Sequence[CrashOp]] = None,
    supervisor=None,
    supervisor_factory=None,
) -> CrashReport:
    """Mount the full systematic sweep for *spec*.

    Direct runs advance one cursor engine across the workload and fork
    per trial (cost linear in ops + trials). Supervised runs decompose
    into per-op work units: each is retried on transient failure,
    journaled durably, and skipped on resume — a supervisor that died
    mid-torture continues byte-identically. ``supervisor_factory``
    receives the concrete :class:`~repro.resilience.Campaign` and
    returns the supervisor — the shape journaled runs need, since the
    journal is opened against the campaign fingerprint.
    """
    if ops is None:
        ops = build_crash_ops(spec)
    events = enumerate_barriers(spec, ops)
    ref_digest, ref_committed = reference_digest(spec, ops)
    trials = build_crash_trials(spec, events)
    report = CrashReport(spec=spec)

    if supervisor is None and supervisor_factory is not None:
        campaign = crash_campaign(
            spec, ops, trials, ref_digest, ref_committed
        )
        supervisor = supervisor_factory(campaign)
        outcome = supervisor.run(campaign)
        report.supervision = outcome
        for unit in campaign.units:
            for payload in outcome.results.get(unit.unit_id) or ():
                report.absorb(_record_from_payload(payload))
        return report

    if supervisor is None:
        by_op: Dict[int, List[CrashTrial]] = {}
        for trial in trials:
            by_op.setdefault(trial.event.op_index, []).append(trial)
        cursor = _build_engine(spec)
        cursor_at = 0
        for op_index in sorted(by_op):
            base: Optional[RecoverableSecureMemory] = None
            if op_index >= 0:
                while cursor_at < op_index:
                    _apply_op(cursor, ops[cursor_at])
                    cursor_at += 1
                base = cursor
            for record in _run_op_group(
                spec, ops, by_op[op_index], ref_digest, ref_committed, base
            ):
                report.absorb(record)
    else:
        campaign = crash_campaign(
            spec, ops, trials, ref_digest, ref_committed
        )
        outcome = supervisor.run(campaign)
        report.supervision = outcome
        for unit in campaign.units:
            for payload in outcome.results.get(unit.unit_id) or ():
                report.absorb(_record_from_payload(payload))
    return report
