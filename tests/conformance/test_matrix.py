"""Tests for the replay matrix helper and the differential run context."""

import pytest

from repro.conformance.functional import execute_log
from repro.conformance.fuzzer import rebuild_log
from repro.conformance.matrix import (
    conformance_factories,
    run_matrix,
)
from repro.gpu.config import VOLTA
from repro.gpu.simulator import (
    EventKind,
    MemoryEvent,
    MemoryEventLog,
    replay_matrix,
)


def _log(partitions=(0, 1), sectors=4, rounds=6, name="unit"):
    base = MemoryEventLog(
        trace_name=name, memory_intensity=0.5, instructions=1
    )
    events = []
    value = bytes(range(32))
    for r in range(rounds):
        for p in partitions:
            for s in range(sectors):
                kind = EventKind.WRITEBACK if r % 2 else EventKind.FILL
                events.append(MemoryEvent(kind, p, s, value))
    return rebuild_log(base, events)


class TestReplayMatrix:
    def test_results_keyed_and_ordered_like_factories(self):
        factories = conformance_factories(("nosec", "pssm"))
        results = replay_matrix(_log(), factories, VOLTA)
        assert list(results) == ["nosec", "pssm"]

    def test_same_log_drives_every_engine(self):
        log = _log()
        factories = conformance_factories(("nosec", "pssm"))
        results = replay_matrix(log, factories, VOLTA)
        for result in results.values():
            assert result.engine_stats.fills == log.fill_sectors
            assert result.engine_stats.writebacks == log.writeback_sectors

    def test_unknown_engine_key_raises(self):
        with pytest.raises(KeyError, match="doom"):
            conformance_factories(("nosec", "doom"))


class TestRunMatrix:
    def test_populates_cross_checks(self):
        run = run_matrix(
            _log(partitions=(0, 1)),
            engines=("nosec", "pssm", "plutus"),
            functional_modes=("pssm",),
            functional_events=16,
        )
        assert set(run.results) == {"nosec", "pssm", "plutus"}
        assert run.parallel is not None and run.parallel[0] == "plutus"
        assert run.roundtrip is not None
        assert set(run.functional) == {"pssm"}
        assert set(run.object_path) == set(run.results)

    def test_columnar_cross_check_matches_default_path(self):
        run = run_matrix(
            _log(),
            engines=("nosec", "plutus"),
            check_parallel=False,
            check_roundtrip=False,
            functional_modes=(),
        )
        for key, scalar in run.object_path.items():
            columnar = run.results[key]
            assert columnar.traffic == scalar.traffic
            assert columnar.engine_stats == scalar.engine_stats

    def test_columnar_cross_check_can_be_disabled(self):
        run = run_matrix(
            _log(),
            engines=("nosec",),
            check_parallel=False,
            check_roundtrip=False,
            check_columnar=False,
            functional_modes=(),
        )
        assert run.object_path == {}

    def test_single_partition_skips_parallel(self):
        run = run_matrix(
            _log(partitions=(3,)),
            engines=("nosec", "plutus"),
            functional_modes=(),
        )
        assert run.parallel is None

    def test_stages_can_be_disabled(self):
        run = run_matrix(
            _log(),
            engines=("nosec",),
            check_parallel=False,
            check_roundtrip=False,
            functional_modes=(),
        )
        assert run.parallel is None
        assert run.roundtrip is None
        assert run.functional == {}

    def test_claims_flag_recorded(self):
        run = run_matrix(
            _log(), engines=("nosec",), claims_apply=True,
            check_parallel=False, check_roundtrip=False, functional_modes=(),
        )
        assert run.claims_apply


class TestFunctionalOracle:
    def test_write_then_read_accounting(self):
        value = bytes(range(32))
        other = bytes(reversed(range(32)))
        base = MemoryEventLog(
            trace_name="f", memory_intensity=0.5, instructions=1
        )
        log = rebuild_log(base, [
            MemoryEvent(EventKind.WRITEBACK, 0, 5, value),
            MemoryEvent(EventKind.FILL, 0, 5, other),
            MemoryEvent(EventKind.FILL, 0, 9, None),
        ])
        outcome = execute_log(log, "pssm")
        assert outcome.events_consumed == 3
        assert outcome.writes == 1 and outcome.reads == 2
        assert outcome.written_reads == 1
        assert outcome.mismatches == 0
        assert outcome.security_violations == []
        assert outcome.mac_checks == 1
        assert outcome.mac_checks_avoided == 0

    def test_fold_aliases_share_storage(self):
        value = bytes(range(32))
        base = MemoryEventLog(
            trace_name="f", memory_intensity=0.5, instructions=1
        )
        # Sectors 1 and 1+fold collide in the folded functional memory;
        # the shadow model folds identically, so no false mismatch.
        log = rebuild_log(base, [
            MemoryEvent(EventKind.WRITEBACK, 0, 1, value),
            MemoryEvent(EventKind.FILL, 0, 1 + 8, value),
        ])
        outcome = execute_log(log, "plutus", fold_sectors=8)
        assert outcome.written_reads == 1
        assert outcome.mismatches == 0

    def test_max_events_caps_execution(self):
        log = _log(partitions=(0,), sectors=4, rounds=8)
        outcome = execute_log(log, "pssm", max_events=10)
        assert outcome.events_consumed == 10
        assert outcome.fills_seen + outcome.writebacks_seen == 10

    def test_rejects_bad_fold(self):
        with pytest.raises(ValueError):
            execute_log(_log(), "pssm", fold_sectors=0)
