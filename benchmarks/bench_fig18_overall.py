"""Fig. 18: full Plutus vs PSSM and common-counters+PSSM.

Paper: +16.86% average IPC over PSSM (up to +58.38%), +8.97% over
common counters combined with PSSM.
"""

from conftest import run_once

from repro.harness.experiments import run_fig18
from repro.harness.report import render_experiment


def test_fig18_overall(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig18(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    # Headline: double-digit average gain, large maximum, CC beaten.
    assert 1.10 < result.summary["mean"] < 1.30
    assert result.summary["max"] > 1.25
    assert result.summary["mean_vs_cc"] > 1.05
    # Nothing regresses.
    assert result.summary["min"] > 0.99
