"""CLI tests for the ``conform`` and ``list`` subcommands."""

import pytest

from repro.harness.__main__ import main


class TestConformCli:
    def test_fuzz_only_campaign_passes(self, capsys):
        rc = main(["conform", "--fuzz", "2", "--seed", "9",
                   "--functional-events", "24"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fuzz verdict: PASS" in out
        assert "corpus" not in out

    def test_fuzz_report_names_seed_and_patterns(self, capsys):
        rc = main(["conform", "--fuzz", "1", "--seed", "31",
                   "--functional-events", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "seed 31" in out

    def test_negative_fuzz_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["conform", "--fuzz", "-1"])
        assert excinfo.value.code == 2

    def test_unknown_flag_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["conform", "--doom"])
        assert excinfo.value.code == 2

    def test_missing_corpus_dir_exits_nonzero(self, tmp_path, capsys):
        rc = main(["conform", "--corpus",
                   "--corpus-dir", str(tmp_path / "nowhere"),
                   "--functional-events", "16"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "missing" in out
        assert "FAIL" in out


class TestListCli:
    def test_lists_every_key_family(self, capsys):
        rc = main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        for heading in (
            "benchmarks:", "engines:", "experiments:", "fault campaigns:",
            "fuzz patterns:", "corpus entries:", "invariants:",
        ):
            assert heading in out

    def test_names_design_points_and_benchmarks(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "plutus" in out
        assert "bfs" in out
        assert "plutus-leq-pssm" in out

    def test_rejects_arguments(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["list", "--doom"])
        assert excinfo.value.code == 2
