"""Observability sessions and the ambient-activation protocol.

Instrumented components (caches, BMT traversals, engines, the replay
loop) do not take an observability argument — they capture the *active*
session at construction time via :func:`active`. The default active
session is a shared disabled singleton whose registry and tracer are
no-ops, so an uninstrumented run pays one attribute check per hook.

The harness activates a real session around a region::

    session = ObsSession(ObsConfig(enabled=True))
    with activate(session):
        result = replay_events(log, factory, config)
    write_metrics_json("m.json", session.registry)

Activation is scoped and re-entrant (the previous session is restored on
exit), which keeps concurrently constructed contexts independent.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.config import ObsConfig
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_SPAN_PROFILER, SpanProfiler
from repro.obs.tracer import NULL_TRACER, EventTracer


class ObsSession:
    """One instrumentation scope: config, registry, tracer, profiler."""

    __slots__ = ("config", "enabled", "registry", "tracer", "profiler")

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.enabled = self.config.enabled
        self.registry = (
            MetricsRegistry() if self.config.metrics_active else NULL_REGISTRY
        )
        self.tracer = (
            EventTracer(self.config.ring_capacity)
            if self.config.tracing_active
            else NULL_TRACER
        )
        self.profiler = (
            SpanProfiler(self.config.max_spans)
            if self.config.spans_active
            else NULL_SPAN_PROFILER
        )

    @contextmanager
    def phase(self, name: str, **attrs: object) -> Iterator[None]:
        """Time a pipeline phase into both the tracer and the registry.

        Emits a ``phase.<name>`` span and sets a ``phase.<name>.seconds``
        gauge, so phase timings survive in the metrics JSON even when
        tracing is off. Each phase also opens a profiler span, giving
        the hotspot tree its top-level hierarchy. No clock is read when
        the session is disabled.
        """
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        with self.profiler.span(name, **attrs):
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.registry.gauge(f"phase.{name}.seconds").set(elapsed)
                self.tracer.emit(
                    f"phase.{name}", kind="span", dur=elapsed, **attrs
                )


#: The shared everything-off session; the default active session.
DISABLED_SESSION = ObsSession()

_active: ObsSession = DISABLED_SESSION


def active() -> ObsSession:
    """The session instrumentation sites should bind to right now."""
    return _active


@contextmanager
def activate(session: ObsSession) -> Iterator[ObsSession]:
    """Make *session* the active one for the duration of the block."""
    global _active
    previous = _active
    _active = session
    try:
        yield session
    finally:
        _active = previous
