"""Physical address geometry and partition interleaving.

The modeled GPU (Table I) has 32 memory partitions over a 4 GiB protected
range, 128-byte cache lines split into four 32-byte sectors. Addresses
are interleaved across partitions pseudo-randomly (XOR-folded line bits),
matching the "pseudo-random memory interleaving" of the baseline
configuration — consecutive lines scatter across partitions so that
streaming kernels load all partitions evenly.

PSSM's key addressing insight is preserved: security metadata is indexed
by the *partition-local* address (the dense index of a line's sectors
within its own partition), so a partition's metadata describes only data
that actually lives there and metadata fetches never cross partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import is_power_of_two, log2_exact
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class AddressMap:
    """Geometry of the protected physical address space."""

    memory_bytes: int = 4 * 1024**3
    num_partitions: int = 32
    line_bytes: int = 128
    sector_bytes: int = 32
    interleave_hash: bool = True

    def __post_init__(self) -> None:
        for name in ("memory_bytes", "num_partitions", "line_bytes", "sector_bytes"):
            if not is_power_of_two(getattr(self, name)):
                raise ConfigurationError(f"{name} must be a power of two")
        if self.line_bytes % self.sector_bytes != 0:
            raise ConfigurationError("line size must be a multiple of sector size")
        if self.memory_bytes % (self.line_bytes * self.num_partitions) != 0:
            raise ConfigurationError(
                "memory size must be a multiple of line size x partitions"
            )

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes

    @property
    def num_lines(self) -> int:
        return self.memory_bytes // self.line_bytes

    @property
    def lines_per_partition(self) -> int:
        return self.num_lines // self.num_partitions

    @property
    def partition_bytes(self) -> int:
        return self.memory_bytes // self.num_partitions

    def check(self, address: int) -> None:
        """Validate that *address* falls inside the protected range."""
        if not 0 <= address < self.memory_bytes:
            raise ValueError(
                f"address {address:#x} outside protected range "
                f"[0, {self.memory_bytes:#x})"
            )

    def line_address(self, address: int) -> int:
        """Round *address* down to its 128-byte line base."""
        self.check(address)
        return address & ~(self.line_bytes - 1)

    def line_index(self, address: int) -> int:
        """Global line number of *address*."""
        self.check(address)
        return address // self.line_bytes

    def sector_in_line(self, address: int) -> int:
        """Sector slot (0..3) of *address* within its line."""
        self.check(address)
        return (address % self.line_bytes) // self.sector_bytes

    def sector_address(self, address: int) -> int:
        """Round *address* down to its 32-byte sector base."""
        self.check(address)
        return address & ~(self.sector_bytes - 1)

    def partition_of(self, address: int) -> int:
        """Memory partition that owns the line containing *address*.

        With hashing enabled the partition is an XOR fold of the line
        index bits, which decorrelates partition choice from low-order
        strides (the pseudo-random interleave of real GPUs). Without
        hashing, simple modulo interleaving is used.
        """
        line = self.line_index(address)
        if not self.interleave_hash:
            return line % self.num_partitions
        bits = log2_exact(self.num_partitions)
        folded = 0
        remaining = line
        while remaining:
            folded ^= remaining & (self.num_partitions - 1)
            remaining >>= bits
        return folded

    def local_line_index(self, address: int) -> int:
        """Dense per-partition line number (PSSM partition-local address).

        Lines mapping to a partition are numbered in ascending global
        order; with power-of-two interleaving every partition holds
        exactly ``lines_per_partition`` lines and the dense index is the
        global line index divided by the partition count.
        """
        return self.line_index(address) // self.num_partitions

    def local_sector_index(self, address: int) -> int:
        """Dense per-partition sector number of *address*."""
        return (
            self.local_line_index(address) * self.sectors_per_line
            + self.sector_in_line(address)
        )

    def iter_line_sector_addresses(self, address: int):
        """Yield the four sector base addresses of the line at *address*."""
        base = self.line_address(address)
        for i in range(self.sectors_per_line):
            yield base + i * self.sector_bytes


DEFAULT_ADDRESS_MAP = AddressMap()
