"""Crash-atomic text-file writes.

Every on-disk artifact the harness produces — disk-cache entries, the
golden corpus, metrics and trace exports, supervised-run reports —
goes through :func:`atomic_write_text`: the content is written to a
temporary file in the destination directory and published with
``os.replace``, so a reader (or a process killed mid-write) observes
either the old file or the complete new one, never a torn prefix.

``fsync=True`` additionally flushes the file and its directory entry
before the rename, which protects against power loss at the cost of a
synchronous disk barrier. Artifacts that are self-validating (the
checksummed disk cache) skip the fsync; artifacts that *are* the
source of truth (run journals, reports, the corpus) keep it.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


def fsync_directory(directory: str) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: PathLike,
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> None:
    """Atomically replace *path* with *text* (temp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses a filesystem boundary. On any failure the
    temporary file is removed and the original *path* is untouched.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)
