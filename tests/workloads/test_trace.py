"""Tests for trace records."""

import pytest

from repro.common.errors import TraceError
from repro.workloads.trace import Trace, TraceAccess


class TestTraceAccess:
    def test_basic_construction(self):
        access = TraceAccess(0x100, 0b0101, False)
        assert list(access.sectors()) == [0, 2]
        assert access.sector_count == 2

    def test_alignment_enforced(self):
        with pytest.raises(TraceError):
            TraceAccess(0x101, 0b0001, False)

    def test_mask_range_enforced(self):
        with pytest.raises(TraceError):
            TraceAccess(0x100, 0, False)
        with pytest.raises(TraceError):
            TraceAccess(0x100, 16, False)

    def test_values_must_match_mask(self):
        with pytest.raises(TraceError):
            TraceAccess(0x100, 0b0001, False, [(1, b"\x00" * 32)])

    def test_values_must_be_sector_sized(self):
        with pytest.raises(TraceError):
            TraceAccess(0x100, 0b0001, False, [(0, b"\x00" * 16)])

    def test_value_lookup(self):
        image = bytes(range(32))
        access = TraceAccess(0x100, 0b0011, True, [(0, image)])
        assert access.value_for(0) == image
        assert access.value_for(1) is None

    def test_value_lookup_without_values(self):
        assert TraceAccess(0x100, 0b0001, False).value_for(0) is None

    def test_repr_is_informative(self):
        assert "W" in repr(TraceAccess(0x100, 0b0001, True))
        assert "R" in repr(TraceAccess(0x100, 0b0001, False))


class TestTrace:
    def make(self):
        return Trace(
            name="t",
            accesses=[
                TraceAccess(0x0, 0b1111, False),
                TraceAccess(0x80, 0b0001, True),
                TraceAccess(0x0, 0b0001, False),
            ],
            memory_intensity=0.7,
        )

    def test_read_write_counts(self):
        trace = self.make()
        assert trace.read_accesses == 2
        assert trace.write_accesses == 1
        assert trace.read_fraction == pytest.approx(2 / 3)

    def test_footprint(self):
        trace = self.make()
        assert trace.touched_lines == 2
        assert trace.footprint_bytes == 256

    def test_default_instruction_estimate(self):
        assert self.make().instructions == 60

    def test_intensity_bounds(self):
        with pytest.raises(TraceError):
            Trace(name="x", accesses=[], memory_intensity=1.5)

    def test_iteration(self):
        assert len(list(self.make())) == 3
