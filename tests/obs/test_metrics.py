"""Tests for the metrics registry instruments."""

import json

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sampler,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_as_dict(self):
        c = Counter("x")
        c.inc(3)
        assert c.as_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("x")
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("depth", bounds=(0, 1, 2, 4))
        # Exactly on a bound -> that bucket; between bounds -> next one up.
        for value, bucket in [(0, 0), (1, 1), (2, 2), (3, 3), (4, 3)]:
            before = list(h.counts)
            h.record(value)
            assert h.counts[bucket] == before[bucket] + 1, value

    def test_overflow_bucket(self):
        h = Histogram("depth", bounds=(0, 1))
        h.record(99)
        assert h.counts[-1] == 1

    def test_summary_stats(self):
        h = Histogram("depth", bounds=(0, 1, 2))
        for v in (0, 1, 2):
            h.record(v)
        assert h.count == 3
        assert h.mean == pytest.approx(1.0)
        assert h.min == 0 and h.max == 2

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(1, 1))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2, 1))

    def test_as_dict_roundtrips_through_json(self):
        h = Histogram("depth", bounds=(0, 1))
        h.record(1)
        assert json.loads(json.dumps(h.as_dict()))["count"] == 1


class TestHistogramPercentile:
    def test_empty_histogram_has_no_percentiles(self):
        h = Histogram("depth", bounds=(0, 1, 2))
        assert h.percentile(0.5) is None

    def test_single_point_every_quantile_is_that_point(self):
        h = Histogram("depth", bounds=(0, 1, 2, 4))
        h.record(2)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 2

    def test_endpoints_are_exact_min_and_max(self):
        h = Histogram("depth", bounds=(0, 1, 2, 4))
        for v in (1, 2, 3, 3, 4):
            h.record(v)
        assert h.percentile(0.0) == 1
        assert h.percentile(1.0) == 4

    def test_median_lands_on_bucket_upper_edge(self):
        h = Histogram("depth", bounds=(0, 1, 2, 4))
        for v in (0, 1, 2, 3, 4):
            h.record(v)
        # Rank 2.5 falls in the bucket whose upper edge is 2.
        assert h.percentile(0.5) == 2

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("depth", bounds=(0, 1))
        h.record(99)
        h.record(150)
        assert h.percentile(0.9) == 150

    def test_out_of_range_q_rejected(self):
        h = Histogram("depth", bounds=(0, 1))
        for q in (-0.01, 1.01):
            with pytest.raises(ValueError):
                h.percentile(q)


class TestSampler:
    def test_records_in_order(self):
        s = Sampler("t", window=8)
        for i in range(5):
            s.record(i * 10, float(i))
        assert s.positions == [0, 10, 20, 30, 40]
        assert s.values == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_windowing_compacts_instead_of_dropping(self):
        s = Sampler("t", window=8, agg="sum")
        for i in range(100):
            s.record(i, 1.0)
        # Bounded size, full-run coverage, total preserved under sum agg.
        assert len(s) <= 8 + 1
        assert s.positions[0] == 0
        assert s.positions[-1] >= 90
        assert sum(s.values) == pytest.approx(100.0)
        assert s.recorded == 100

    def test_mean_agg_preserves_level(self):
        s = Sampler("t", window=8, agg="mean")
        for i in range(64):
            s.record(i, 0.5)
        assert all(v == pytest.approx(0.5) for v in s.values)

    def test_positions_stay_sorted_after_compaction(self):
        s = Sampler("t", window=8)
        for i in range(1000):
            s.record(i, float(i % 7))
        assert s.positions == sorted(s.positions)

    def test_validation(self):
        with pytest.raises(ValueError):
            Sampler("t", window=2)
        with pytest.raises(ValueError):
            Sampler("t", agg="median")


class TestSamplerCompactionEdges:
    def test_empty_sampler_has_no_compactions(self):
        s = Sampler("t", window=8)
        assert s.compactions == 0
        assert s.values == []
        assert s.as_dict()["compactions"] == 0

    def test_single_point_never_compacts(self):
        s = Sampler("t", window=8)
        s.record(0, 1.0)
        assert s.compactions == 0
        assert s.values == [1.0]

    def test_exactly_full_window_does_not_compact(self):
        s = Sampler("t", window=8)
        for i in range(8):
            s.record(i, float(i))
        assert s.compactions == 0
        assert len(s) == 8

    def test_one_past_full_triggers_exactly_one_compaction(self):
        s = Sampler("t", window=8, agg="sum")
        for i in range(9):
            s.record(i, 1.0)
        assert s.compactions == 1
        # 9 points pair-merge to 4 merged + 1 odd trailing point.
        assert len(s) == 5
        assert sum(s.values) == pytest.approx(9.0)

    def test_compaction_count_grows_with_overflow(self):
        s = Sampler("t", window=8)
        for i in range(100):
            s.record(i, 1.0)
        assert s.compactions >= 2
        assert s.as_dict()["compactions"] == s.compactions

    def test_merge_snapshot_accumulates_compactions(self):
        a = Sampler("t", window=8, agg="sum")
        b = Sampler("t", window=8, agg="sum")
        for i in range(20):
            a.record(i, 1.0)
            b.record(i, 1.0)
        before = a.compactions
        a.merge_snapshot(b.as_dict())
        assert a.compactions >= before + b.compactions


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.sampler("s") is reg.sampler("s")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_as_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(0, 1)).record(1)
        reg.sampler("s").record(0, 3.0)
        payload = json.loads(json.dumps(reg.as_dict()))
        assert set(payload) == {"c", "g", "h", "s"}
        assert payload["c"]["value"] == 2

    def test_get_and_names(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.counter("a")
        assert reg.names() == ["a", "z"]
        assert reg.get("missing") is None


class TestNullRegistry:
    def test_disabled_mode_is_a_shared_noop(self):
        c = NULL_REGISTRY.counter("anything")
        c.inc(10)
        assert c.value == 0
        assert NULL_REGISTRY.counter("other") is c
        NULL_REGISTRY.gauge("g").set(5.0)
        assert NULL_REGISTRY.gauge("g").value == 0.0
        NULL_REGISTRY.histogram("h", bounds=(0,)).record(3)
        assert NULL_REGISTRY.histogram("h", bounds=(0,)).count == 0
        NULL_REGISTRY.sampler("s").record(0, 1.0)
        assert len(NULL_REGISTRY.sampler("s")) == 0
        assert NULL_REGISTRY.as_dict() == {}
        assert not NULL_REGISTRY.enabled
