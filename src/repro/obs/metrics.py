"""Zero-dependency metrics registry.

Four instrument kinds cover what the secure-memory pipeline needs:

* :class:`Counter` — monotonic event counts (cache hits, MAC skips);
* :class:`Gauge` — last-value-wins scalars (phase durations, hit rates);
* :class:`Histogram` — fixed-bucket distributions (BMT verification
  depths);
* :class:`Sampler` — bounded time series over trace position (traffic
  per interval, value-cache hit rate over time). A full sampler merges
  adjacent points instead of dropping the head, so the series always
  covers the whole run.

Instruments are created get-or-create through a :class:`MetricsRegistry`
and serialize to plain JSON via ``as_dict``. The :data:`NULL_REGISTRY`
twin implements the same surface as shared no-op singletons; disabled
sessions hand it out so instrumentation sites never branch on "is
observability on" beyond a single ``is not None`` / ``enabled`` check.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing event count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-value-wins scalar."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``bounds`` are inclusive upper edges: a recorded value lands in the
    first bucket whose bound is >= the value; values above the last
    bound land in the overflow bucket (``counts[-1]``).
    """

    kind = "histogram"
    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(bounds)
        if any(b >= a for b, a in zip(ordered, ordered[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class Sampler:
    """Bounded time series keyed by a caller-supplied position.

    Points are ``(position, value)`` pairs recorded in nondecreasing
    position order (trace position, event index, ...). When the window
    fills, adjacent pairs are merged — summed for additive series
    (``agg="sum"``, e.g. bytes per interval) or averaged for rates
    (``agg="mean"``) — halving the resolution but preserving full-run
    coverage and, for sums, the series total.
    """

    kind = "sampler"
    __slots__ = ("name", "window", "agg", "_positions", "_values", "recorded")

    def __init__(self, name: str, window: int = 512, agg: str = "mean") -> None:
        if window < 8:
            raise ValueError("sampler window must be at least 8")
        if agg not in ("mean", "sum"):
            raise ValueError(f"unknown sampler aggregation {agg!r}")
        self.name = name
        self.window = window
        self.agg = agg
        self._positions: List[float] = []
        self._values: List[float] = []
        self.recorded = 0

    def record(self, position: float, value: float) -> None:
        self._positions.append(position)
        self._values.append(value)
        self.recorded += 1
        if len(self._values) > self.window:
            self._compact()

    def _compact(self) -> None:
        """Merge adjacent pairs; an odd trailing point is kept as-is."""
        positions: List[float] = []
        values: List[float] = []
        n = len(self._values)
        for i in range(0, n - 1, 2):
            positions.append(self._positions[i])
            merged = self._values[i] + self._values[i + 1]
            values.append(merged / 2.0 if self.agg == "mean" else merged)
        if n % 2:
            positions.append(self._positions[-1])
            values.append(self._values[-1])
        self._positions = positions
        self._values = values

    @property
    def positions(self) -> List[float]:
        return list(self._positions)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "agg": self.agg,
            "recorded": self.recorded,
            "positions": list(self._positions),
            "values": list(self._values),
        }


class MetricsRegistry:
    """Get-or-create instrument store, serializable to plain JSON."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds)
        )

    def sampler(self, name: str, window: int = 512, agg: str = "mean") -> Sampler:
        return self._get_or_create(
            name, Sampler, lambda: Sampler(name, window=window, agg=agg)
        )

    def get(self, name: str):
        """The named instrument, or None."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def items(self):
        return sorted(self._instruments.items())

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {name: inst.as_dict() for name, inst in self.items()}


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullSampler(Sampler):
    __slots__ = ()

    def record(self, position: float, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (0,))
_NULL_SAMPLER = _NullSampler("null")


class NullRegistry(MetricsRegistry):
    """Shared no-op registry handed out by disabled sessions."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        return _NULL_HISTOGRAM

    def sampler(self, name: str, window: int = 512, agg: str = "mean") -> Sampler:
        return _NULL_SAMPLER


#: Process-wide no-op registry (stateless; safe to share).
NULL_REGISTRY = NullRegistry()
