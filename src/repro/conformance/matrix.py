"""The conformance engine matrix and differential run context.

One :class:`MatrixRun` bundles everything the invariant oracle looks
at for a single event log: the symbolic replay results of the full
engine matrix, the functional-crypto outcomes, and the two execution
cross-checks (serial vs. parallel replay, text-IO round-trip replay).
:func:`run_matrix` is the only way these are produced, so every caller
— corpus verification, the fuzzer, tests — checks the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.conformance.functional import (
    DEFAULT_FOLD_SECTORS,
    FUNCTIONAL_MODES,
    FunctionalOutcome,
    RecoveryOutcome,
    execute_modes,
    execute_recovery_probe,
)
from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.simulator import (
    MemoryEventLog,
    SimulationResult,
    replay_events,
    replay_matrix,
)
from repro.workloads.traceio import dumps_event_log, loads_event_log

#: The engine design points every conformance run compares: the
#: insecure floor, both prior-work baselines, full Plutus, and its
#: three single-idea ablations (value verification only, compact
#: mirrored counters only, fine-grained metadata only).
CONFORMANCE_ENGINES: Tuple[str, ...] = (
    "nosec",
    "pssm",
    "common-counters",
    "plutus",
    "plutus:value-only",
    "compact:adaptive",
    "gran:32B-all",
    # The crash-recoverable variant: PSSM-shaped traffic plus the
    # persisted metadata-log stream (never claim-bounded by PSSM).
    "recoverable",
)

#: Engine replayed a second time for the serial-vs-parallel and
#: round-trip identity checks (the richest design: every mechanism on).
CROSS_CHECK_ENGINE = "plutus"

#: Cap on events the functional-crypto stage executes per mode; pure
#: Python AES costs milliseconds per sector, so large logs run a
#: representative prefix (recorded in the outcome).
DEFAULT_FUNCTIONAL_EVENTS = 240


@dataclass
class MatrixRun:
    """Everything the invariant oracle inspects for one event log.

    ``claims_apply`` marks workload-shaped logs: the paper's *ordering*
    claims (Plutus metadata <= PSSM) hold for benchmark-like access
    patterns but are deliberately breakable by adversarial streams that
    saturate the compact-counter mirror layer — the fuzzer generates
    exactly those, so claim-level invariants are scoped to logs that
    assert them (see :mod:`repro.conformance.invariants`).
    """

    log: MemoryEventLog
    config: GpuConfig
    results: Dict[str, SimulationResult]
    functional: Dict[str, FunctionalOutcome] = field(default_factory=dict)
    #: (engine key, workers>=2 result) when the parallel path ran.
    parallel: Optional[Tuple[str, SimulationResult]] = None
    #: (engine key, reloaded-log replay result) when the round-trip ran.
    roundtrip: Optional[Tuple[str, SimulationResult]] = None
    #: Per-engine results of a forced scalar object-path replay, filled
    #: when the columnar identity cross-check ran. ``results`` holds the
    #: default (columnar where eligible) path, so the oracle can demand
    #: byte-identity between the two replay implementations.
    object_path: Dict[str, SimulationResult] = field(default_factory=dict)
    #: Crash-recovery probe outcome; ``None`` when the stage was
    #: disabled or the log has no writebacks (nothing to tear).
    recovery: Optional[RecoveryOutcome] = None
    claims_apply: bool = False


def conformance_factories(
    engines: Sequence[str] = CONFORMANCE_ENGINES,
) -> Dict[str, object]:
    """Resolve the matrix's engine keys to picklable factories."""
    from repro.harness.runner import engine_factories

    named = engine_factories()
    unknown = [key for key in engines if key not in named]
    if unknown:
        raise KeyError(
            f"unknown conformance engines {unknown}; known: {sorted(named)}"
        )
    return {key: named[key] for key in engines}


def run_matrix(
    log: MemoryEventLog,
    config: GpuConfig = VOLTA,
    engines: Sequence[str] = CONFORMANCE_ENGINES,
    claims_apply: bool = False,
    check_parallel: bool = True,
    check_roundtrip: bool = True,
    check_columnar: bool = True,
    check_recovery: bool = True,
    functional_modes: Sequence[str] = FUNCTIONAL_MODES,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    fold_sectors: int = DEFAULT_FOLD_SECTORS,
) -> MatrixRun:
    """Replay *log* through the full differential matrix.

    The parallel cross-check only runs when the log spans at least two
    partitions (the parallel path falls back to serial otherwise, which
    would compare a result with itself); the functional stage can be
    disabled entirely with ``functional_modes=()``.
    """
    factories = conformance_factories(engines)
    results = replay_matrix(log, factories, config, workers=1)

    run = MatrixRun(
        log=log, config=config, results=results, claims_apply=claims_apply
    )

    if check_columnar:
        # Replay the whole roster a second time with the vectorized
        # path disabled; the columnar-object-identity invariant compares
        # the two result sets engine by engine.
        run.object_path = {
            key: replay_events(
                log, factory, config, workers=1, path="object"
            )
            for key, factory in factories.items()
        }

    cross_key = CROSS_CHECK_ENGINE if CROSS_CHECK_ENGINE in factories else (
        next(iter(factories))
    )
    partitions = {event.partition for event in log.events}
    if check_parallel and len(partitions) >= 2:
        run.parallel = (
            cross_key,
            replay_events(log, factories[cross_key], config, workers=2),
        )
    if check_roundtrip:
        reloaded = loads_event_log(dumps_event_log(log))
        run.roundtrip = (
            cross_key,
            replay_events(reloaded, factories[cross_key], config, workers=1),
        )
    if functional_modes:
        run.functional = execute_modes(
            log,
            modes=tuple(functional_modes),
            fold_sectors=fold_sectors,
            max_events=functional_events,
        )
    if check_recovery:
        run.recovery = execute_recovery_probe(
            log, max_events=functional_events
        )
    return run
