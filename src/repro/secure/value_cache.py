"""The Plutus value cache (paper Section IV-C).

A small, fully-associative, per-partition store of recently seen 32-bit
values. Incoming plaintext is carved into 32-bit values whose upper 28
bits (the 4 LSBs are masked to catch near values) probe the cache; a
16-byte AES-XTS cipher-block unit counts as verified when at least
``hits_required`` of its four values hit, and a 32-byte sector is
verified when both of its units are. Verified sectors skip the MAC fetch
altogether.

Entries split into a *transient* region (LRU-replaced) and a *pinned*
region (25% of capacity, never replaced once pinned). A 4-bit frequency
counter per entry promotes hot transient values into the pinned region;
pinned hits are what make a *write* provably verifiable at its next read
(pinned values are guaranteed to still be resident).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.common.bitops import mask_low_bits
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ValueCacheConfig:
    """Tunables of the value cache (paper defaults in Table II)."""

    entries: int = 256
    value_bits: int = 32
    mask_bits: int = 4
    freq_bits: int = 4
    pinned_fraction: float = 0.25
    #: Minimum value-cache hits per 128-bit unit for verification (the
    #: solution of Eq. 1 with K=256, M=28: x = 3 of n = 4).
    hits_required: int = 3
    values_per_unit: int = 4
    #: Frequency count at which a transient entry is pinned.
    pin_threshold: int = 15

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("value cache needs entries")
        if not 0 <= self.pinned_fraction < 1:
            raise ConfigurationError("pinned fraction must be in [0, 1)")
        if not 0 < self.hits_required <= self.values_per_unit:
            raise ConfigurationError("hits_required outside unit size")
        if self.pin_threshold >= (1 << self.freq_bits) + 1:
            raise ConfigurationError("pin threshold exceeds frequency counter")

    @property
    def pinned_capacity(self) -> int:
        return int(self.entries * self.pinned_fraction)

    @property
    def transient_capacity(self) -> int:
        return self.entries - self.pinned_capacity

    @property
    def effective_value_bits(self) -> int:
        """Bits that participate in matching (28 for the paper's config)."""
        return self.value_bits - self.mask_bits

    @property
    def storage_bytes(self) -> int:
        """On-chip cost: value bits + frequency counter per entry."""
        bits = self.entries * (self.value_bits + self.freq_bits)
        return (bits + 7) // 8


@dataclass
class ValueCacheStats:
    """Probe/verification statistics for one value cache."""

    probes: int = 0
    hits: int = 0
    pinned_hits: int = 0
    sectors_checked: int = 0
    sectors_verified: int = 0
    sectors_failed: int = 0
    promotions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.probes if self.probes else 0.0

    @property
    def sector_verify_rate(self) -> float:
        return (
            self.sectors_verified / self.sectors_checked
            if self.sectors_checked
            else 0.0
        )


@dataclass(frozen=True)
class UnitCheck:
    """Verification outcome of one 128-bit cipher-block unit."""

    hits: int
    pinned_hits: int
    passed: bool
    all_hits_pinned: bool


class ValueCache:
    """Fully-associative value store with pinned and transient regions."""

    def __init__(self, config: ValueCacheConfig = ValueCacheConfig()) -> None:
        self.config = config
        self.stats = ValueCacheStats()
        #: Transient region: masked value -> frequency, in LRU order.
        self._transient: "OrderedDict[int, int]" = OrderedDict()
        #: Pinned region: masked value -> frequency (never evicted).
        self._pinned: Dict[int, int] = {}

    def _key(self, value: int) -> int:
        return mask_low_bits(value & ((1 << self.config.value_bits) - 1),
                             self.config.mask_bits)

    def __len__(self) -> int:
        return len(self._transient) + len(self._pinned)

    def probe(self, value: int) -> Tuple[bool, bool]:
        """Look up one value; returns (hit, hit_was_pinned).

        A hit refreshes LRU position and bumps the frequency counter
        (saturating), possibly promoting the entry into the pinned
        region when there is pinned capacity left.
        """
        key = self._key(value)
        self.stats.probes += 1
        if key in self._pinned:
            self.stats.hits += 1
            self.stats.pinned_hits += 1
            return True, True
        if key in self._transient:
            self.stats.hits += 1
            freq = min(self._transient[key] + 1, (1 << self.config.freq_bits) - 1)
            self._transient[key] = freq
            self._transient.move_to_end(key)
            if (
                freq >= self.config.pin_threshold
                and len(self._pinned) < self.config.pinned_capacity
            ):
                self._pinned[key] = self._transient.pop(key)
                self.stats.promotions += 1
            return True, False
        return False, False

    def observe(self, value: int) -> None:
        """Record a value seen on a read or write (insert if absent)."""
        key = self._key(value)
        if key in self._pinned:
            return
        if key in self._transient:
            self._transient.move_to_end(key)
            return
        if len(self._transient) >= self.config.transient_capacity:
            self._transient.popitem(last=False)
        self._transient[key] = 1

    def observe_many(self, values: Iterable[int]) -> None:
        """Record every value of a sector (insertion order preserved)."""
        for v in values:
            self.observe(v)

    def check_unit(self, values: Sequence[int]) -> UnitCheck:
        """Probe one 128-bit unit's four values against the cache."""
        if len(values) != self.config.values_per_unit:
            raise ValueError(
                f"unit must contain {self.config.values_per_unit} values"
            )
        hits = 0
        pinned = 0
        for v in values:
            hit, was_pinned = self.probe(v)
            if hit:
                hits += 1
                if was_pinned:
                    pinned += 1
        passed = hits >= self.config.hits_required
        return UnitCheck(
            hits=hits,
            pinned_hits=pinned,
            passed=passed,
            all_hits_pinned=passed and pinned >= self.config.hits_required,
        )

    def verify_sector(self, values: Sequence[int]) -> bool:
        """Value-verify a 32-byte sector (two 128-bit units).

        Every unit must pass independently — a tampered ciphertext block
        randomizes exactly one 16-byte unit, so a single passing unit
        says nothing about its neighbour (paper: "both halves need to
        satisfy this").
        """
        per_unit = self.config.values_per_unit
        if len(values) % per_unit != 0:
            raise ValueError("sector values must fill whole units")
        self.stats.sectors_checked += 1
        for i in range(0, len(values), per_unit):
            if not self.check_unit(values[i : i + per_unit]).passed:
                self.stats.sectors_failed += 1
                return False
        self.stats.sectors_verified += 1
        return True

    def write_verifiable(self, values: Sequence[int]) -> bool:
        """Will this written sector pass value verification at next read?

        Guaranteed only when every unit passes using *pinned* hits —
        pinned entries cannot be evicted, so they will still be resident
        when the sector returns from memory (paper Fig. 11, right).
        Probes here do not touch stats or LRU state: this is the write
        path's side-band check.
        """
        per_unit = self.config.values_per_unit
        if len(values) % per_unit != 0:
            raise ValueError("sector values must fill whole units")
        for i in range(0, len(values), per_unit):
            pinned_hits = sum(
                1
                for v in values[i : i + per_unit]
                if self._key(v) in self._pinned
            )
            if pinned_hits < self.config.hits_required:
                return False
        return True

    def pinned_values(self) -> List[int]:
        """Masked values currently pinned (diagnostics/tests)."""
        return list(self._pinned)

    # -- batch replay support (pre-masked keys) -------------------------------
    #
    # The batch replay path derives the masked probe keys for a whole
    # run with one numpy pass (see :meth:`mask_keys`) and then drives
    # the cache through these key-based twins of verify_sector /
    # observe_many / write_verifiable. Each twin replays the scalar
    # method's per-key dict operations in the same order, so state,
    # LRU order, and statistics stay byte-identical; only the per-value
    # ``_key()`` calls and the UnitCheck allocations are gone.

    def mask_keys(self, values: Sequence[int]) -> List[int]:
        """Masked probe keys for raw 32-bit values (order preserved)."""
        return [self._key(v) for v in values]

    def verify_keys(self, keys: Sequence[int]) -> bool:
        """:meth:`verify_sector` over pre-masked keys."""
        cfg = self.config
        per_unit = cfg.values_per_unit
        nkeys = len(keys)
        if nkeys % per_unit != 0:
            raise ValueError("sector values must fill whole units")
        stats = self.stats
        pinned = self._pinned
        transient = self._transient
        freq_cap = (1 << cfg.freq_bits) - 1
        pin_at = cfg.pin_threshold
        pin_cap = cfg.pinned_capacity
        need = cfg.hits_required
        probes = hits_total = pinned_total = promotions = 0
        passed = True
        stats.sectors_checked += 1
        for start in range(0, nkeys, per_unit):
            hits = 0
            for key in keys[start:start + per_unit]:
                probes += 1
                if key in pinned:
                    hits += 1
                    pinned_total += 1
                elif key in transient:
                    hits += 1
                    freq = min(transient[key] + 1, freq_cap)
                    transient[key] = freq
                    transient.move_to_end(key)
                    if freq >= pin_at and len(pinned) < pin_cap:
                        pinned[key] = transient.pop(key)
                        promotions += 1
            hits_total += hits
            if hits < need:
                passed = False
                break  # scalar verify_sector short-circuits here too
        stats.probes += probes
        stats.hits += hits_total
        stats.pinned_hits += pinned_total
        stats.promotions += promotions
        if passed:
            stats.sectors_verified += 1
        else:
            stats.sectors_failed += 1
        return passed

    def observe_keys(self, keys: Sequence[int]) -> None:
        """:meth:`observe_many` over pre-masked keys."""
        pinned = self._pinned
        transient = self._transient
        cap = self.config.transient_capacity
        for key in keys:
            if key in pinned:
                continue
            if key in transient:
                transient.move_to_end(key)
                continue
            if len(transient) >= cap:
                transient.popitem(last=False)
            transient[key] = 1

    def write_verifiable_keys(self, keys: Sequence[int]) -> bool:
        """:meth:`write_verifiable` over pre-masked keys (state-free)."""
        cfg = self.config
        per_unit = cfg.values_per_unit
        if len(keys) % per_unit != 0:
            raise ValueError("sector values must fill whole units")
        pinned = self._pinned
        need = cfg.hits_required
        for start in range(0, len(keys), per_unit):
            hits = 0
            for key in keys[start:start + per_unit]:
                if key in pinned:
                    hits += 1
            if hits < need:
                return False
        return True

    def state_summary(self):
        """Canonical full-state value for differential comparison.

        Transient entries keep their LRU (insertion) order — it decides
        future evictions — while the pinned dict is sorted: pinned
        entries are never evicted or ordered, so key insertion order
        carries no semantics there.
        """
        st = self.stats
        return (
            list(self._transient.items()),
            sorted(self._pinned.items()),
            (st.probes, st.hits, st.pinned_hits, st.sectors_checked,
             st.sectors_verified, st.sectors_failed, st.promotions),
        )
