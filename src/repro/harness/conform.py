"""Glue for the ``conform`` subcommand.

Thin composition over :mod:`repro.conformance`: run the golden corpus
and/or a seeded fuzz campaign, bundle the outcomes, and expose one
``ok`` flag the CLI turns into an exit status.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.conformance.corpus import CorpusOutcome, run_corpus
from repro.conformance.fuzzer import (
    FuzzReport,
    fuzz,
    fuzz_campaign,
    fuzz_report_from_outcome,
)
from repro.conformance.matrix import DEFAULT_FUNCTIONAL_EVENTS


@dataclass
class ConformOutcome:
    """What one ``conform`` invocation checked and found."""

    corpus: Optional[CorpusOutcome] = None
    fuzz: Optional[FuzzReport] = None
    #: Supervised fuzz outcome (``None`` unless a supervisor ran it).
    #: Partial means some iteration ranges never reported; ``ok`` then
    #: speaks only for the iterations that did run.
    supervision: Optional[object] = None

    @property
    def ok(self) -> bool:
        if self.corpus is not None and not self.corpus.ok:
            return False
        if self.fuzz is not None and not self.fuzz.ok:
            return False
        return True

    @property
    def partial(self) -> bool:
        return self.supervision is not None and self.supervision.partial


def run_conform(
    corpus: bool = True,
    fuzz_iterations: int = 0,
    seed: int = 2023,
    update: bool = False,
    corpus_dir: Optional[Path] = None,
    functional_events: Optional[int] = DEFAULT_FUNCTIONAL_EVENTS,
    supervisor_factory: Optional[Callable] = None,
    fuzz_chunk: int = 8,
) -> ConformOutcome:
    """Run the requested conformance stages and bundle their outcomes.

    ``supervisor_factory`` (campaign -> Supervisor) opts the fuzz stage
    into supervised execution: iterations run as chunked work units
    with retry, journaling, and budget degradation; the factory shape
    lets the caller open a run journal against the concrete campaign.
    """
    outcome = ConformOutcome()
    if corpus or update:
        outcome.corpus = run_corpus(
            corpus_dir=corpus_dir,
            update=update,
            functional_events=functional_events,
        )
    if fuzz_iterations > 0:
        if supervisor_factory is None:
            outcome.fuzz = fuzz(
                fuzz_iterations, seed, functional_events=functional_events
            )
        else:
            campaign = fuzz_campaign(
                fuzz_iterations, seed,
                chunk_size=fuzz_chunk,
                functional_events=functional_events,
            )
            supervised = supervisor_factory(campaign).run(campaign)
            outcome.supervision = supervised
            outcome.fuzz = fuzz_report_from_outcome(
                supervised, fuzz_iterations, seed
            )
    return outcome
