"""Tests for compact mirrored counters (2-bit / 3-bit / adaptive)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.metadata.compact import (
    DESIGN_2BIT,
    DESIGN_3BIT,
    DESIGN_3BIT_ADAPTIVE,
    CompactCounterConfig,
    CompactCounterState,
    CounterRoute,
)


class TestDesignConstants:
    def test_2bit_design(self):
        assert DESIGN_2BIT.width_bits == 2
        assert DESIGN_2BIT.saturation_value == 3
        assert DESIGN_2BIT.counters_per_block == 128

    def test_3bit_design(self):
        assert DESIGN_3BIT.saturation_value == 7
        assert DESIGN_3BIT.counters_per_block == 64
        assert not DESIGN_3BIT.adaptive

    def test_adaptive_design(self):
        assert DESIGN_3BIT_ADAPTIVE.adaptive
        assert DESIGN_3BIT_ADAPTIVE.disable_threshold == 8

    def test_compaction_factors(self):
        """Paper: 2-bit gives 4x, 3-bit adaptive gives 2x vs originals
        covering 32 sectors per block."""
        assert DESIGN_2BIT.compaction_vs(32) == 4.0
        assert DESIGN_3BIT_ADAPTIVE.compaction_vs(32) == 2.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            CompactCounterConfig(width_bits=1, counters_per_block=64)
        with pytest.raises(ConfigurationError):
            CompactCounterConfig(width_bits=3, counters_per_block=0)
        with pytest.raises(ConfigurationError):
            CompactCounterConfig(
                width_bits=3, counters_per_block=64, adaptive=True,
                disable_threshold=65,
            )


class TestReadRouting:
    def test_fresh_sector_uses_compact_only(self):
        state = CompactCounterState(DESIGN_3BIT)
        assert state.plan_read(0).route is CounterRoute.COMPACT_ONLY

    def test_below_saturation_uses_compact_only(self):
        state = CompactCounterState(DESIGN_3BIT)
        for _ in range(6):
            state.plan_write(0)
        assert state.plan_read(0).route is CounterRoute.COMPACT_ONLY

    def test_saturated_needs_both_layers(self):
        """Paper Fig. 13, access (b): value 7 means consult originals."""
        state = CompactCounterState(DESIGN_3BIT)
        for _ in range(7):
            state.plan_write(0)
        assert state.plan_read(0).route is CounterRoute.COMPACT_THEN_ORIGINAL

    def test_disabled_block_goes_straight_to_original(self):
        """Paper Fig. 13, access (c): enable bit 1 -> direct original."""
        state = CompactCounterState(DESIGN_3BIT_ADAPTIVE)
        for sector in range(8):
            for _ in range(7):
                state.plan_write(sector)
        assert state.is_block_disabled(0)
        # Even a never-written sector of the disabled block routes there.
        assert state.plan_read(60).route is CounterRoute.ORIGINAL_ONLY


class TestWriteRouting:
    def test_writes_below_saturation_stay_compact(self):
        state = CompactCounterState(DESIGN_3BIT)
        for _ in range(6):
            plan = state.plan_write(0)
            assert plan.route is CounterRoute.COMPACT_ONLY
            assert not plan.propagates_to_original

    def test_saturating_write_propagates(self):
        state = CompactCounterState(DESIGN_3BIT)
        for _ in range(6):
            state.plan_write(0)
        plan = state.plan_write(0)  # 7th write saturates
        assert plan.propagates_to_original
        assert plan.route is CounterRoute.COMPACT_THEN_ORIGINAL
        assert state.propagation_events == 1

    def test_post_saturation_writes_go_to_original_too(self):
        state = CompactCounterState(DESIGN_3BIT)
        for _ in range(8):
            state.plan_write(0)
        plan = state.plan_write(0)
        assert plan.route is CounterRoute.COMPACT_THEN_ORIGINAL
        assert not plan.propagates_to_original

    def test_2bit_saturates_on_third_write(self):
        """Paper: 'overflows on the third write'."""
        state = CompactCounterState(DESIGN_2BIT)
        state.plan_write(0)
        state.plan_write(0)
        plan = state.plan_write(0)
        assert plan.propagates_to_original


class TestAdaptiveDisable:
    def saturate(self, state, sector):
        for _ in range(state.config.saturation_value):
            plan = state.plan_write(sector)
        return plan

    def test_threshold_triggers_disable(self):
        state = CompactCounterState(DESIGN_3BIT_ADAPTIVE)
        for sector in range(7):
            plan = self.saturate(state, sector)
            assert not plan.disables_block
        plan = self.saturate(state, 7)  # 8th saturated counter
        assert plan.disables_block
        assert state.disable_events == 1

    def test_non_adaptive_never_disables(self):
        state = CompactCounterState(DESIGN_3BIT)
        for sector in range(20):
            self.saturate(state, sector)
        assert state.disable_events == 0
        assert not state.is_block_disabled(0)

    def test_disabled_block_write_routes_original_only(self):
        state = CompactCounterState(DESIGN_3BIT_ADAPTIVE)
        for sector in range(8):
            self.saturate(state, sector)
        assert state.plan_write(30).route is CounterRoute.ORIGINAL_ONLY

    def test_disable_is_per_block(self):
        state = CompactCounterState(DESIGN_3BIT_ADAPTIVE)
        for sector in range(8):
            self.saturate(state, sector)
        other_block_sector = DESIGN_3BIT_ADAPTIVE.counters_per_block + 1
        assert state.plan_read(other_block_sector).route is CounterRoute.COMPACT_ONLY

    def test_sync_cost_is_two_sectors(self):
        assert CompactCounterState(DESIGN_3BIT_ADAPTIVE).sync_sectors_for_disable() == 2


class TestMirrorConsistency:
    def test_encryption_counter_equals_write_count(self):
        """The logical counter must be layer-independent."""
        state = CompactCounterState(DESIGN_3BIT)
        for i in range(1, 12):
            state.plan_write(9)
            assert state.encryption_counter(9) == i

    def test_force_original_redirects(self):
        state = CompactCounterState(DESIGN_3BIT)
        state.force_original([4, 5])
        assert state.plan_read(4).route is CounterRoute.COMPACT_THEN_ORIGINAL
        assert state.plan_read(6).route is CounterRoute.COMPACT_ONLY
