"""Tests for the harness CLI (python -m repro.harness)."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_runs_selected_experiment(self, capsys):
        rc = main(["eq1", "--length", "500", "--benchmarks", "bfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eq1" in out
        assert "hits_required" in out

    def test_runs_multiple_experiments(self, capsys):
        rc = main(["fig10", "eq1", "--length", "500", "--benchmarks", "bfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "eq1" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["eq1", "--benchmarks", "doom"])

    def test_benchmark_restriction_applies(self, capsys):
        rc = main(["fig10", "--length", "400", "--benchmarks", "lbm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lbm" in out
        assert "bfs" not in out

    def test_unknown_benchmark_message_names_known(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["eq1", "--benchmarks", "doom"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'doom'" in err
        assert "bfs" in err  # message lists the known roster
        assert "Traceback" not in err

    def test_unknown_engine_exits_cleanly(self, capsys):
        """Engine errors inside experiments surface as messages, not
        tracebacks."""
        from repro.harness.experiments import EXPERIMENTS
        from repro.harness.runner import ExperimentContext

        def bad_experiment(ctx: ExperimentContext):
            return ctx.run("bfs", "not-an-engine")

        EXPERIMENTS["badkey-test"] = bad_experiment
        try:
            rc = main(["badkey-test", "--length", "300"])
        finally:
            del EXPERIMENTS["badkey-test"]
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "not-an-engine" in err
        assert "Traceback" not in err

    def test_workers_flag_accepts_auto_and_ints(self, capsys):
        rc = main(["eq1", "--length", "300", "--benchmarks", "bfs",
                   "--workers", "auto"])
        assert rc == 0
        rc = main(["eq1", "--length", "300", "--benchmarks", "bfs",
                   "--workers", "1"])
        assert rc == 0

    def test_workers_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["eq1", "--workers", "zero"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit):
            main(["eq1", "--workers", "0"])

    def test_shard_timeout_flag_accepts_seconds(self, capsys):
        rc = main(["eq1", "--length", "300", "--benchmarks", "bfs",
                   "--shard-timeout", "30"])
        assert rc == 0

    def test_shard_timeout_flag_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["eq1", "--shard-timeout", "soon"])
        with pytest.raises(SystemExit):
            main(["eq1", "--shard-timeout", "0"])
        with pytest.raises(SystemExit):
            main(["eq1", "--shard-timeout", "-3"])


class TestProfileCli:
    def test_unknown_benchmark_rejected(self, capsys):
        from repro.harness.__main__ import profile_main

        with pytest.raises(SystemExit) as excinfo:
            profile_main(["doom"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'doom'" in err

    def test_unknown_engine_rejected(self, capsys):
        from repro.harness.__main__ import profile_main

        with pytest.raises(SystemExit) as excinfo:
            profile_main(["bfs", "--engine", "fort-knox"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown engine 'fort-knox'" in err
        assert "plutus" in err


class TestInjectCli:
    def test_quick_campaign_passes(self, capsys):
        rc = main(["inject", "bfs", "--campaign", "quick",
                   "--length", "600", "--cache-dir", ""])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault class" in out
        assert "verdict: PASS" in out
        for engine in ("plutus", "pssm", "functional"):
            assert engine in out

    def test_engine_roster_restriction(self, capsys):
        rc = main(["inject", "bfs", "--campaign", "quick",
                   "--engines", "pssm", "functional",
                   "--length", "600", "--cache-dir", ""])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pssm" in out and "functional" in out
        assert "2 engine(s)" in out

    def test_unknown_campaign_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "bfs", "--campaign", "blitz"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown campaign 'blitz'" in err
        assert "quick" in err

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "doom"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'doom'" in err

    def test_unknown_engine_variant_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "bfs", "--engines", "fort-knox"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown engine variant 'fort-knox'" in err

    def test_missed_fault_exits_nonzero(self, capsys, monkeypatch):
        """A campaign with any MISSED outcome must fail the process."""
        from repro.faults import campaign as campaign_mod
        from repro.faults.campaign import Outcome, TrialRecord
        from repro.faults.plan import FaultKind, InjectionPlan

        real_run = campaign_mod.run_campaign

        def sabotaged(spec, ops=None):
            report = real_run(spec, ops)
            report.records.append(
                TrialRecord(
                    engine="plutus",
                    plan=InjectionPlan(
                        kind=FaultKind.BITFLIP, address=0, trigger_index=1
                    ),
                    outcome=Outcome.MISSED,
                    exception=None,
                    detail="synthetic miss for the exit-code test",
                )
            )
            return report

        monkeypatch.setattr(
            "repro.harness.inject.run_campaign", sabotaged
        )
        rc = main(["inject", "bfs", "--campaign", "quick",
                   "--length", "600", "--cache-dir", ""])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verdict: FAIL" in out
        assert "MISS:" in out
