"""Tests for trace characterization (Fig. 10 inputs)."""

import pytest

from repro.workloads.stats import characterize, rw_breakdown
from repro.workloads.trace import Trace, TraceAccess


def make_trace():
    return Trace(
        name="t",
        accesses=[
            TraceAccess(0x0, 0b1111, False),
            TraceAccess(0x80, 0b0011, True),
            TraceAccess(0x100, 0b0001, False),
        ],
        memory_intensity=0.6,
    )


class TestCharacterize:
    def test_counts(self):
        stats = characterize(make_trace())
        assert stats.accesses == 3
        assert stats.read_accesses == 2
        assert stats.write_accesses == 1
        assert stats.read_sectors == 5
        assert stats.write_sectors == 2

    def test_fractions(self):
        stats = characterize(make_trace())
        assert stats.read_fraction == pytest.approx(2 / 3)
        assert stats.write_fraction == pytest.approx(1 / 3)
        assert stats.read_sector_fraction == pytest.approx(5 / 7)

    def test_footprint(self):
        stats = characterize(make_trace())
        assert stats.touched_lines == 3
        assert stats.footprint_bytes == 3 * 128

    def test_avg_sectors(self):
        assert characterize(make_trace()).avg_sectors_per_access == pytest.approx(7 / 3)

    def test_intensity_copied(self):
        assert characterize(make_trace()).memory_intensity == 0.6


class TestRwBreakdown:
    def test_breakdown_shape(self):
        out = rw_breakdown({"t": make_trace()})
        assert out["t"]["read"] + out["t"]["write"] == pytest.approx(1.0)

    def test_multiple_traces(self):
        out = rw_breakdown({"a": make_trace(), "b": make_trace()})
        assert set(out) == {"a", "b"}
