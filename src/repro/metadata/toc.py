"""Tree of Counters (SGX-style parallelizable integrity tree).

The second integrity-tree family of the paper's background (Fig. 3):
instead of hashes, internal nodes hold *version counters*, and each node
stores a MAC computed over its child versions keyed by its parent's
version. Updates increment one version per level — no cumulative hashing
— so all levels can be updated in parallel; the library implements it
functionally for the background comparison tests and the tree-family
ablation.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ReplayError
from repro.crypto.mac import HmacSha256Mac


class TreeOfCounters:
    """Functional parallelizable integrity tree over leaf version counters.

    Leaf i's version increments on every write to the protected block i.
    Node MACs bind the children's versions to the parent's version; the
    root version is the only trusted state.
    """

    def __init__(self, num_leaves: int, arity: int = 8, key: bytes = b"toc-key") -> None:
        if num_leaves <= 0:
            raise ValueError("tree needs at least one leaf")
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.arity = arity
        self._mac = HmacSha256Mac(key, tag_bytes=8)
        #: versions[0] = leaf versions; versions[-1] = [root version]
        self.versions: List[List[int]] = [[0] * num_leaves]
        while len(self.versions[-1]) > 1:
            below = len(self.versions[-1])
            self.versions.append([0] * ((below + arity - 1) // arity))
        #: macs[level][group] authenticates the children of that group.
        self.macs: List[List[bytes]] = []
        for level in range(1, len(self.versions)):
            self.macs.append([b""] * len(self.versions[level]))
        for level in range(1, len(self.versions)):
            for group in range(len(self.versions[level])):
                self.macs[level - 1][group] = self._group_mac(level, group)

    @property
    def root_version(self) -> int:
        return self.versions[-1][0]

    @property
    def height(self) -> int:
        return len(self.versions)

    def _group_payload(self, level: int, group: int) -> bytes:
        """Children versions of node (level, group), serialized."""
        start = group * self.arity
        children = self.versions[level - 1][start : start + self.arity]
        return b"".join(v.to_bytes(8, "little") for v in children)

    def _group_mac(self, level: int, group: int) -> bytes:
        parent_version = self.versions[level][group]
        return self._mac.compute(
            self._group_payload(level, group), counter=parent_version
        )

    def update_leaf(self, index: int) -> None:
        """Record a write: bump one version per level, refresh the MACs.

        Unlike a Merkle tree there is no bottom-up data dependency — each
        level's new MAC depends only on its children's versions and its
        own new version, all known immediately (the parallelizable
        property the paper's Fig. 3 highlights).
        """
        if not 0 <= index < len(self.versions[0]):
            raise ValueError(f"leaf {index} out of range")
        child = index
        self.versions[0][child] += 1
        for level in range(1, len(self.versions)):
            parent = child // self.arity
            self.versions[level][parent] += 1
            child = parent
        # Refresh MACs along the path (payload or key version changed).
        child = index
        for level in range(1, len(self.versions)):
            parent = child // self.arity
            self.macs[level - 1][parent] = self._group_mac(level, parent)
            child = parent

    def verify_leaf(self, index: int, claimed_version: int) -> None:
        """Check a leaf version against the chain up to the root.

        Raises :class:`ReplayError` if the claimed version is stale or
        any stored MAC fails under its parent's version.
        """
        if not 0 <= index < len(self.versions[0]):
            raise ValueError(f"leaf {index} out of range")
        if claimed_version != self.versions[0][index]:
            raise ReplayError(
                f"stale version for leaf {index}: "
                f"claimed {claimed_version}, current {self.versions[0][index]}"
            )
        child = index
        for level in range(1, len(self.versions)):
            parent = child // self.arity
            expected = self._group_mac(level, parent)
            if self.macs[level - 1][parent] != expected:
                raise ReplayError(
                    f"ToC MAC mismatch at level {level}, group {parent}"
                )
            child = parent

    def corrupt_version(self, level: int, index: int, version: int) -> None:
        """Attacker primitive: overwrite a stored version counter."""
        self.versions[level][index] = version
