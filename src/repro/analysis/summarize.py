"""Aggregation helpers for experiment results."""

from __future__ import annotations

from math import exp, log
from typing import Dict, Iterable, List, Mapping, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean, the conventional aggregate for normalized performance."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return exp(sum(log(v) for v in values) / len(values))


def percent(value: float, digits: int = 2) -> str:
    """Format a ratio delta as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def improvement_summary(
    per_benchmark: Mapping[str, float]
) -> Dict[str, float]:
    """Min/mean/max summary of per-benchmark speedups (ratios)."""
    values = list(per_benchmark.values())
    return {
        "mean": arithmetic_mean(values),
        "geomean": geometric_mean(values),
        "min": min(values),
        "max": max(values),
    }


def normalize_by(
    rows: Mapping[str, float], baseline: Mapping[str, float]
) -> Dict[str, float]:
    """Element-wise ratio of two keyed series (shared keys only)."""
    out: Dict[str, float] = {}
    for key, value in rows.items():
        base = baseline.get(key)
        if base:
            out[key] = value / base
    return out


def stack_fractions(breakdown: Mapping[str, int]) -> Dict[str, float]:
    """Convert a byte breakdown into fractions that sum to one."""
    total = sum(breakdown.values())
    if total == 0:
        return {k: 0.0 for k in breakdown}
    return {k: v / total for k, v in breakdown.items()}


def transpose(
    rows: Iterable[Mapping[str, float]], key_field: str
) -> Dict[str, List[float]]:
    """Column-wise view of a list of records (for series plotting)."""
    out: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            if key == key_field:
                continue
            out.setdefault(key, []).append(float(value))
    return out
