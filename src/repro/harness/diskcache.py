"""Content-hashed on-disk cache for traces and DRAM event logs.

The two expensive artifacts every sweep shares — generated benchmark
traces and the event logs one L2 pass distills from them — are pure
functions of their inputs, so they cache across *processes*, not just
within one :class:`~repro.harness.runner.ExperimentContext`. Artifacts
live under a cache root (default ``.cache/``) keyed by SHA-256 over
their defining inputs:

* traces: generator identity — ``(benchmark, length, seed)`` plus the
  cache schema version;
* event logs: *content* — the serialized trace text plus the structural
  ``GpuConfig`` signature, so regenerating a trace differently (or
  changing the L2 geometry) invalidates dependent logs automatically.

Storage is the human-readable :mod:`repro.workloads.traceio` line
formats plus a SHA-256 checksum footer; writes are atomic (temp file +
rename) so concurrent runs never observe torn artifacts. A truncated,
bit-flipped, or otherwise mangled entry fails the checksum (or the
format validation behind it) and degrades to a cache miss — counted in
:attr:`DiskCache.corrupt_entries` and the ``cache.corrupt_entries``
metric, never surfaced as a parse error. Delete the cache root, or bump
:data:`SCHEMA_VERSION` after changing trace generators, to invalidate
everything.

Resolution order for the cache root: an explicit constructor/CLI path,
else the ``REPRO_CACHE_DIR`` environment variable, else ``.cache``;
the empty string disables disk caching entirely.

Beyond read-through/write-through caching, the root doubles as a
**shared artifact store** for multi-process campaigns:

* every successful read refreshes the entry's mtime, so mtime order is
  LRU order and :meth:`DiskCache.gc` can evict least-recently-used
  entries down to a byte budget;
* **pins** protect in-flight artifacts from that GC. A process calls
  :func:`activate_pin` once (the distributed executor's workers pin as
  ``run-<run_id>-<worker_id>``); from then on every entry the process
  hits or stores is appended to ``pins/<pin_id>.json``. Each pin file
  has exactly one writer, so no locking is needed, and
  :meth:`DiskCache.gc` never evicts a pinned entry regardless of age.
  Pins are released by deleting the pin file
  (:meth:`DiskCache.clear_pins`) when the campaign finishes;
* session hit/miss/store/corruption counters are merged into a
  persisted ``counters.json`` by :func:`flush_counters` (best-effort,
  lock-file serialized), so ``repro.harness cache stats`` reports
  lifetime totals across every process that used the root.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.common.atomicio import atomic_write_text
from repro.common.digest import content_digest
from repro.common.errors import TraceError
from repro.obs import active
from repro.workloads.trace import Trace
from repro.workloads.traceio import (
    dumps_event_log,
    dumps_trace,
    loads_event_log,
    loads_trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.config import GpuConfig
    from repro.gpu.simulator import MemoryEventLog

#: Bump when trace generators or on-disk formats change shape: the
#: version salts every key, so stale artifacts are simply never hit.
#: v2: entries carry a SHA-256 checksum footer.
#: v3: event logs are stored in the columnar chunk format.
SCHEMA_VERSION = "3"

#: Footer line prefix sealing every cache entry.
CHECKSUM_PREFIX = "#repro-checksum sha256="

#: Environment variable naming the cache root ("" disables caching).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".cache"

#: Subdirectory of pin files (one JSON file per active pin id).
PINS_DIR = "pins"

#: Persisted lifetime counters, merged across processes on flush.
COUNTERS_NAME = "counters.json"

#: Names of the session counters persisted into ``counters.json``.
COUNTER_FIELDS = ("hits", "misses", "stores", "corrupt_entries")

#: A ``counters.lock`` older than this is presumed orphaned (its
#: holder was killed mid-flush) and broken by the next flusher.
_LOCK_STALE_S = 5.0

#: The process-wide pin id entries are recorded under, or ``None``.
_ACTIVE_PIN: Optional[str] = None

#: Every cache constructed in this process, so :func:`flush_counters`
#: can flush them all. Strong references on purpose: a weak set would
#: let an instance (and its unflushed counter deltas) be collected
#: before the interpreter-exit flush runs. Instances are a few dicts
#: each, so pinning them for the process lifetime costs nothing.
_INSTANCES: "Set[DiskCache]" = set()


def activate_pin(pin_id: str) -> None:
    """Pin every artifact this process touches under *pin_id*.

    Module-global by design: runner code deep inside a worker builds
    its own :class:`DiskCache` instances, and all of them must honor
    the pin without plumbing it through every constructor.
    """
    global _ACTIVE_PIN
    if "/" in pin_id or os.sep in pin_id:
        raise ValueError(f"pin id must be a bare name, got {pin_id!r}")
    _ACTIVE_PIN = pin_id


def deactivate_pin() -> None:
    """Stop recording entries under the active pin (file stays)."""
    global _ACTIVE_PIN
    _ACTIVE_PIN = None


def active_pin() -> Optional[str]:
    return _ACTIVE_PIN


def flush_counters() -> None:
    """Merge every live cache's session counters into its root."""
    for cache in list(_INSTANCES):
        try:
            cache.flush_counters()
        except Exception:  # pragma: no cover - exit-path best effort
            continue


# Flush on interpreter exit so `cache stats` in a later process sees
# lifetime counters from serial harness runs, not just from workers
# (which flush explicitly before exiting). Best-effort by design.
atexit.register(flush_counters)


def resolve_cache_dir(spec: Optional[str] = None) -> Optional[str]:
    """Resolve a cache-root spec: explicit path > env var > default.

    Returns ``None`` when caching is disabled (empty-string spec or
    ``REPRO_CACHE_DIR=""``).
    """
    if spec is None:
        spec = os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
    return spec or None


#: Backwards-compatible alias for the pre-resilience private name.
_digest = content_digest


@dataclass(frozen=True)
class GcResult:
    """What one :meth:`DiskCache.gc` pass did (or would do)."""

    examined: int
    evicted: int
    freed_bytes: int
    remaining_bytes: int
    #: Entries old enough to evict but protected by a pin.
    pinned_kept: int
    dry_run: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "examined": self.examined,
            "evicted": self.evicted,
            "freed_bytes": self.freed_bytes,
            "remaining_bytes": self.remaining_bytes,
            "pinned_kept": self.pinned_kept,
            "dry_run": self.dry_run,
        }


class DiskCache:
    """One cache root holding trace and event-log artifacts."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries discarded for failing checksum or format validation.
        self.corrupt_entries = 0
        #: Counter values already merged into ``counters.json``.
        self._flushed: Dict[str, int] = {f: 0 for f in COUNTER_FIELDS}
        #: In-memory mirror of this process's pin files (we are their
        #: single writer, so the mirror cannot go stale).
        self._pin_names: Dict[str, Set[str]] = {}
        #: Sizes captured by the last :meth:`entries` listing.
        self._entry_sizes: Dict[Path, int] = {}
        _INSTANCES.add(self)

    @classmethod
    def from_spec(cls, spec: Optional[str] = None) -> Optional["DiskCache"]:
        """Build a cache from a root spec, or ``None`` when disabled."""
        resolved = resolve_cache_dir(spec)
        return cls(resolved) if resolved else None

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def trace_key(benchmark: str, length: int, seed: int) -> str:
        """Key for a generated benchmark trace (generator identity)."""
        return _digest(
            "trace", SCHEMA_VERSION, benchmark, str(length), str(seed)
        )

    @staticmethod
    def event_log_key(trace: Trace, config: "GpuConfig") -> str:
        """Key for the event log of one (trace, GPU config) L2 pass.

        Hashes the trace *content* (its full serialized text), so any
        change in how a trace is produced propagates to dependent logs
        without bookkeeping. ``GpuConfig`` is a frozen dataclass tree;
        its repr is a complete structural signature.
        """
        return _digest(
            "eventlog", SCHEMA_VERSION, dumps_trace(trace), repr(config)
        )

    # -- storage -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.txt"

    def _note_corrupt(self, path: Path) -> None:
        """Count and evict a mangled entry; callers report a cache miss."""
        self.corrupt_entries += 1
        active().registry.counter("cache.corrupt_entries").inc()
        self._discard(path)

    def _read(self, path: Path) -> Optional[str]:
        """Read and checksum-verify one entry; ``None`` means miss.

        Truncation chops (or damages) the trailing footer line; a bit
        flip anywhere changes the digest. Either way the entry is
        discarded and rebuilt by the caller — corruption of the cache
        must never escalate into a parse error.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        idx = text.rfind(CHECKSUM_PREFIX)
        if idx < 0 or not text.endswith("\n"):
            self._note_corrupt(path)
            return None
        payload = text[:idx]
        claimed = text[idx + len(CHECKSUM_PREFIX):].strip()
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if claimed != actual:
            self._note_corrupt(path)
            return None
        # Refresh the entry's mtime so gc() evicts in true LRU order:
        # a hit makes the entry the youngest, not still the oldest.
        try:
            os.utime(path)
        except OSError:
            pass
        self._record_pin(path)
        return payload

    def _write_atomic(self, path: Path, text: str) -> None:
        if not text.endswith("\n"):
            text += "\n"
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        sealed = f"{text}{CHECKSUM_PREFIX}{digest}\n"
        # No fsync: the checksum footer already turns a power-loss torn
        # entry into a counted cache miss, and sweeps store thousands
        # of entries.
        atomic_write_text(path, sealed, fsync=False)
        self.stores += 1
        self._record_pin(path)

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- traces --------------------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        path = self._path("trace", key)
        text = self._read(path)
        if text is None:
            self.misses += 1
            return None
        try:
            trace = loads_trace(text)
        except TraceError:
            self._note_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store_trace(self, key: str, trace: Trace) -> None:
        self._write_atomic(self._path("trace", key), dumps_trace(trace))

    # -- event logs ----------------------------------------------------------

    def load_event_log(self, key: str) -> Optional["MemoryEventLog"]:
        path = self._path("events", key)
        text = self._read(path)
        if text is None:
            self.misses += 1
            return None
        try:
            log = loads_event_log(text)
        except TraceError:
            self._note_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return log

    def store_event_log(self, key: str, log: "MemoryEventLog") -> None:
        # Columnar chunks load through the bulk column fast path, so a
        # cache hit skips both simulate_l2 *and* per-event parsing.
        self._write_atomic(
            self._path("events", key),
            dumps_event_log(log, format="columnar"),
        )

    # -- artifact store: pins, GC, stats -------------------------------------

    def entries(self) -> List[Path]:
        """Every artifact entry under the root, oldest mtime first."""
        try:
            found = list(self.root.glob("*.txt"))
        except OSError:
            return []
        keyed = []
        for path in found:
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with a concurrent eviction
            keyed.append((stat.st_mtime, path.name, path, stat.st_size))
        keyed.sort(key=lambda item: (item[0], item[1]))
        self._entry_sizes = {path: size for _, _, path, size in keyed}
        return [path for _, _, path, _ in keyed]

    def total_bytes(self) -> int:
        total = 0
        for path in self.entries():
            total += self._entry_sizes.get(path, 0)
        return total

    def _pins_dir(self) -> Path:
        return self.root / PINS_DIR

    def _record_pin(self, path: Path) -> None:
        """Record *path* under the process-wide active pin, if any."""
        if _ACTIVE_PIN is not None:
            self.pin(_ACTIVE_PIN, path.name)

    def pin(self, pin_id: str, entry_name: str) -> None:
        """Append *entry_name* to ``pins/<pin_id>.json`` (idempotent).

        Each pin file is written only by the process that owns the pin
        id, so plain read-modify-write is race-free; the write itself
        is atomic so the GC never reads a torn pin file.
        """
        names = self._pin_names.get(pin_id)
        if names is None:
            names = set()
            loaded = self._read_pin_file(self._pins_dir() / f"{pin_id}.json")
            if loaded is not None:
                names.update(loaded)
            self._pin_names[pin_id] = names
        if entry_name in names:
            return
        names.add(entry_name)
        payload = {
            "schema": 1,
            "pin": pin_id,
            "entries": sorted(names),
        }
        atomic_write_text(
            self._pins_dir() / f"{pin_id}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            fsync=False,
        )

    @staticmethod
    def _read_pin_file(path: Path) -> Optional[List[str]]:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        entries = payload.get("entries") if isinstance(payload, dict) else None
        if not isinstance(entries, list):
            return None
        return [name for name in entries if isinstance(name, str)]

    def pinned_files(self) -> Set[str]:
        """Union of entry names protected by *any* pin file."""
        pinned: Set[str] = set()
        pins_dir = self._pins_dir()
        if not pins_dir.is_dir():
            return pinned
        for pin_file in sorted(pins_dir.glob("*.json")):
            names = self._read_pin_file(pin_file)
            if names:
                pinned.update(names)
        return pinned

    def pin_ids(self) -> List[str]:
        pins_dir = self._pins_dir()
        if not pins_dir.is_dir():
            return []
        return sorted(path.stem for path in pins_dir.glob("*.json"))

    def clear_pins(self, prefix: str = "") -> int:
        """Drop pin files whose id starts with *prefix*; count removed.

        The distributed coordinator calls this with
        ``run-<run_id>-`` after a campaign finishes so its workers'
        in-flight pins stop shielding entries from future GC.
        """
        removed = 0
        for pin_id in self.pin_ids():
            if not pin_id.startswith(prefix):
                continue
            try:
                (self._pins_dir() / f"{pin_id}.json").unlink()
                removed += 1
            except OSError:
                pass
            self._pin_names.pop(pin_id, None)
        return removed

    def gc(self, max_bytes: int, dry_run: bool = False) -> GcResult:
        """Evict least-recently-used unpinned entries down to a budget.

        mtime order *is* LRU order (reads refresh it), so eviction
        walks entries oldest first, skipping anything pinned — an
        in-flight campaign's artifacts survive even a ``max_bytes=0``
        sweep. Racing with concurrent stores is safe: eviction is a
        plain unlink of a sealed file, and a reader that loses the race
        sees an ordinary miss.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes cannot be negative: {max_bytes}")
        ordered = self.entries()
        sizes = dict(self._entry_sizes)
        pinned = self.pinned_files()
        total = sum(sizes.values())
        evicted = 0
        freed = 0
        pinned_kept = 0
        for path in ordered:
            if total <= max_bytes:
                break
            if path.name in pinned:
                pinned_kept += 1
                continue
            size = sizes.get(path, 0)
            if not dry_run:
                self._discard(path)
            evicted += 1
            freed += size
            total -= size
        active().registry.counter("cache.gc_evicted").inc(evicted)
        return GcResult(
            examined=len(ordered),
            evicted=evicted,
            freed_bytes=freed,
            remaining_bytes=total,
            pinned_kept=pinned_kept,
            dry_run=dry_run,
        )

    # -- persisted counters ---------------------------------------------------

    def _session_counters(self) -> Dict[str, int]:
        return {field: int(getattr(self, field)) for field in COUNTER_FIELDS}

    def read_persisted_counters(self) -> Dict[str, int]:
        counters = {field: 0 for field in COUNTER_FIELDS}
        try:
            payload = json.loads(
                (self.root / COUNTERS_NAME).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return counters
        if isinstance(payload, dict):
            for field in COUNTER_FIELDS:
                value = payload.get(field)
                if isinstance(value, int) and value >= 0:
                    counters[field] = value
        return counters

    def flush_counters(self) -> None:
        """Merge this session's counter deltas into ``counters.json``.

        Best-effort by design: concurrent flushers serialize on an
        ``O_EXCL`` lock file (with a staleness breaker, so a worker
        killed mid-flush cannot wedge the root forever), and a flush
        that cannot take the lock simply leaves its deltas for the
        next call. Lifetime counters are observability, not
        correctness — they must never fail a campaign.
        """
        deltas = {
            field: value - self._flushed[field]
            for field, value in self._session_counters().items()
        }
        if not any(deltas.values()):
            return
        lock = self.root / "counters.lock"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return
        for _ in range(50):
            try:
                fd = os.open(
                    lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    if time.time() - lock.stat().st_mtime > _LOCK_STALE_S:
                        lock.unlink()
                        continue
                except OSError:
                    continue
                time.sleep(0.01)
                continue
            except OSError:
                return
            try:
                merged = self.read_persisted_counters()
                for field, delta in deltas.items():
                    merged[field] = merged.get(field, 0) + delta
                merged["schema"] = 1
                atomic_write_text(
                    self.root / COUNTERS_NAME,
                    json.dumps(merged, indent=2, sort_keys=True) + "\n",
                    fsync=False,
                )
                self._flushed = self._session_counters()
            finally:
                os.close(fd)
                try:
                    lock.unlink()
                except OSError:
                    pass
            return

    def stats(self) -> Dict[str, object]:
        """Roll-up for ``repro.harness cache stats``: entries, bytes,
        pins, and lifetime counters (persisted + this session's
        unflushed deltas)."""
        ordered = self.entries()
        total = sum(self._entry_sizes.get(path, 0) for path in ordered)
        counters = self.read_persisted_counters()
        for field, value in self._session_counters().items():
            counters[field] += value - self._flushed[field]
        return {
            "root": str(self.root),
            "entries": len(ordered),
            "total_bytes": total,
            "pins": self.pin_ids(),
            "pinned_entries": len(self.pinned_files()),
            "counters": counters,
        }
