"""MAC tests: RFC/NIST vectors, stateful binding, truncation."""

import hashlib
import hmac as hmac_stdlib

import pytest

from repro.common.errors import ConfigurationError
from repro.crypto.mac import CmacAesMac, HmacSha256Mac, make_mac


class TestHmacAgainstStdlib:
    def test_full_tag_matches_stdlib(self):
        key = b"k" * 20
        mac = HmacSha256Mac(key, tag_bytes=32)
        message = (5).to_bytes(8, "little") + (7).to_bytes(8, "little") + b"data"
        expected = hmac_stdlib.new(key, message, hashlib.sha256).digest()
        assert mac.compute(b"data", address=5, counter=7) == expected

    def test_long_key_is_hashed_first(self):
        key = b"K" * 100  # longer than the 64-byte block
        mac = HmacSha256Mac(key, tag_bytes=32)
        message = (0).to_bytes(8, "little") * 2 + b"m"
        expected = hmac_stdlib.new(key, message, hashlib.sha256).digest()
        assert mac.compute(b"m") == expected


class TestCmacNistVectors:
    """NIST SP 800-38B, AES-128 examples."""

    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

    def test_empty_message(self):
        mac = CmacAesMac(self.KEY, tag_bytes=16)
        assert mac._full_tag(b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_one_block(self):
        msg = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        mac = CmacAesMac(self.KEY, tag_bytes=16)
        assert mac._full_tag(msg).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_40_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        )
        mac = CmacAesMac(self.KEY, tag_bytes=16)
        assert mac._full_tag(msg).hex() == "dfa66747de9ae63030ca32611497c827"

    def test_four_blocks(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        mac = CmacAesMac(self.KEY, tag_bytes=16)
        assert mac._full_tag(msg).hex() == "51f0bebf7e3b9d92fc49741779363cfe"


@pytest.mark.parametrize("algorithm", ["hmac-sha256", "cmac-aes"])
class TestStatefulBinding:
    """BMT-style MACs bind data to (address, counter)."""

    def make(self, algorithm, tag_bytes=8):
        return make_mac(algorithm, b"\x42" * 16, tag_bytes)

    def test_verify_accepts_honest_tag(self, algorithm):
        mac = self.make(algorithm)
        tag = mac.compute(b"sector!", address=0x80, counter=3)
        assert mac.verify(b"sector!", tag, address=0x80, counter=3)

    def test_tampered_data_rejected(self, algorithm):
        mac = self.make(algorithm)
        tag = mac.compute(b"sector!", address=0x80, counter=3)
        assert not mac.verify(b"sectorX", tag, address=0x80, counter=3)

    def test_spliced_address_rejected(self, algorithm):
        """Moving a valid (data, tag) to another address must fail."""
        mac = self.make(algorithm)
        tag = mac.compute(b"sector!", address=0x80, counter=3)
        assert not mac.verify(b"sector!", tag, address=0xC0, counter=3)

    def test_replayed_counter_rejected(self, algorithm):
        """A stale counter (replay) must fail even with matching data."""
        mac = self.make(algorithm)
        tag = mac.compute(b"sector!", address=0x80, counter=3)
        assert not mac.verify(b"sector!", tag, address=0x80, counter=4)

    def test_wrong_length_tag_rejected(self, algorithm):
        mac = self.make(algorithm)
        assert not mac.verify(b"data", b"\x00" * 3, address=0, counter=0)


class TestTruncation:
    def test_truncated_tag_length(self):
        assert len(HmacSha256Mac(b"k", tag_bytes=8).compute(b"d")) == 8
        assert len(CmacAesMac(b"k" * 16, tag_bytes=4).compute(b"d")) == 4

    def test_truncation_is_a_prefix(self):
        full = HmacSha256Mac(b"k", tag_bytes=32).compute(b"d", 1, 2)
        short = HmacSha256Mac(b"k", tag_bytes=8).compute(b"d", 1, 2)
        assert full[:8] == short

    def test_collision_probability(self):
        assert HmacSha256Mac(b"k", tag_bytes=8).collision_probability == 2.0**-64
        assert HmacSha256Mac(b"k", tag_bytes=4).collision_probability == 2.0**-32

    def test_invalid_truncation_rejected(self):
        with pytest.raises(ConfigurationError):
            HmacSha256Mac(b"k", tag_bytes=0)
        with pytest.raises(ConfigurationError):
            HmacSha256Mac(b"k", tag_bytes=33)
        with pytest.raises(ConfigurationError):
            CmacAesMac(b"k" * 16, tag_bytes=17)


class TestFactory:
    def test_factory_dispatch(self):
        assert isinstance(make_mac("hmac-sha256", b"k", 8), HmacSha256Mac)
        assert isinstance(make_mac("cmac-aes", b"k" * 16, 8), CmacAesMac)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_mac("md5", b"k", 8)

    def test_negative_context_rejected(self):
        mac = make_mac("hmac-sha256", b"k", 8)
        with pytest.raises(ValueError):
            mac.compute(b"d", address=-1, counter=0)
