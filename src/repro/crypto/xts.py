"""AES-XTS (IEEE P1619) with ciphertext stealing.

Plutus encrypts memory with AES-XTS rather than counter-mode precisely
because XTS is *malleability resistant at cipher-block granularity*: any
bit flip in a 16-byte ciphertext block decrypts to an unrelated, uniform
16-byte plaintext block (paper Section IV-B). The value-based integrity
check builds directly on this diffusion property, so the reproduction
implements the real mode, ciphertext stealing included, and the security
tests exercise the diffusion claim empirically.

Tweak convention: Plutus forms the tweak from the sector's physical
address (spatial uniqueness) and its encryption counter (temporal
uniqueness); see :mod:`repro.crypto.tweak`. This module accepts any
16-byte tweak and also offers the standard sector-number interface.
"""

from __future__ import annotations

from repro.common.bitops import xor_bytes
from repro.common.errors import BlockSizeError, KeySizeError
from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.gf import multiply_by_alpha_bytes
from repro.obs.session import active as _obs_active


class AesXts:
    """A keyed XTS instance over two independent AES keys.

    The combined key is split in half: the first half keys the data
    cipher, the second keys the tweak cipher, matching P1619.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (32, 64):
            raise KeySizeError(
                f"XTS key must be 32 or 64 bytes (two AES keys), got {len(key)}"
            )
        half = len(key) // 2
        self._data_cipher = AES(key[:half])
        self._tweak_cipher = AES(key[half:])
        # Span profiler under span_detail profiling only; None keeps
        # _process at one attribute check per call.
        obs = _obs_active()
        self._prof = (
            obs.profiler if obs.config.span_detail_active else None
        )

    def _initial_tweak(self, tweak: bytes) -> bytes:
        if len(tweak) != BLOCK_SIZE:
            raise BlockSizeError(
                f"tweak must be {BLOCK_SIZE} bytes, got {len(tweak)}"
            )
        return self._tweak_cipher.encrypt_block(tweak)

    def encrypt(self, plaintext: bytes, tweak: bytes) -> bytes:
        """Encrypt *plaintext* (>= 16 bytes) under the given raw tweak."""
        if len(plaintext) < BLOCK_SIZE:
            raise BlockSizeError("XTS requires at least one full block")
        return self._process(plaintext, tweak, encrypt=True)

    def decrypt(self, ciphertext: bytes, tweak: bytes) -> bytes:
        """Decrypt *ciphertext* (>= 16 bytes) under the given raw tweak."""
        if len(ciphertext) < BLOCK_SIZE:
            raise BlockSizeError("XTS requires at least one full block")
        return self._process(ciphertext, tweak, encrypt=False)

    def encrypt_sector(self, plaintext: bytes, sector_number: int) -> bytes:
        """Encrypt a storage sector addressed by a 128-bit sector number."""
        return self.encrypt(plaintext, sector_number.to_bytes(16, "little"))

    def decrypt_sector(self, ciphertext: bytes, sector_number: int) -> bytes:
        """Decrypt a storage sector addressed by a 128-bit sector number."""
        return self.decrypt(ciphertext, sector_number.to_bytes(16, "little"))

    def _process(self, data: bytes, tweak: bytes, encrypt: bool) -> bytes:
        if self._prof is None:
            return self._process_impl(data, tweak, encrypt)
        name = "crypto.xts.encrypt" if encrypt else "crypto.xts.decrypt"
        with self._prof.span(name):
            return self._process_impl(data, tweak, encrypt)

    def _process_impl(self, data: bytes, tweak: bytes, encrypt: bool) -> bytes:
        block_op = (
            self._data_cipher.encrypt_block
            if encrypt
            else self._data_cipher.decrypt_block
        )
        t = self._initial_tweak(tweak)
        full_blocks, tail_len = divmod(len(data), BLOCK_SIZE)

        if tail_len == 0:
            out = bytearray()
            for i in range(full_blocks):
                chunk = data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
                out += xor_bytes(block_op(xor_bytes(chunk, t)), t)
                t = multiply_by_alpha_bytes(t)
            return bytes(out)

        # Ciphertext stealing: the final partial block borrows from the
        # penultimate one. Decryption must process the last two tweaks in
        # swapped order (P1619 section 5.3.2).
        out = bytearray()
        for i in range(full_blocks - 1):
            chunk = data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            out += xor_bytes(block_op(xor_bytes(chunk, t)), t)
            t = multiply_by_alpha_bytes(t)

        penultimate = data[(full_blocks - 1) * BLOCK_SIZE : full_blocks * BLOCK_SIZE]
        tail = data[full_blocks * BLOCK_SIZE :]

        if encrypt:
            cc = xor_bytes(block_op(xor_bytes(penultimate, t)), t)
            t_next = multiply_by_alpha_bytes(t)
            stolen = cc[tail_len:]
            final_in = tail + stolen
            cm = xor_bytes(block_op(xor_bytes(final_in, t_next)), t_next)
            out += cm + cc[:tail_len]
        else:
            t_next = multiply_by_alpha_bytes(t)
            pp = xor_bytes(block_op(xor_bytes(penultimate, t_next)), t_next)
            stolen = pp[tail_len:]
            final_in = tail + stolen
            pm = xor_bytes(block_op(xor_bytes(final_in, t)), t)
            out += pm + pp[:tail_len]
        return bytes(out)
