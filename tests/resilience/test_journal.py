"""Append-only run journals: durability, torn tails, fingerprint checks."""

import json

import pytest

from repro.common.errors import JournalError
from repro.resilience import Campaign, RunJournal, WorkUnit, journal_path


def make_campaign(name="c", values=(1, 2, 3)):
    return Campaign(
        name=name,
        units=[
            WorkUnit(
                kind="cell",
                params={"value": v},
                runner=lambda v=v: {"value": v},
                label=f"cell[{v}]",
            )
            for v in values
        ],
    )


class TestLifecycle:
    def test_open_writes_run_header(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        header = journal.header()
        assert header["type"] == "run"
        assert header["campaign"] == "c"
        assert header["fingerprint"] == campaign.fingerprint
        assert header["units"] == 3

    def test_reopen_same_campaign_appends(self, tmp_path):
        campaign = make_campaign()
        RunJournal.open(tmp_path, "run1", campaign)
        journal = RunJournal.open(tmp_path, "run1", campaign)
        # Only one header line, no duplicate.
        assert sum(
            1 for r in journal.records() if r.get("type") == "run"
        ) == 1

    def test_resume_refuses_different_campaign(self, tmp_path):
        RunJournal.open(tmp_path, "run1", make_campaign(values=(1, 2)))
        with pytest.raises(JournalError, match="cannot resume"):
            RunJournal.open(tmp_path, "run1", make_campaign(values=(1, 2, 3)))

    def test_resume_refuses_unknown_run_id(self, tmp_path):
        with pytest.raises(JournalError, match="nothing to resume"):
            RunJournal.open(
                tmp_path, "ghost", make_campaign(), require_existing=True
            )

    def test_schema_mismatch_rejected(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        path = journal_path(tmp_path, "run1")
        record = json.loads(path.read_text().strip())
        record["schema"] = 999
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(JournalError, match="schema"):
            RunJournal.open(tmp_path, "run1", campaign)


class TestRecords:
    def test_ok_units_carry_results_and_key_order(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(
            campaign.units[0], "ok", attempts=1, elapsed_s=0.5,
            result={"zeta": 1, "alpha": 2},
        )
        done = journal.completed()
        record = done[campaign.units[0].unit_id]
        assert record["status"] == "ok"
        # Insertion order survives the journal (reports depend on it).
        assert list(record["result"]) == ["zeta", "alpha"]

    def test_failed_units_carry_no_result(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(
            campaign.units[0], "failed", attempts=3, elapsed_s=0.5,
            failure_class="crash", error="boom", result={"ignored": True},
        )
        records = journal.records()
        assert "result" not in records[-1]
        assert journal.completed() == {}

    def test_unit_record_count(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={})
        journal.record_unit(campaign.units[1], "failed", 2, 0.1,
                            failure_class="crash", error="x")
        assert journal.unit_record_count() == 2
        assert journal.unit_record_count(campaign.units[0].unit_id) == 1
        assert journal.unit_record_count("nope") == 0

    def test_end_record(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_end("partial", reason="wall-clock budget exhausted")
        end = journal.records()[-1]
        ts = end.pop("ts")
        assert isinstance(ts, float)
        assert end == {
            "type": "end",
            "status": "partial",
            "reason": "wall-clock budget exhausted",
        }


class TestCorruption:
    def test_torn_trailing_line_tolerated(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={"v": 1})
        path = journal_path(tmp_path, "run1")
        with path.open("a", encoding="utf-8") as fp:
            fp.write('{"type":"unit","unit_id":"abc","sta')  # kill -9 here
        done = journal.completed()
        assert set(done) == {campaign.units[0].unit_id}

    def test_reopen_repairs_torn_tail_before_appending(self, tmp_path):
        # Without the repair, the next append would concatenate onto
        # the torn fragment and corrupt the journal mid-file.
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={"v": 1})
        path = journal_path(tmp_path, "run1")
        with path.open("a", encoding="utf-8") as fp:
            fp.write('{"type":"unit","unit_id":"abc","sta')
        resumed = RunJournal.open(tmp_path, "run1", campaign)
        resumed.record_unit(campaign.units[1], "ok", 1, 0.1, result={"v": 2})
        done = resumed.completed()
        assert set(done) == {
            campaign.units[0].unit_id,
            campaign.units[1].unit_id,
        }
        assert resumed.unit_record_count() == 2

    def test_mid_file_corruption_raises(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={"v": 1})
        path = journal_path(tmp_path, "run1")
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:20]  # mangle the header, keep later lines
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            journal.records()

    def test_non_object_line_raises(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        path = journal_path(tmp_path, "run1")
        with path.open("a", encoding="utf-8") as fp:
            fp.write("[1,2,3]\n")
        with pytest.raises(JournalError, match="not an object"):
            journal.records()

    def test_missing_header_raises(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        path = journal_path(tmp_path, "run1")
        path.write_text('{"type":"unit","unit_id":"abc","status":"ok"}\n')
        with pytest.raises(JournalError, match="no run header"):
            journal.header()

    def test_unit_record_without_id_raises(self, tmp_path):
        campaign = make_campaign()
        journal = RunJournal.open(tmp_path, "run1", campaign)
        path = journal_path(tmp_path, "run1")
        with path.open("a", encoding="utf-8") as fp:
            fp.write('{"type":"unit","status":"ok"}\n')
        with pytest.raises(JournalError, match="without an id"):
            journal.completed()
