"""The ``status`` subcommand: read-only journal monitoring."""

import json

import pytest

from repro.common.errors import EXIT_OK, EXIT_PARTIAL, EXIT_USAGE, JournalError
from repro.harness.status import (
    follow,
    read_snapshot,
    render_status,
    resolve_journal,
    status_main,
)
from repro.resilience import Campaign, RunJournal, WorkUnit, journal_path


def make_campaign(n=4):
    return Campaign(
        name="camp",
        units=[
            WorkUnit(
                kind="cell",
                params={"value": v},
                runner=lambda v=v: {"value": v},
                label=f"cell[{v}]",
            )
            for v in range(n)
        ],
    )


class FakeTime:
    def __init__(self, start=1000.0):
        self.t = start

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def start_run(tmp_path, n=4, meta=None, start=1000.0):
    """Open a deterministic journal; returns (campaign, journal, clock)."""
    campaign = make_campaign(n)
    journal = RunJournal(journal_path(tmp_path, "run1"), "run1")
    clock = FakeTime(start)
    journal.time_source = clock
    journal.path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "type": "run",
        "schema": 1,
        "run_id": "run1",
        "campaign": campaign.name,
        "fingerprint": campaign.fingerprint,
        "units": len(campaign.units),
    }
    if meta:
        header.update(meta)
    journal._append(header)
    return campaign, journal, clock


class TestSnapshot:
    def test_live_run_counts_and_throughput(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path)
        clock.advance(10.0)
        journal.record_unit(campaign.units[0], "ok", 1, 10.0, result={})
        clock.advance(10.0)
        journal.record_unit(campaign.units[1], "ok", 1, 10.0, result={})
        snapshot = read_snapshot(journal.path, now=lambda: 1020.0)
        assert snapshot.units_total == 4
        assert snapshot.ok == 2
        assert snapshot.pending == 2
        assert snapshot.running
        assert snapshot.elapsed_s == pytest.approx(20.0)
        assert snapshot.units_per_s == pytest.approx(0.1)
        assert snapshot.eta_s == pytest.approx(20.0)

    def test_failed_units_stay_pending_for_resume(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path, n=2)
        clock.advance(1.0)
        journal.record_unit(
            campaign.units[0], "failed", 3, 1.0,
            failure_class="crash", error="boom",
        )
        snapshot = read_snapshot(journal.path, now=lambda: 1001.0)
        assert snapshot.failed == 1
        assert snapshot.pending == 2  # failed units re-run on resume

    def test_resumed_ok_is_sticky_over_earlier_failure(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path, n=1)
        journal.record_unit(
            campaign.units[0], "failed", 3, 1.0,
            failure_class="crash", error="boom",
        )
        clock.advance(1.0)
        journal.record_unit(campaign.units[0], "ok", 1, 1.0, result={})
        snapshot = read_snapshot(journal.path, now=clock)
        assert snapshot.ok == 1
        assert snapshot.failed == 0
        assert snapshot.unit_records == 2

    def test_ended_run_uses_journal_time_not_wall_clock(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path, n=1)
        clock.advance(5.0)
        journal.record_unit(campaign.units[0], "ok", 1, 5.0, result={})
        journal.record_end("complete")
        # `now` far in the future must not inflate elapsed.
        snapshot = read_snapshot(journal.path, now=lambda: 99999.0)
        assert not snapshot.running
        assert snapshot.elapsed_s == pytest.approx(5.0)
        assert snapshot.exit_code == EXIT_OK

    def test_partial_end_maps_to_partial_exit(self, tmp_path):
        _, journal, _ = start_run(tmp_path, n=2)
        journal.record_end(
            "partial", reason="wall-clock budget exhausted",
            telemetry={"units": 1, "wall_s": 1.0, "cpu_s": 0.5, "retries": 0},
        )
        snapshot = read_snapshot(journal.path, now=journal.time_source)
        assert snapshot.end_status == "partial"
        assert snapshot.end_reason == "wall-clock budget exhausted"
        assert snapshot.exit_code == EXIT_PARTIAL
        assert snapshot.telemetry["units"] == 1

    def test_budget_meta_surfaces(self, tmp_path):
        _, journal, _ = start_run(
            tmp_path, meta={"budget": {"wall_clock_s": 120.0}}
        )
        snapshot = read_snapshot(journal.path, now=journal.time_source)
        assert snapshot.budget == {"wall_clock_s": 120.0}
        text = render_status(snapshot)
        assert "budget:" in text

    def test_torn_trailing_line_tolerated(self, tmp_path):
        campaign, journal, _ = start_run(tmp_path, n=2)
        journal.record_unit(campaign.units[0], "ok", 1, 1.0, result={})
        with journal.path.open("a", encoding="utf-8") as fp:
            fp.write('{"type":"unit","unit_id":"abc","sta')
        snapshot = read_snapshot(journal.path, now=journal.time_source)
        assert snapshot.ok == 1

    def test_status_never_writes_the_journal(self, tmp_path):
        campaign, journal, _ = start_run(tmp_path, n=2)
        journal.record_unit(campaign.units[0], "ok", 1, 1.0, result={})
        # Leave a torn tail: the repair path would truncate it.
        with journal.path.open("a", encoding="utf-8") as fp:
            fp.write('{"type":"unit","unit_id":"abc","sta')
        before = journal.path.read_bytes()
        read_snapshot(journal.path, now=journal.time_source)
        rc = status_main([str(journal.path)], now=journal.time_source)
        assert rc == EXIT_OK
        assert journal.path.read_bytes() == before


class TestResolve:
    def test_accepts_file_dir_and_single_run_root(self, tmp_path):
        _, journal, _ = start_run(tmp_path)
        expected = journal.path
        assert resolve_journal(str(expected)) == expected
        assert resolve_journal(str(expected.parent)) == expected
        assert resolve_journal(str(tmp_path)) == expected

    def test_ambiguous_root_rejected(self, tmp_path):
        start_run(tmp_path)
        second = journal_path(tmp_path, "run2")
        second.parent.mkdir(parents=True)
        second.write_text("{}\n")
        with pytest.raises(JournalError, match="2 runs"):
            resolve_journal(str(tmp_path))

    def test_missing_journal_is_usage_error(self, tmp_path):
        rc = status_main([str(tmp_path / "nope")])
        assert rc == EXIT_USAGE


class TestCli:
    def test_json_snapshot(self, tmp_path, capsys):
        campaign, journal, clock = start_run(tmp_path, n=2)
        clock.advance(2.0)
        journal.record_unit(campaign.units[0], "ok", 1, 2.0, result={})
        journal.record_end("complete")
        rc = status_main([str(journal.path), "--json"], now=clock)
        assert rc == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] == 1
        assert payload["running"] is False
        assert payload["end_status"] == "complete"

    def test_text_render(self, tmp_path, capsys):
        campaign, journal, clock = start_run(tmp_path, n=2)
        clock.advance(1.0)
        journal.record_unit(campaign.units[0], "ok", 1, 1.0, result={})
        rc = status_main([str(journal.path)], now=clock)
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "run run1" in out
        assert "1 ok" in out
        assert "state:    running" in out


class TestFollow:
    def test_follow_exits_on_end_record(self, tmp_path, capsys):
        campaign, journal, clock = start_run(tmp_path, n=2)

        steps = iter(
            [
                lambda: journal.record_unit(
                    campaign.units[0], "ok", 1, 1.0, result={}
                ),
                lambda: journal.record_unit(
                    campaign.units[1], "ok", 1, 1.0, result={}
                ),
                lambda: journal.record_end("complete"),
            ]
        )

        def sleep(_seconds):
            clock.advance(1.0)
            next(steps)()

        import sys

        rc = follow(journal.path, 0.01, sys.stdout, now=clock, sleep=sleep)
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert "0/2 ok" in out  # the live polls
        assert "state:    complete" in out  # the final block

    def test_follow_partial_exit_code(self, tmp_path):
        _, journal, clock = start_run(tmp_path, n=2)

        def sleep(_seconds):
            journal.record_end("partial", reason="budget")

        import io

        rc = follow(journal.path, 0.01, io.StringIO(), now=clock, sleep=sleep)
        assert rc == EXIT_PARTIAL

    def test_follow_gives_up_after_max_polls(self, tmp_path):
        _, journal, clock = start_run(tmp_path, n=2)
        sleeps = []
        import io

        rc = follow(
            journal.path, 0.01, io.StringIO(),
            now=clock, sleep=sleeps.append, max_polls=3,
        )
        assert rc == EXIT_OK
        assert len(sleeps) == 2  # the last poll returns before sleeping


class TestDistributedRollup:
    def start_worker(self, run_dir, campaign, worker_id):
        journal = RunJournal(
            journal_path(run_dir / "workers", worker_id), worker_id
        )
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._append({
            "type": "run",
            "schema": 1,
            "run_id": worker_id,
            "campaign": campaign.name,
            "fingerprint": campaign.fingerprint,
            "units": len(campaign.units),
        })
        journal.record_event("start", worker=worker_id, incarnation=0)
        return journal

    def test_worker_journals_fold_into_progress(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path)
        run_dir = journal.path.parent
        w0 = self.start_worker(run_dir, campaign, "w0")
        w1 = self.start_worker(run_dir, campaign, "w1")
        # The coordinator merged unit 0; units 1 and 2 are done in
        # worker journals only -- live progress must count them.
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={})
        w0.record_unit(campaign.units[0], "ok", 1, 0.1, result={})
        w0.record_unit(campaign.units[1], "ok", 1, 0.1, result={})
        w1.record_event("steal", unit_id=campaign.units[2].unit_id,
                        worker="w1", gen=2)
        w1.record_unit(campaign.units[2], "ok", 1, 0.1, result={})
        w1.record_event("speculate", unit_id="u", worker="w1", gen=2)
        w1.record_event("spec-loss", unit_id="u", worker="w1", gen=2)
        w1.record_event("start", worker="w1", incarnation=1)

        snapshot = read_snapshot(journal.path, now=lambda: 1001.0)
        assert snapshot.ok == 3
        assert snapshot.pending == 1
        rollup = {w["worker"]: w for w in snapshot.workers}
        assert rollup["w0"]["ok"] == 2
        assert rollup["w1"]["ok"] == 1
        assert rollup["w1"]["steals"] == 1
        assert rollup["w1"]["speculations"] == 1
        assert rollup["w1"]["spec_losses"] == 1
        assert rollup["w1"]["incarnations"] == 2
        payload = snapshot.as_dict()
        assert {w["worker"] for w in payload["workers"]} == {"w0", "w1"}

    def test_live_leases_are_listed_while_running(self, tmp_path):
        from repro.resilience import WorkQueue

        campaign, journal, clock = start_run(tmp_path, n=2)
        run_dir = journal.path.parent
        queue = WorkQueue(run_dir / "queue", default_ttl_s=60.0)
        queue.create()
        queue.claim(campaign.units[0].unit_id, "w0")
        snapshot = read_snapshot(journal.path, now=lambda: 1001.0)
        assert len(snapshot.leases) == 1
        assert snapshot.leases[0]["worker"] == "w0"
        rendered = render_status(snapshot)
        assert "leases:   1 held" in rendered

    def test_ended_run_omits_leases(self, tmp_path):
        from repro.resilience import WorkQueue

        campaign, journal, clock = start_run(tmp_path, n=1)
        run_dir = journal.path.parent
        queue = WorkQueue(run_dir / "queue", default_ttl_s=60.0)
        queue.create()
        queue.claim(campaign.units[0].unit_id, "w0")
        journal.record_unit(campaign.units[0], "ok", 1, 0.1, result={})
        journal.record_end("complete")
        snapshot = read_snapshot(journal.path, now=lambda: 1001.0)
        assert snapshot.leases == []
        assert "leases" not in snapshot.as_dict()

    def test_render_includes_worker_lines(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path, n=2)
        run_dir = journal.path.parent
        w0 = self.start_worker(run_dir, campaign, "w0")
        w0.record_event("steal", unit_id="u", worker="w0", gen=2)
        w0.record_unit(campaign.units[0], "ok", 1, 0.1, result={})
        rendered = render_status(
            read_snapshot(journal.path, now=lambda: 1001.0)
        )
        assert "workers:" in rendered
        assert "w0: 1 ok  0 failed  1 stolen" in rendered

    def test_serial_runs_have_no_worker_section(self, tmp_path):
        campaign, journal, clock = start_run(tmp_path, n=1)
        snapshot = read_snapshot(journal.path, now=lambda: 1001.0)
        assert snapshot.workers == []
        assert "workers:" not in render_status(snapshot)
