"""Content-hashed on-disk cache for traces and DRAM event logs.

The two expensive artifacts every sweep shares — generated benchmark
traces and the event logs one L2 pass distills from them — are pure
functions of their inputs, so they cache across *processes*, not just
within one :class:`~repro.harness.runner.ExperimentContext`. Artifacts
live under a cache root (default ``.cache/``) keyed by SHA-256 over
their defining inputs:

* traces: generator identity — ``(benchmark, length, seed)`` plus the
  cache schema version;
* event logs: *content* — the serialized trace text plus the structural
  ``GpuConfig`` signature, so regenerating a trace differently (or
  changing the L2 geometry) invalidates dependent logs automatically.

Storage is the human-readable :mod:`repro.workloads.traceio` line
formats plus a SHA-256 checksum footer; writes are atomic (temp file +
rename) so concurrent runs never observe torn artifacts. A truncated,
bit-flipped, or otherwise mangled entry fails the checksum (or the
format validation behind it) and degrades to a cache miss — counted in
:attr:`DiskCache.corrupt_entries` and the ``cache.corrupt_entries``
metric, never surfaced as a parse error. Delete the cache root, or bump
:data:`SCHEMA_VERSION` after changing trace generators, to invalidate
everything.

Resolution order for the cache root: an explicit constructor/CLI path,
else the ``REPRO_CACHE_DIR`` environment variable, else ``.cache``;
the empty string disables disk caching entirely.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.common.atomicio import atomic_write_text
from repro.common.digest import content_digest
from repro.common.errors import TraceError
from repro.obs import active
from repro.workloads.trace import Trace
from repro.workloads.traceio import (
    dumps_event_log,
    dumps_trace,
    loads_event_log,
    loads_trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gpu.config import GpuConfig
    from repro.gpu.simulator import MemoryEventLog

#: Bump when trace generators or on-disk formats change shape: the
#: version salts every key, so stale artifacts are simply never hit.
#: v2: entries carry a SHA-256 checksum footer.
#: v3: event logs are stored in the columnar chunk format.
SCHEMA_VERSION = "3"

#: Footer line prefix sealing every cache entry.
CHECKSUM_PREFIX = "#repro-checksum sha256="

#: Environment variable naming the cache root ("" disables caching).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".cache"


def resolve_cache_dir(spec: Optional[str] = None) -> Optional[str]:
    """Resolve a cache-root spec: explicit path > env var > default.

    Returns ``None`` when caching is disabled (empty-string spec or
    ``REPRO_CACHE_DIR=""``).
    """
    if spec is None:
        spec = os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR)
    return spec or None


#: Backwards-compatible alias for the pre-resilience private name.
_digest = content_digest


class DiskCache:
    """One cache root holding trace and event-log artifacts."""

    def __init__(self, root: str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries discarded for failing checksum or format validation.
        self.corrupt_entries = 0

    @classmethod
    def from_spec(cls, spec: Optional[str] = None) -> Optional["DiskCache"]:
        """Build a cache from a root spec, or ``None`` when disabled."""
        resolved = resolve_cache_dir(spec)
        return cls(resolved) if resolved else None

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def trace_key(benchmark: str, length: int, seed: int) -> str:
        """Key for a generated benchmark trace (generator identity)."""
        return _digest(
            "trace", SCHEMA_VERSION, benchmark, str(length), str(seed)
        )

    @staticmethod
    def event_log_key(trace: Trace, config: "GpuConfig") -> str:
        """Key for the event log of one (trace, GPU config) L2 pass.

        Hashes the trace *content* (its full serialized text), so any
        change in how a trace is produced propagates to dependent logs
        without bookkeeping. ``GpuConfig`` is a frozen dataclass tree;
        its repr is a complete structural signature.
        """
        return _digest(
            "eventlog", SCHEMA_VERSION, dumps_trace(trace), repr(config)
        )

    # -- storage -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.txt"

    def _note_corrupt(self, path: Path) -> None:
        """Count and evict a mangled entry; callers report a cache miss."""
        self.corrupt_entries += 1
        active().registry.counter("cache.corrupt_entries").inc()
        self._discard(path)

    def _read(self, path: Path) -> Optional[str]:
        """Read and checksum-verify one entry; ``None`` means miss.

        Truncation chops (or damages) the trailing footer line; a bit
        flip anywhere changes the digest. Either way the entry is
        discarded and rebuilt by the caller — corruption of the cache
        must never escalate into a parse error.
        """
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        idx = text.rfind(CHECKSUM_PREFIX)
        if idx < 0 or not text.endswith("\n"):
            self._note_corrupt(path)
            return None
        payload = text[:idx]
        claimed = text[idx + len(CHECKSUM_PREFIX):].strip()
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if claimed != actual:
            self._note_corrupt(path)
            return None
        return payload

    def _write_atomic(self, path: Path, text: str) -> None:
        if not text.endswith("\n"):
            text += "\n"
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        sealed = f"{text}{CHECKSUM_PREFIX}{digest}\n"
        # No fsync: the checksum footer already turns a power-loss torn
        # entry into a counted cache miss, and sweeps store thousands
        # of entries.
        atomic_write_text(path, sealed, fsync=False)
        self.stores += 1

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- traces --------------------------------------------------------------

    def load_trace(self, key: str) -> Optional[Trace]:
        path = self._path("trace", key)
        text = self._read(path)
        if text is None:
            self.misses += 1
            return None
        try:
            trace = loads_trace(text)
        except TraceError:
            self._note_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def store_trace(self, key: str, trace: Trace) -> None:
        self._write_atomic(self._path("trace", key), dumps_trace(trace))

    # -- event logs ----------------------------------------------------------

    def load_event_log(self, key: str) -> Optional["MemoryEventLog"]:
        path = self._path("events", key)
        text = self._read(path)
        if text is None:
            self.misses += 1
            return None
        try:
            log = loads_event_log(text)
        except TraceError:
            self._note_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return log

    def store_event_log(self, key: str, log: "MemoryEventLog") -> None:
        # Columnar chunks load through the bulk column fast path, so a
        # cache hit skips both simulate_l2 *and* per-event parsing.
        self._write_atomic(
            self._path("events", key),
            dumps_event_log(log, format="columnar"),
        )
