#!/usr/bin/env python3
"""Scenario: explore the Plutus design space for a new GPU.

An architect porting Plutus to a different GPU needs to re-derive the
paper's design choices rather than trust its constants. This script
sweeps the three axes the paper explores:

1. value-cache size (Fig. 21) and the Eq. 1 hits-required consequence,
2. compact-counter design (2-bit / 3-bit / adaptive, Fig. 17),
3. metadata fetch granularity (Fig. 14/16),

and prints a recommendation per axis, exactly the way the paper's
evaluation justifies its defaults.

Run:
    python examples/design_space_exploration.py [trace_length]
"""

import sys

from repro.analysis.forgery import design_space
from repro.analysis.summarize import geometric_mean
from repro.gpu.perf_model import normalized_ipc
from repro.harness.report import format_table
from repro.harness.runner import ExperimentContext

BENCHMARKS = ["bfs", "histo", "lbm", "pagerank"]


def sweep(ctx, keys, label):
    """Geomean speedup over PSSM for each engine key."""
    rows = []
    for key in keys:
        ratios = []
        for bench in BENCHMARKS:
            base = ctx.run(bench, "nosec")
            pssm = normalized_ipc(ctx.run(bench, "pssm"), base)
            this = normalized_ipc(ctx.run(bench, key), base)
            ratios.append(this / pssm)
        rows.append({label: key, "geomean_speedup_vs_pssm": geometric_mean(ratios)})
    return rows


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 15000
    ctx = ExperimentContext(trace_length=length, benchmarks=BENCHMARKS)

    print("=== Axis 1: value-cache size (paper Fig. 21 + Eq. 1) ===")
    vc_keys = [f"plutus:vcache-{n}" for n in (64, 128, 256, 512, 1024)]
    rows = sweep(ctx, vc_keys, "value_cache")
    print(format_table(rows))
    print("\nEq. 1 consequence — hits required per 128-bit unit by size:")
    print(format_table([
        {
            "entries": r.cache_entries,
            "hits_required": r.hits_required,
            "per_sector_forgery_p": r.per_sector_probability,
        }
        for r in design_space()
    ]))
    print("-> 256 entries: last size needing only 3-of-4 hits while the\n"
          "   forgery bound still beats an 8-byte MAC; bigger caches need\n"
          "   4-of-4 and return little (diminishing reuse capture).")

    print("\n=== Axis 2: compact-counter design (paper Fig. 17) ===")
    rows = sweep(
        ctx, ["compact:2bit", "compact:3bit", "compact:adaptive"], "design"
    )
    print(format_table(rows))
    print("-> the adaptive scheme avoids the double-access penalty once\n"
          "   blocks saturate; 2-bit counters overflow on the third write.")

    print("\n=== Axis 3: metadata fetch granularity (paper Fig. 14/16) ===")
    rows = sweep(
        ctx, ["gran:128B", "gran:32B-leaf", "gran:32B-all"], "granularity"
    )
    print(format_table(rows))
    print("-> 32B everywhere trades a taller tree for the elimination of\n"
          "   over-fetch; best for irregular tenants, near-neutral for\n"
          "   streaming ones.")


if __name__ == "__main__":
    main()
