"""Tests for the DRAM bandwidth model."""

import pytest

from repro.common.units import Bandwidth
from repro.mem.dram import DEFAULT_DRAM, DramConfig


class TestDefaults:
    def test_volta_numbers(self):
        assert DEFAULT_DRAM.peak_bandwidth.gb_per_s == pytest.approx(868.0)
        assert DEFAULT_DRAM.num_partitions == 32
        assert DEFAULT_DRAM.transaction_bytes == 32

    def test_effective_bandwidth_derated(self):
        assert DEFAULT_DRAM.effective_bandwidth.bytes_per_second == pytest.approx(
            868e9 * 0.75
        )

    def test_per_partition_split(self):
        per = DEFAULT_DRAM.per_partition_bandwidth.bytes_per_second
        assert per * 32 == pytest.approx(
            DEFAULT_DRAM.effective_bandwidth.bytes_per_second
        )


class TestValidation:
    def test_efficiency_bounds(self):
        with pytest.raises(ValueError):
            DramConfig(efficiency=0.0)
        with pytest.raises(ValueError):
            DramConfig(efficiency=1.5)

    def test_partition_count_positive(self):
        with pytest.raises(ValueError):
            DramConfig(num_partitions=0)


class TestArithmetic:
    def test_transfer_time_scales_linearly(self):
        config = DramConfig(
            peak_bandwidth=Bandwidth.from_gb_per_s(100), efficiency=1.0
        )
        assert config.transfer_time(100e9) == pytest.approx(1.0)
        assert config.transfer_time(50e9) == pytest.approx(0.5)

    def test_transactions_round_up(self):
        assert DEFAULT_DRAM.transactions_for(0) == 0
        assert DEFAULT_DRAM.transactions_for(32) == 1
        assert DEFAULT_DRAM.transactions_for(33) == 2
        assert DEFAULT_DRAM.transactions_for(128) == 4
