"""Tests for the exception hierarchy contracts."""

import pytest

from repro.common import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "AlignmentError",
            "CryptoError",
            "KeySizeError",
            "BlockSizeError",
            "SecurityViolation",
            "IntegrityError",
            "ReplayError",
            "CounterOverflowError",
            "SimulationError",
            "TraceError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_attack_classes_are_security_violations(self):
        assert issubclass(errors.IntegrityError, errors.SecurityViolation)
        assert issubclass(errors.ReplayError, errors.SecurityViolation)

    def test_value_error_compatibility(self):
        """Size/alignment errors double as ValueError for generic callers."""
        assert issubclass(errors.AlignmentError, ValueError)
        assert issubclass(errors.KeySizeError, ValueError)
        assert issubclass(errors.BlockSizeError, ValueError)

    def test_security_violation_carries_address(self):
        violation = errors.IntegrityError("tampered", address=0x1000)
        assert violation.address == 0x1000

    def test_security_violation_address_optional(self):
        assert errors.ReplayError("stale").address is None

    def test_security_violation_carries_stream(self):
        violation = errors.IntegrityError(
            "tampered", address=0x1000, stream="mac"
        )
        assert violation.stream == "mac"
        assert errors.ReplayError("stale").stream is None

    def test_fault_injection_error_in_hierarchy(self):
        assert issubclass(errors.FaultInjectionError, errors.ReproError)

    def test_trace_format_error_prefixes_line(self):
        exc = errors.TraceFormatError("bad record", line=17)
        assert issubclass(errors.TraceFormatError, errors.TraceError)
        assert exc.line == 17
        assert str(exc) == "line 17: bad record"
        assert str(errors.TraceFormatError("no header")) == "no header"

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CounterOverflowError("boom")
