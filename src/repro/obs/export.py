"""Serialization of collected metrics and traces.

Two stable on-disk formats (full field reference: docs/SCHEMAS.md):

* ``metrics.json`` — one object: a schema tag, the originating
  :class:`~repro.obs.config.ObsConfig`, every registry instrument under
  ``metrics`` (keyed by dotted name), a ``summary`` block exposing
  collection-side data loss (tracer ring drops, sampler compactions,
  span ring drops and unclosed spans), and a free-form ``extra``
  section for caller headline numbers.
* ``events.jsonl`` — the tracer's ring buffer, one JSON event per line.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.atomicio import atomic_write_text
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry, Sampler
from repro.obs.tracer import EventTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.session import ObsSession

#: Version tag for the metrics JSON layout. ``/2`` added the
#: ``summary`` data-loss block and the sampler ``compactions`` field.
METRICS_SCHEMA = "repro.obs/2"


def sampler_compactions(registry: MetricsRegistry) -> Dict[str, int]:
    """Sampler data-loss roll-up: series count and total compactions."""
    samplers = [
        inst for _name, inst in registry.items() if isinstance(inst, Sampler)
    ]
    return {
        "series": len(samplers),
        "compactions": sum(s.compactions for s in samplers),
    }


def summary_block(session: Optional["ObsSession"]) -> Dict[str, object]:
    """The ``summary`` section: where collection lost or folded data.

    Everything here is *meta* — it describes the fidelity of the export
    (ring-buffer drops, sampler resolution halvings, span records lost,
    spans still open), not the measured workload.
    """
    if session is None:
        return {}
    tracer = session.tracer
    profiler = session.profiler
    return {
        "tracer": {
            "emitted": tracer.emitted,
            "retained": len(tracer),
            "dropped": tracer.dropped,
        },
        "samplers": sampler_compactions(session.registry),
        "spans": {
            "recorded": profiler.recorded,
            "retained": len(profiler),
            "dropped": profiler.dropped,
            "forced_closes": profiler.forced_closes,
            "open": profiler.open_spans(),
        },
    }


def metrics_payload(
    registry: MetricsRegistry,
    config: Optional[ObsConfig] = None,
    extra: Optional[Dict[str, object]] = None,
    session: Optional["ObsSession"] = None,
) -> Dict[str, object]:
    """The JSON-able object ``write_metrics_json`` persists."""
    return {
        "schema": METRICS_SCHEMA,
        "config": config.as_dict() if config is not None else None,
        "metrics": registry.as_dict(),
        "summary": summary_block(session),
        "extra": extra or {},
    }


def write_metrics_json(
    path: str,
    registry: MetricsRegistry,
    config: Optional[ObsConfig] = None,
    extra: Optional[Dict[str, object]] = None,
    session: Optional["ObsSession"] = None,
) -> None:
    """Dump a registry (plus headline extras) as one JSON document.

    Passing the owning *session* adds the ``summary`` data-loss block.
    The write is crash-atomic (same-directory temp file + rename): a
    kill mid-export never leaves a torn metrics file behind.
    """
    text = json.dumps(
        metrics_payload(registry, config, extra, session),
        indent=2,
        sort_keys=True,
    )
    atomic_write_text(path, text + "\n")


def write_trace_jsonl(path: str, tracer: EventTracer) -> int:
    """Dump the tracer ring buffer as JSONL; returns lines written.

    Crash-atomic like :func:`write_metrics_json`.
    """
    lines = list(tracer.to_jsonl())
    atomic_write_text(path, "".join(line + "\n" for line in lines))
    return len(lines)
