"""CLI entry: ``python -m repro.harness [experiment ...]``.

Runs the requested experiments (default: all) and prints their reports.
Useful flags: ``--length`` to control trace size, ``--benchmarks`` to
restrict the roster.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import render_experiment
from repro.harness.runner import DEFAULT_TRACE_LENGTH, ExperimentContext
from repro.workloads.benchmarks import benchmark_names


def main(argv=None) -> int:
    """Parse arguments, run the selected experiments, print reports."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the Plutus paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default all): {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses per benchmark",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=benchmark_names(),
        help="restrict to a subset of the benchmark roster",
    )
    args = parser.parse_args(argv)

    selected = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    ctx = ExperimentContext(
        trace_length=args.length,
        seed=args.seed,
        benchmarks=args.benchmarks or benchmark_names(),
    )
    for key in selected:
        print(render_experiment(EXPERIMENTS[key](ctx)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
