"""The Plutus engine: all three bandwidth-saving ideas, independently
toggleable (paper Section IV).

1. *Value-based integrity verification* — a per-partition value cache
   verifies most read fills without touching MAC storage, and proves
   some writebacks verifiable-in-advance so their MAC write is skipped.
2. *Compact mirrored counters* — a miniature counter layer (with its own
   mini-BMT) in front of the split counters; only saturated/disabled
   regions fall back to the original layer.
3. *Fine-grained metadata* — counters and tree nodes are hashed and
   fetched at 32-byte granularity (``GranularityDesign.ALL_32``),
   eliminating PSSM's over-fetch at the cost of a taller tree.

Each toggle isolates one of the paper's ablation figures (15/16/17);
the default configuration is the full Plutus of Fig. 18. The
``eliminate_tree`` flag reproduces Fig. 20's MGX/TNPU-style comparison
where integrity-tree traffic is assumed away entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.bitops import split_values
from repro.mem.traffic import Stream, TrafficCounter
from repro.metadata.compact import (
    DESIGN_3BIT_ADAPTIVE,
    CompactCounterConfig,
    CompactCounterState,
    CounterRoute,
)
from repro.metadata.layout import GranularityDesign, MetadataLayout
from repro.metadata.bmt import BmtTraversal
from repro.secure.engine import (
    MetadataCacheConfig,
    MetadataEngine,
    PartitionEngine,
)
from repro.secure.value_cache import ValueCache, ValueCacheConfig

#: Sentinel returned by the key scan when a present image has the wrong
#: length; the batch hooks then fall back to the scalar replay, which
#: raises at exactly the event the scalar sequence would.
_MALFORMED = object()


class PlutusEngine(MetadataEngine):
    """Plutus secure-memory engine for one partition."""

    name = "plutus"

    def __init__(
        self,
        partition_id: int,
        data_sectors: int,
        traffic: TrafficCounter,
        mac_tag_bytes: int = 8,
        design: GranularityDesign = GranularityDesign.ALL_32,
        cache_config: MetadataCacheConfig = MetadataCacheConfig(),
        value_cache_config: Optional[ValueCacheConfig] = ValueCacheConfig(),
        compact_config: Optional[CompactCounterConfig] = DESIGN_3BIT_ADAPTIVE,
        lazy_update: bool = True,
        eliminate_tree: bool = False,
        counter_config=None,
    ) -> None:
        from repro.metadata.split_counter import SplitCounterConfig

        super().__init__(
            partition_id,
            data_sectors,
            traffic,
            design=design,
            mac_tag_bytes=mac_tag_bytes,
            cache_config=cache_config,
            lazy_update=lazy_update,
            counter_config=counter_config or SplitCounterConfig(),
        )
        self.tree_enabled = not eliminate_tree

        self.value_cache = (
            ValueCache(value_cache_config) if value_cache_config else None
        )

        self.compact: Optional[CompactCounterState] = None
        if compact_config is not None:
            self.compact = CompactCounterState(compact_config)
            # The mirror layer inherits the engine's fetch-granularity
            # design: in the paper's compact-only ablation (Fig. 17) the
            # baseline's 128 B blocks apply to the compact metadata too;
            # only idea #3 shrinks them to 32 B.
            self.compact_layout = MetadataLayout(
                data_sectors=data_sectors,
                design=design,
                sectors_per_counter_sector=compact_config.counters_per_block,
            )
            self.compact_cache = cache_config.build(f"cctr[{partition_id}]")
            self.compact_bmt_cache = cache_config.build(f"cbmt[{partition_id}]")
            self.compact_bmt = BmtTraversal(
                self.compact_layout.bmt_geometry(),
                self.compact_bmt_cache,
                traffic,
                read_stream=Stream.COMPACT_BMT_READ,
                write_stream=Stream.COMPACT_BMT_WRITE,
                lazy_update=lazy_update,
            )

    # -- tree gating (Fig. 20) -------------------------------------------------

    def _verify_tree(self, traversal: BmtTraversal, leaf: int) -> None:
        if self.tree_enabled:
            traversal.verify_leaf(leaf)

    def _update_tree(self, traversal: BmtTraversal, leaf: int) -> None:
        if self.tree_enabled:
            traversal.update_leaf(leaf)

    # MetadataEngine's counter paths call self.bmt directly; override the
    # drain hook and read path to honor the gate. The public
    # counter_read/counter_write stay MetadataEngine's span-instrumented
    # template methods.
    def _counter_read(self, sector_index: int) -> None:
        """Original-layer counter fetch, honoring the tree gate."""
        line, mask = self.layout.counter_location(sector_index)
        result = self.counter_cache.access(line, mask, write=False)
        if result.miss_mask:
            self.stats.counter_fetches += 1
            self.traffic.record(
                Stream.COUNTER_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
            self._verify_tree(self.bmt, self.layout.bmt_leaf_index(sector_index))
        self._drain_counter_evictions(result.evictions)

    def _counter_write(self, sector_index: int) -> None:
        """Original-layer counter bump, honoring the tree gate."""
        outcome = self.counters.increment(sector_index)
        if outcome.minor_overflowed:
            self._on_minor_overflow(outcome)
            if self.compact is not None:
                # All sectors sharing the bumped major must use the
                # original layer from now on (paper Section IV-D).
                self.compact.force_original(outcome.reencrypted_sectors)
        line, mask = self.layout.counter_location(sector_index)
        result = self.counter_cache.access(line, mask, write=True)
        if result.miss_mask:
            self.stats.counter_fetches += 1
            self.traffic.record(
                Stream.COUNTER_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
            self._verify_tree(self.bmt, self.layout.bmt_leaf_index(sector_index))
        self._drain_counter_evictions(result.evictions)

    def _drain_counter_evictions(self, evictions) -> None:
        sector_bytes = self.counter_cache.config.sector_bytes
        for ev in evictions:
            self.traffic.record(
                Stream.COUNTER_WRITE,
                ev.dirty_sector_count * sector_bytes,
                transactions=ev.dirty_sector_count,
            )
            leaves = set()
            for s in range(self.counter_cache.config.sectors_per_line):
                if (ev.dirty_mask >> s) & 1:
                    counter_sector = ev.line_addr // sector_bytes + s
                    leaves.add(self._leaf_of_counter_sector(counter_sector))
            if self.tree_enabled:
                self.bmt.update_leaves(leaves)

    # -- compact-counter layer ---------------------------------------------------

    def _compact_access(self, sector_index: int, write: bool) -> None:
        """Touch the sector's compact counter (fetch + verify on miss)."""
        line, mask = self.compact_layout.counter_location(sector_index)
        result = self.compact_cache.access(line, mask, write=write)
        if result.miss_mask:
            self.traffic.record(
                Stream.COMPACT_COUNTER_READ,
                result.miss_sector_count * self.compact_layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
            self._verify_tree(
                self.compact_bmt,
                self.compact_layout.bmt_leaf_index(sector_index),
            )
        self._drain_compact_evictions(result.evictions)

    def _compact_leaf_of_sector(self, counter_sector: int) -> int:
        if self.compact_layout.design is GranularityDesign.BLOCK_128:
            per_line = self.compact_layout.line_bytes // self.compact_layout.sector_bytes
            return counter_sector // per_line
        return counter_sector

    def _drain_compact_evictions(self, evictions) -> None:
        sector_bytes = self.compact_cache.config.sector_bytes
        for ev in evictions:
            self.traffic.record(
                Stream.COMPACT_COUNTER_WRITE,
                ev.dirty_sector_count * sector_bytes,
                transactions=ev.dirty_sector_count,
            )
            leaves = set()
            for s in range(self.compact_cache.config.sectors_per_line):
                if (ev.dirty_mask >> s) & 1:
                    counter_sector = ev.line_addr // sector_bytes + s
                    leaves.add(self._compact_leaf_of_sector(counter_sector))
            if self.tree_enabled:
                self.compact_bmt.update_leaves(leaves)

    def _counter_read_flow(self, sector_index: int) -> None:
        """Route a read's counter access through the mirror hierarchy."""
        if self.compact is None:
            self.counter_read(sector_index)
            return
        plan = self.compact.plan_read(sector_index)
        if plan.route is CounterRoute.COMPACT_ONLY:
            self.stats.compact_only_accesses += 1
            self._compact_access(sector_index, write=False)
        elif plan.route is CounterRoute.COMPACT_THEN_ORIGINAL:
            self.stats.compact_double_accesses += 1
            self._compact_access(sector_index, write=False)
            self.counter_read(sector_index)
        else:
            self.stats.original_only_accesses += 1
            self.counter_read(sector_index)

    def _counter_write_flow(self, sector_index: int) -> None:
        """Route a writeback's counter increment through the hierarchy."""
        if self.compact is None:
            self.counter_write(sector_index)
            return
        plan = self.compact.plan_write(sector_index)
        if plan.route is CounterRoute.COMPACT_ONLY:
            self.stats.compact_only_accesses += 1
            self._compact_access(sector_index, write=True)
        elif plan.route is CounterRoute.COMPACT_THEN_ORIGINAL:
            self.stats.compact_double_accesses += 1
            self._compact_access(sector_index, write=True)
            self.counter_write(sector_index)
        else:
            self.stats.original_only_accesses += 1
            self.counter_write(sector_index)
        if plan.disables_block:
            self.stats.compact_disable_events += 1
            if self.obs.enabled:
                self.obs.tracer.emit(
                    "compact.disable",
                    partition=self.partition_id,
                    block=self.compact.block_of(sector_index),
                    sector=sector_index,
                )
            self._sync_block_to_original(sector_index)

    def _sync_block_to_original(self, sector_index: int) -> None:
        """One-time copy of a disabled block's live counters to originals.

        With 2x compaction one compact block spans two original counter
        sectors; both are write-touched (fetch + verify on miss).
        """
        cpb = self.compact.config.counters_per_block
        block = self.compact.block_of(sector_index)
        first_data_sector = block * cpb
        step = self.layout.sectors_per_counter_sector
        for data_sector in range(first_data_sector, first_data_sector + cpb, step):
            if data_sector >= self.data_sectors:
                break
            line, mask = self.layout.counter_location(data_sector)
            result = self.counter_cache.access(line, mask, write=True)
            if result.miss_mask:
                self.traffic.record(
                    Stream.COUNTER_READ,
                    result.miss_sector_count * self.layout.sector_bytes,
                    transactions=result.miss_sector_count,
                )
                self._verify_tree(self.bmt, self.layout.bmt_leaf_index(data_sector))
            self._drain_counter_evictions(result.evictions)

    # -- request flows (paper Fig. 11) --------------------------------------------

    @staticmethod
    def _check_image(values: Optional[bytes]) -> None:
        if values is not None and len(values) != 32:
            raise ValueError(
                f"sector image must be 32 bytes, got {len(values)}"
            )

    def on_fill(self, sector_index: int, values: Optional[bytes]) -> None:
        """Read miss: counter via mirror layer, then value-check or MAC."""
        self._check_image(values)
        self.stats.fills += 1
        self._counter_read_flow(sector_index)

        if self.value_cache is None or values is None:
            self.mac_read(sector_index)
            return

        sector_values = split_values(values, 4)
        if self.value_cache.verify_sector(sector_values):
            self.stats.value_verified_fills += 1
            self.stats.mac_fetches_avoided += 1
        else:
            self.stats.value_check_failures += 1
            self.mac_read(sector_index)
        self.value_cache.observe_many(sector_values)

    def on_writeback(self, sector_index: int, values: Optional[bytes]) -> None:
        """Dirty eviction: counter bump via mirror layer; MAC if needed."""
        self._check_image(values)
        self.stats.writebacks += 1
        self._counter_write_flow(sector_index)

        if self.value_cache is None or values is None:
            self.mac_write(sector_index)
            return

        sector_values = split_values(values, 4)
        self.value_cache.observe_many(sector_values)
        if self.value_cache.write_verifiable(sector_values):
            # Guaranteed to value-verify at next read: the MAC update is
            # skipped entirely (paper Fig. 11, write path).
            self.stats.mac_writes_avoided += 1
        else:
            self.mac_write(sector_index)

    def warm_counters(self, sector_index: int) -> None:
        """Pre-window write: advance both counter layers silently."""
        outcome = self.counters.increment(sector_index)
        if self.compact is not None:
            self.compact.plan_write(sector_index)
            if outcome.minor_overflowed:
                self.compact.force_original(outcome.reencrypted_sectors)

    # -- batch hooks (columnar path) ----------------------------------------
    #
    # A Plutus event touches up to four disjoint structures — the compact
    # layer (compact cache + mini BMT), the original layer (counter cache
    # + BMT + split counters), the value cache, and the MAC cache — so a
    # run splits into a counter phase, an in-order value phase, and a MAC
    # phase over the events the value cache could not cover. Only the
    # write flow needs care: compact routing decisions and value-cache
    # probes are order-dependent, so both replay per event while the
    # cache accesses around them compress into same-location runs.

    batch_native = True

    def _verify_counter_tree(self, leaf_index: int) -> None:
        """Original-tree walk for the shared batch helpers, gated."""
        if self.tree_enabled:
            self.bmt.verify_leaf(leaf_index)

    def _batch_value_keys(self, values, n: int):
        """Masked value-cache keys per event (None = no image).

        The fixed-width fast path reads the whole run's payload matrix
        as little-endian u32 words and masks all of them with one numpy
        AND — byte-identical to per-value ``split_values`` + ``_key``
        because both decode little-endian and the combined range+low
        mask is a single constant. Returns ``_MALFORMED`` when a present
        image has the wrong length (caller falls back to scalar).
        """
        vc = self.value_cache
        u32_matrix = getattr(values, "u32_matrix", None)
        if u32_matrix is not None:
            matrix = u32_matrix()
            if matrix is not None:
                # Fixed 32-byte payload column: lengths are valid by
                # construction.
                if vc is None:
                    return [None] * n
                cfg = vc.config
                shift_mask = ((1 << cfg.value_bits) - 1) & ~(
                    (1 << cfg.mask_bits) - 1
                )
                words, present = matrix
                keys = (words & np.uint32(shift_mask)).tolist()
                present_l = present.tolist()
                return [
                    keys[i] if present_l[i] else None for i in range(n)
                ]
        mask_keys = vc.mask_keys if vc is not None else None
        out: List = []
        append = out.append
        for image in values:
            if image is None:
                append(None)
            elif len(image) != 32:
                return _MALFORMED
            elif mask_keys is None:
                append(None)  # valid image; keys unused without a cache
            else:
                append(mask_keys(split_values(image, 4)))
        return out

    def _batch_compact_accesses(self, sectors: np.ndarray, write: bool) -> None:
        """Compact-layer phase of a batched run (fetch + verify on miss)."""
        if sectors.size == 0:
            return
        layout = self.compact_layout
        lines, masks = layout.counter_locations(sectors)
        leaves = layout.bmt_leaf_indices(sectors)
        bounds = self._run_bounds(lines, masks)
        lines_l = lines.tolist()
        masks_l = masks.tolist()
        leaves_l = leaves.tolist()
        access_run = self.compact_cache.access_run_raw
        drain = self._drain_compact_evictions
        miss_sectors = 0
        for j in range(len(bounds) - 1):
            a = bounds[j]
            miss_mask, miss_count, evictions = access_run(
                lines_l[a], masks_l[a], write, bounds[j + 1] - a
            )
            if miss_mask:
                miss_sectors += miss_count
                self._verify_tree(self.compact_bmt, leaves_l[a])
            if evictions:
                drain(evictions)
        if miss_sectors:
            self.traffic.record(
                Stream.COMPACT_COUNTER_READ,
                miss_sectors * layout.sector_bytes,
                transactions=miss_sectors,
            )

    def _batch_counter_write_flow(self, sectors: np.ndarray) -> None:
        """Batched mirror-hierarchy counter increments (write path).

        Routing decisions (``plan_write_code``), split-counter
        increments, overflow re-encryptions, and adaptive disables all
        replay strictly per event — their side effects feed the very
        next routing decision. Only the cache accesses compress: each
        layer keeps one pending same-location run, flushed when the
        location changes or when a disable's synchronization is about to
        touch the original counter cache mid-run.
        """
        if sectors.size == 0:
            return
        o_lines, o_masks = self.layout.counter_locations(sectors)
        o_leaves = self.layout.bmt_leaf_indices(sectors)
        c_lines, c_masks = self.compact_layout.counter_locations(sectors)
        c_leaves = self.compact_layout.bmt_leaf_indices(sectors)
        sec_l = sectors.tolist()
        o_lines_l = o_lines.tolist()
        o_masks_l = o_masks.tolist()
        o_leaves_l = o_leaves.tolist()
        c_lines_l = c_lines.tolist()
        c_masks_l = c_masks.tolist()
        c_leaves_l = c_leaves.tolist()

        plan_write = self.compact.plan_write_code
        increment = self.counters.increment_fast
        c_access_run = self.compact_cache.access_run_raw
        o_access_run = self.counter_cache.access_run_raw

        compact_only = double = original_only = 0
        o_fetches = o_miss = c_miss = 0
        cp = op = -1  # start index of each layer's pending run
        cp_count = op_count = 0

        def flush_compact() -> None:
            nonlocal cp, cp_count, c_miss
            miss_mask, miss_count, evictions = c_access_run(
                c_lines_l[cp], c_masks_l[cp], True, cp_count
            )
            if miss_mask:
                c_miss += miss_count
                self._verify_tree(self.compact_bmt, c_leaves_l[cp])
            if evictions:
                self._drain_compact_evictions(evictions)
            cp = -1
            cp_count = 0

        def flush_original() -> None:
            nonlocal op, op_count, o_fetches, o_miss
            miss_mask, miss_count, evictions = o_access_run(
                o_lines_l[op], o_masks_l[op], True, op_count
            )
            if miss_mask:
                o_fetches += 1
                o_miss += miss_count
                self._verify_tree(self.bmt, o_leaves_l[op])
            if evictions:
                self._drain_counter_evictions(evictions)
            op = -1
            op_count = 0

        for i, s in enumerate(sec_l):
            code = plan_write(s)
            route = code & 7
            if route != 2:
                if (
                    cp >= 0
                    and c_lines_l[cp] == c_lines_l[i]
                    and c_masks_l[cp] == c_masks_l[i]
                ):
                    cp_count += 1
                else:
                    if cp >= 0:
                        flush_compact()
                    cp = i
                    cp_count = 1
                if route == 0:
                    compact_only += 1
                else:
                    double += 1
            else:
                original_only += 1
            if route != 0:
                affected = increment(s)
                if affected is not None:
                    self._reencrypt_group(affected)
                    self.compact.force_original(affected)
                if (
                    op >= 0
                    and o_lines_l[op] == o_lines_l[i]
                    and o_masks_l[op] == o_masks_l[i]
                ):
                    op_count += 1
                else:
                    if op >= 0:
                        flush_original()
                    op = i
                    op_count = 1
            if code & 8:
                self.stats.compact_disable_events += 1
                if self.obs.enabled:
                    self.obs.tracer.emit(
                        "compact.disable",
                        partition=self.partition_id,
                        block=self.compact.block_of(s),
                        sector=s,
                    )
                # The sync write-touches the original counter cache, so
                # the pending original run must land first (and the next
                # one starts fresh — the sync may evict its line).
                if op >= 0:
                    flush_original()
                self._sync_block_to_original(s)
        if cp >= 0:
            flush_compact()
        if op >= 0:
            flush_original()

        self.stats.compact_only_accesses += compact_only
        self.stats.compact_double_accesses += double
        self.stats.original_only_accesses += original_only
        if c_miss:
            self.traffic.record(
                Stream.COMPACT_COUNTER_READ,
                c_miss * self.compact_layout.sector_bytes,
                transactions=c_miss,
            )
        if o_fetches:
            self.stats.counter_fetches += o_fetches
            self.traffic.record(
                Stream.COUNTER_READ,
                o_miss * self.layout.sector_bytes,
                transactions=o_miss,
            )

    def on_fill_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        n = int(sectors.size)
        keys_list = self._batch_value_keys(values, n)
        if keys_list is _MALFORMED:
            PartitionEngine.on_fill_batch(self, sectors.tolist(), values)
            return
        self.stats.fills += n

        # Counter phase: plan_read is pure and nothing in a fill run
        # mutates compact state, so all routes are decided up front.
        if self.compact is None:
            self._batch_counter_reads(sectors)
        else:
            codes = self.compact.plan_read_codes(sectors.tolist())
            if codes is None:
                self.stats.compact_only_accesses += n
                self._batch_compact_accesses(sectors, write=False)
            else:
                codes_arr = np.asarray(codes, dtype=np.int8)
                n_original_only = int(np.count_nonzero(codes_arr == 2))
                n_double = int(np.count_nonzero(codes_arr == 1))
                self.stats.compact_only_accesses += (
                    n - n_original_only - n_double
                )
                self.stats.compact_double_accesses += n_double
                self.stats.original_only_accesses += n_original_only
                compact_rows = codes_arr != 2
                if compact_rows.any():
                    self._batch_compact_accesses(
                        sectors[compact_rows], write=False
                    )
                original_rows = codes_arr != 0
                if original_rows.any():
                    self._batch_counter_reads(sectors[original_rows])

        # Value phase: per-event, in order — every probe reshapes the
        # cache the next event sees. MAC fetches for uncovered events
        # defer to one batched MAC phase (disjoint state).
        if self.value_cache is None:
            self._batch_mac_reads(sectors)
            return
        vc = self.value_cache
        mac_rows = np.zeros(n, dtype=bool)
        verified = failures = 0
        for i, keys in enumerate(keys_list):
            if keys is None:
                mac_rows[i] = True
                continue
            if vc.verify_keys(keys):
                verified += 1
            else:
                failures += 1
                mac_rows[i] = True
            vc.observe_keys(keys)
        self.stats.value_verified_fills += verified
        self.stats.mac_fetches_avoided += verified
        self.stats.value_check_failures += failures
        if mac_rows.any():
            self._batch_mac_reads(sectors[mac_rows])

    def on_writeback_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        n = int(sectors.size)
        keys_list = self._batch_value_keys(values, n)
        if keys_list is _MALFORMED:
            PartitionEngine.on_writeback_batch(self, sectors.tolist(), values)
            return
        self.stats.writebacks += n

        if self.compact is None:
            self._batch_counter_writes(sectors)
        else:
            self._batch_counter_write_flow(sectors)

        if self.value_cache is None:
            self._batch_mac_writes(sectors)
            return
        vc = self.value_cache
        mac_rows = np.zeros(n, dtype=bool)
        avoided = 0
        for i, keys in enumerate(keys_list):
            if keys is None:
                mac_rows[i] = True
                continue
            vc.observe_keys(keys)
            if vc.write_verifiable_keys(keys):
                avoided += 1
            else:
                mac_rows[i] = True
        self.stats.mac_writes_avoided += avoided
        if mac_rows.any():
            self._batch_mac_writes(sectors[mac_rows])

    def warm_counters_batch(self, sector_indices, passes: int = 1) -> None:
        """Vectorized two-layer warmup.

        Bulk application needs *both* layers order-free: no minor
        overflow (whose force_original would redirect later compact
        plans) and no compact saturation crossing. Otherwise the exact
        scalar interleaving replays.
        """
        if self.compact is None:
            MetadataEngine.warm_counters_batch(self, sector_indices, passes)
            return
        if passes <= 0:
            return
        sectors = np.asarray(sector_indices, dtype=np.int64)
        if sectors.size == 0:
            return
        if int(sectors.min()) < 0:
            PartitionEngine.warm_counters_batch(
                self, sectors.tolist(), passes
            )
            return
        uniq, counts = np.unique(sectors, return_counts=True)
        uniq_l = uniq.tolist()
        totals = (counts * int(passes)).tolist()
        if self.counters.bulk_increment_safe(
            uniq_l, totals
        ) and self.compact.bulk_writes_safe(uniq_l, totals):
            self.counters.bulk_increment(uniq_l, totals)
            self.compact.bulk_writes(uniq_l, totals)
            return
        increment = self.counters.increment_fast
        plan_write = self.compact.plan_write_code
        force = self.compact.force_original
        sec_l = sectors.tolist()
        for _ in range(passes):
            for s in sec_l:
                affected = increment(s)
                plan_write(s)
                if affected is not None:
                    force(affected)

    def _state_summary(self) -> List:
        summary = super()._state_summary()
        if self.value_cache is not None:
            summary.append(self.value_cache.state_summary())
        if self.compact is not None:
            summary.append(self.compact.state_summary())
            summary.append(self.compact_cache.state_summary())
            summary.append(self.compact_bmt_cache.state_summary())
            summary.append(self.compact_bmt.root_verifications)
        return summary

    def finalize(self) -> None:
        """Drain dirty metadata in both layers at kernel end."""
        super().finalize()
        if self.compact is not None:
            self._drain_compact_evictions(self.compact_cache.flush())
            if self.tree_enabled:
                self.compact_bmt.flush()

    def obs_snapshot(self) -> Dict[str, int]:
        """Add value-cache and mirror-layer quantities to the shared set."""
        snap = super().obs_snapshot()
        snap.update(
            value_verified_fills=self.stats.value_verified_fills,
            value_check_failures=self.stats.value_check_failures,
            mac_fetches_avoided=self.stats.mac_fetches_avoided,
            mac_writes_avoided=self.stats.mac_writes_avoided,
            compact_only_accesses=self.stats.compact_only_accesses,
            compact_double_accesses=self.stats.compact_double_accesses,
            original_only_accesses=self.stats.original_only_accesses,
            compact_disable_events=self.stats.compact_disable_events,
        )
        if self.value_cache is not None:
            snap["value_probes"] = self.value_cache.stats.probes
            snap["value_hits"] = self.value_cache.stats.hits
            snap["value_pinned_hits"] = self.value_cache.stats.pinned_hits
        return snap
