"""The distributed campaign coordinator: workers, stealing, speculation.

:class:`DistributedSupervisor` is a drop-in for the serial
:class:`~repro.resilience.supervisor.Supervisor` — same ``run(campaign)
-> CampaignOutcome`` contract, same journal, same exit semantics — that
executes the campaign's units on N worker *subprocesses* pulling from a
shared on-disk :class:`~repro.resilience.queue.WorkQueue`:

* **campaign factory spec** — worker processes cannot unpickle runner
  closures, so the coordinator writes ``campaign.json`` naming an
  importable factory (``"module:function"``) plus JSON kwargs; every
  worker rebuilds the campaign and refuses a fingerprint mismatch.
  Unit ids are content-addressed, so a faithful rebuild makes results
  from any process interchangeable;
* **dead-worker detection** — lease heartbeats go stale (peers steal
  the unit) and the coordinator polls its children, feeding deaths
  into the existing failure taxonomy (a dead worker is a ``crash``, a
  stolen stale lease a presumed ``timeout``) and respawning bounded
  replacements with a bumped chaos incarnation;
* **straggler speculation** — once enough units finished to establish
  a running median wall-time, an in-flight unit older than ``k x``
  that median gets a speculation request; one peer duplicates it and
  the first done marker wins, the loser records a ``spec-loss``;
* **deterministic journal merge** — per-worker journals are merged
  into the campaign journal in campaign unit order, deduplicated by
  unit id (done-marker winner first, then smallest worker id), so the
  merged journal — and therefore the report and any later
  ``--resume``, at *any* worker count — is byte-identical to what the
  serial supervisor would have produced.

The merge runs again at the *start* of a run, so a coordinator killed
after its workers completed units but before it merged them recovers
every journaled result on ``--resume`` without re-executing anything.
"""

from __future__ import annotations

import importlib
import json
import os
import statistics
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.atomicio import atomic_write_text
from repro.common.errors import ResilienceError
from repro.obs import active
from repro.resilience.budget import BudgetGuard, ResourceBudget
from repro.resilience.chaos import WorkerChaosConfig
from repro.resilience.journal import RunJournal
from repro.resilience.policy import FailureClass, RetryPolicy
from repro.resilience.queue import WorkQueue
from repro.resilience.supervisor import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CampaignOutcome,
    UnitOutcome,
)
from repro.resilience.telemetry import rollup
from repro.resilience.units import Campaign, WorkUnit
from repro.resilience.worker import CAMPAIGN_SPEC_NAME, WORKERS_DIR

#: Stable degradation reason when every worker died with work pending.
REASON_WORKERS_EXHAUSTED = "worker pool exhausted"


# -- campaign factory specs ---------------------------------------------------


def factory_spec(
    factory: str, kwargs: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """A JSON-able campaign factory reference for ``campaign.json``."""
    if ":" not in factory:
        raise ResilienceError(
            f"campaign factory must be 'module:function', got {factory!r}"
        )
    return {"factory": factory, "kwargs": dict(kwargs or {})}


def build_campaign(spec: Dict[str, object]) -> Campaign:
    """Import and invoke a factory spec; validate the fingerprint.

    The fingerprint check is what guards distributed execution against
    a non-reproducible factory: if the rebuild differs from what the
    coordinator journaled, executing it would journal results under
    the wrong identities.
    """
    factory = spec.get("factory")
    if not isinstance(factory, str) or ":" not in factory:
        raise ResilienceError(f"malformed campaign spec: {spec!r}")
    module_name, _, func_name = factory.partition(":")
    try:
        module = importlib.import_module(module_name)
        func = getattr(module, func_name)
    except (ImportError, AttributeError) as exc:
        raise ResilienceError(
            f"cannot resolve campaign factory {factory!r}: {exc}"
        ) from None
    kwargs = spec.get("kwargs")
    campaign = func(**kwargs) if isinstance(kwargs, dict) else func()
    if not isinstance(campaign, Campaign):
        raise ResilienceError(
            f"campaign factory {factory!r} returned "
            f"{type(campaign).__name__}, not a Campaign"
        )
    expected = spec.get("fingerprint")
    if expected is not None and campaign.fingerprint != expected:
        raise ResilienceError(
            f"campaign factory {factory!r} rebuilt fingerprint "
            f"{campaign.fingerprint!r}, expected {expected!r} — the "
            "factory is not reproducible across processes"
        )
    return campaign


def write_campaign_spec(
    run_dir: Path, spec: Dict[str, object], campaign: Campaign
) -> None:
    """Publish the factory spec workers rebuild the campaign from."""
    payload = dict(spec)
    payload["fingerprint"] = campaign.fingerprint
    payload["name"] = campaign.name
    atomic_write_text(
        run_dir / CAMPAIGN_SPEC_NAME,
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )


def demo_campaign(
    values: Sequence[int],
    sleep_map: Optional[Dict[str, float]] = None,
    fail_values: Optional[Sequence[int]] = None,
) -> Campaign:
    """A tiny arithmetic campaign for self-tests and docs examples.

    Deterministic and dependency-free: each unit squares one value,
    optionally sleeping first (``sleep_map`` keys are stringified
    values — JSON object keys are strings) or failing deterministically
    (``fail_values``). This is the reference workload for exercising
    the lease/steal/speculation machinery without simulator cost.
    """
    sleeps = sleep_map or {}
    failures = set(fail_values or ())

    def runner_for(value: int):
        def run() -> Dict[str, object]:
            delay = sleeps.get(str(value))
            if delay:
                time.sleep(float(delay))
            if value in failures:
                raise ResilienceError(f"demo unit {value} always fails")
            return {"value": value, "square": value * value}

        return run

    units = [
        WorkUnit(
            kind="demo",
            params={"value": value},
            runner=runner_for(value),
            label=f"demo[{value}]",
        )
        for value in values
    ]
    return Campaign(name="demo", units=units)


# -- deterministic journal merge ----------------------------------------------


def merge_records(
    campaign: Campaign,
    worker_records: Dict[str, List[Dict[str, object]]],
    winners: Optional[Dict[str, str]] = None,
) -> List[Dict[str, object]]:
    """Pick one unit record per completed unit, in campaign unit order.

    Deterministic in the *set* of records, not their arrival order:
    per (unit, worker) an ``ok`` record is sticky; per unit, ``ok``
    records beat ``failed`` ones; ties break to the done-marker winner
    (*winners*, unit id -> worker) and then to the smallest worker id.
    Duplicates from stealing or speculation carry identical payloads
    (runners are deterministic), so any choice yields the same report —
    the tie-break only pins the merged journal's provenance fields.
    """
    per_unit: Dict[str, Dict[str, Dict[str, object]]] = {}
    for worker in sorted(worker_records):
        for record in worker_records[worker]:
            if record.get("type") != "unit":
                continue
            unit_id = record.get("unit_id")
            if not isinstance(unit_id, str):
                continue
            slot = per_unit.setdefault(unit_id, {})
            prior = slot.get(worker)
            if (
                prior is not None
                and prior.get("status") == "ok"
                and record.get("status") != "ok"
            ):
                continue  # ok is sticky within one worker's journal
            slot[worker] = record
    chosen: List[Dict[str, object]] = []
    for unit in campaign.units:
        slot = per_unit.get(unit.unit_id)
        if not slot:
            continue
        oks = {
            worker: record
            for worker, record in slot.items()
            if record.get("status") == "ok"
        }
        pool = oks or slot
        winner = (winners or {}).get(unit.unit_id)
        record = pool[winner] if winner in pool else pool[min(pool)]
        chosen.append(record)
    return chosen


def read_worker_journals(
    run_dir: Path, fingerprint: Optional[str] = None
) -> Dict[str, List[Dict[str, object]]]:
    """All per-worker journal records under ``<run_dir>/workers/``.

    Journals whose run header names a different campaign fingerprint
    are skipped (a reused run directory must not leak foreign results).
    Torn tails are tolerated per journal, exactly like resume.
    """
    out: Dict[str, List[Dict[str, object]]] = {}
    workers_dir = run_dir / WORKERS_DIR
    if not workers_dir.is_dir():
        return out
    for journal_file in sorted(workers_dir.glob("*/journal.jsonl")):
        worker_id = journal_file.parent.name
        records = RunJournal(journal_file, worker_id).records()
        if fingerprint is not None:
            header = records[0] if records else {}
            if header.get("fingerprint") != fingerprint:
                continue
        out[worker_id] = records
    return out


# -- the coordinator ----------------------------------------------------------


@dataclass(frozen=True)
class DistributedConfig:
    """Knobs of one distributed run; validated on construction."""

    workers: int = 2
    lease_ttl_s: float = 5.0
    #: Lease heartbeat interval; default ``lease_ttl_s / 3``.
    heartbeat_s: Optional[float] = None
    speculate: bool = False
    #: An in-flight unit older than ``factor x`` the running median
    #: completed wall-time gets a speculative duplicate.
    speculate_factor: float = 3.0
    #: Completed units required before the median is trusted.
    speculate_min_done: int = 3
    #: Coordinator monitor-loop poll interval.
    poll_s: float = 0.05
    #: Worker idle poll when nothing is claimable.
    worker_poll_s: float = 0.1
    #: Total respawn budget across all workers; default ``workers * 3``.
    max_respawns: Optional[int] = None
    #: Grace period for workers to drain and exit before SIGKILL.
    shutdown_grace_s: float = 20.0
    #: Unit-attempt chaos inside workers (seed; None = off).
    chaos_seed: Optional[int] = None
    #: Worker-process chaos (kill -9 / freeze); None = off.
    worker_chaos: Optional[WorkerChaosConfig] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ResilienceError("workers must be >= 1")
        if self.lease_ttl_s <= 0:
            raise ResilienceError("lease_ttl_s must be positive")
        if self.speculate_factor <= 1.0:
            raise ResilienceError("speculate_factor must be > 1")

    @property
    def effective_heartbeat_s(self) -> float:
        if self.heartbeat_s is not None:
            return self.heartbeat_s
        return max(0.05, self.lease_ttl_s / 3.0)

    @property
    def respawn_budget(self) -> int:
        if self.max_respawns is not None:
            return self.max_respawns
        return self.workers * 3


@dataclass
class _WorkerProc:
    worker_id: str
    index: int
    incarnation: int
    proc: "subprocess.Popen[bytes]"


class DistributedSupervisor:
    """Runs campaigns on a fleet of worker subprocesses; see module doc."""

    def __init__(
        self,
        config: DistributedConfig,
        spec: Dict[str, object],
        journal: RunJournal,
        policy: Optional[RetryPolicy] = None,
        budget: Optional[ResourceBudget] = None,
        cache_dir: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if journal is None:
            raise ResilienceError(
                "distributed execution requires a run journal "
                "(--run-dir must not be empty)"
            )
        self.config = config
        self.spec = spec
        self.journal = journal
        self.policy = policy if policy is not None else RetryPolicy()
        self.budget = budget if budget is not None else ResourceBudget()
        self.cache_dir = cache_dir
        self.clock = clock
        self.sleep = sleep
        #: Fleet accounting for telemetry and status.
        self.spawned = 0
        self.deaths = 0
        self.respawns = 0
        self.steals = 0
        self.speculations = 0

    # -- public contract -----------------------------------------------------

    def run(self, campaign: Campaign) -> CampaignOutcome:
        session = active()
        registry = session.registry
        tracer = session.tracer
        run_dir = self.journal.path.parent
        guard = BudgetGuard(self.budget, clock=self.clock)
        guard.start()
        outcome = CampaignOutcome(
            campaign=campaign.name,
            fingerprint=campaign.fingerprint,
            run_id=self.journal.run_id,
        )
        # Recover results a killed coordinator never merged: the merge
        # is idempotent, so running it before reading the skip set
        # makes --resume reuse every journaled unit, not just the ones
        # the previous coordinator got around to merging.
        self._merge(campaign, run_dir, registry)
        completed = self.journal.completed()
        pending = [
            unit.unit_id
            for unit in campaign.units
            if unit.unit_id not in completed
        ]
        tracer.emit(
            "resilience.run",
            campaign=campaign.name,
            units=len(campaign.units),
            resumed=len(completed),
            workers=self.config.workers,
        )
        try:
            if pending:
                queue = WorkQueue(
                    run_dir / "queue", default_ttl_s=self.config.lease_ttl_s
                )
                labels = {
                    unit.unit_id: unit.label for unit in campaign.units
                }
                queue.populate(pending, labels=labels)
                write_campaign_spec(run_dir, self.spec, campaign)
                self._run_fleet(
                    queue, pending, guard, outcome, run_dir, registry,
                    tracer,
                )
                self._merge(campaign, run_dir, registry)
        finally:
            guard.stop()
        self._finalize(campaign, completed, outcome, guard, registry, tracer)
        self._clear_pins()
        return outcome

    def _clear_pins(self) -> None:
        """Drop this run's in-flight artifact pins now that it ended.

        Workers pin as ``run-<run_id>-<worker>``; once the campaign is
        journaled those artifacts no longer need shielding from
        ``cache gc``. Best-effort: a coordinator killed before this
        leaves pins behind, and the next completed run of the same id
        clears them.
        """
        from repro.harness.diskcache import DiskCache

        cache = DiskCache.from_spec(self.cache_dir)
        if cache is not None:
            cache.clear_pins(f"run-{self.journal.run_id}-")

    # -- fleet lifecycle -----------------------------------------------------

    def _spawn(
        self, run_dir: Path, worker_id: str, index: int, incarnation: int
    ) -> _WorkerProc:
        cfg = self.config
        cmd = [
            sys.executable, "-m", "repro.resilience.worker",
            "--run", str(run_dir),
            "--worker-id", worker_id,
            "--worker-index", str(index),
            "--incarnation", str(incarnation),
            "--lease-ttl", str(cfg.lease_ttl_s),
            "--heartbeat", str(cfg.effective_heartbeat_s),
            "--poll", str(cfg.worker_poll_s),
            "--retries", str(self.policy.max_attempts),
            "--backoff", str(self.policy.base_delay_s),
        ]
        if self.budget.unit_timeout_s is not None:
            cmd += ["--unit-timeout", str(self.budget.unit_timeout_s)]
        if cfg.chaos_seed is not None:
            cmd += ["--chaos", "--chaos-seed", str(cfg.chaos_seed)]
        if cfg.worker_chaos is not None:
            chaos = cfg.worker_chaos
            cmd += [
                "--chaos-workers",
                "--chaos-seed", str(chaos.seed),
                "--worker-kill-prob", str(chaos.kill_prob),
                "--worker-freeze-prob", str(chaos.freeze_prob),
                "--worker-freeze-s", str(chaos.freeze_s),
            ]
        if self.cache_dir is not None:
            cmd += ["--cache-dir", self.cache_dir]
        workers_dir = run_dir / WORKERS_DIR
        workers_dir.mkdir(parents=True, exist_ok=True)
        env = os.environ.copy()
        package_root = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH")
        if not existing:
            env["PYTHONPATH"] = package_root
        elif package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_root + os.pathsep + existing
        log_path = workers_dir / f"{worker_id}.log"
        with log_path.open("ab") as log:
            proc = subprocess.Popen(
                cmd, stdout=log, stderr=log, env=env
            )
        self.spawned += 1
        return _WorkerProc(
            worker_id=worker_id,
            index=index,
            incarnation=incarnation,
            proc=proc,
        )

    def _run_fleet(
        self,
        queue: WorkQueue,
        pending: Sequence[str],
        guard: BudgetGuard,
        outcome: CampaignOutcome,
        run_dir: Path,
        registry,
        tracer,
    ) -> None:
        cfg = self.config
        fleet: Dict[str, _WorkerProc] = {}
        for index in range(cfg.workers):
            worker_id = f"w{index}"
            fleet[worker_id] = self._spawn(run_dir, worker_id, index, 0)
            registry.counter("resilience.worker.spawned").inc()
            tracer.emit("resilience.worker_spawn", worker=worker_id)
        respawns_left = cfg.respawn_budget
        speculated: set = set()
        try:
            while True:
                if queue.all_done(pending):
                    break
                reason = guard.exceeded()
                if reason is not None:
                    self._degrade(outcome, reason, registry, tracer)
                    break
                for worker_id, entry in list(fleet.items()):
                    code = entry.proc.poll()
                    if code is None:
                        continue
                    del fleet[worker_id]
                    if code == 0 and queue.all_done(pending):
                        continue
                    # Heartbeat staleness already lets peers steal the
                    # dead worker's unit; here the death itself feeds
                    # the failure taxonomy and the respawn budget.
                    self.deaths += 1
                    registry.counter("resilience.worker.deaths").inc()
                    registry.counter(
                        f"resilience.failures.{FailureClass.CRASH.value}"
                    ).inc()
                    tracer.emit(
                        "resilience.worker_death",
                        worker=worker_id,
                        returncode=code,
                    )
                    if respawns_left > 0 and not queue.all_done(pending):
                        respawns_left -= 1
                        self.respawns += 1
                        incarnation = entry.incarnation + 1
                        fleet[worker_id] = self._spawn(
                            run_dir, worker_id, entry.index, incarnation
                        )
                        registry.counter(
                            "resilience.worker.respawns"
                        ).inc()
                        tracer.emit(
                            "resilience.worker_spawn",
                            worker=worker_id,
                            incarnation=incarnation,
                        )
                if not fleet:
                    if queue.all_done(pending):
                        break
                    self._degrade(
                        outcome, REASON_WORKERS_EXHAUSTED, registry, tracer
                    )
                    break
                if cfg.speculate:
                    self._speculate(queue, speculated, registry, tracer)
                registry.gauge("resilience.worker.active").set(
                    float(len(fleet))
                )
                self.sleep(cfg.poll_s)
        finally:
            self._shutdown(fleet, degraded=outcome.degraded is not None)
            registry.gauge("resilience.worker.active").set(0.0)

    def _speculate(
        self, queue: WorkQueue, speculated: set, registry, tracer
    ) -> None:
        cfg = self.config
        durations = []
        for unit_id in queue.done_ids():
            info = queue.done_info(unit_id) or {}
            elapsed = info.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                durations.append(float(elapsed))
        if len(durations) < cfg.speculate_min_done:
            return
        threshold = cfg.speculate_factor * max(
            statistics.median(durations), 0.05
        )
        for lease in queue.live_leases():
            if lease["stale"] or lease["speculative"]:
                continue
            age = lease["age_s"]
            if not isinstance(age, (int, float)) or age <= threshold:
                continue
            key = (lease["unit_id"], lease["gen"])
            if key in speculated:
                continue
            if queue.request_speculation(lease["unit_id"], lease["gen"]):
                speculated.add(key)
                self.speculations += 1
                registry.counter("resilience.worker.speculations").inc()
                tracer.emit(
                    "resilience.speculate",
                    unit=str(lease["unit_id"])[:12],
                    gen=lease["gen"],
                    age_s=round(float(age), 3),
                )

    def _shutdown(
        self, fleet: Dict[str, _WorkerProc], degraded: bool
    ) -> None:
        grace = 0.0 if degraded else self.config.shutdown_grace_s
        deadline = self.clock() + grace
        for entry in fleet.values():
            while entry.proc.poll() is None and self.clock() < deadline:
                self.sleep(0.05)
            if entry.proc.poll() is None:
                entry.proc.kill()
                try:
                    entry.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass

    # -- merge and finalization ----------------------------------------------

    def _merge(self, campaign: Campaign, run_dir: Path, registry) -> int:
        """Fold per-worker journals into the campaign journal; idempotent."""
        worker_records = read_worker_journals(
            run_dir, fingerprint=campaign.fingerprint
        )
        if not worker_records:
            return 0
        queue = WorkQueue(run_dir / "queue")
        winners: Dict[str, str] = {}
        if queue.done_dir.is_dir():
            for unit_id in queue.done_ids():
                info = queue.done_info(unit_id) or {}
                worker = info.get("worker")
                if isinstance(worker, str):
                    winners[unit_id] = worker
        existing_ok = set()
        existing_any = set()
        for record in self.journal.records():
            if record.get("type") != "unit":
                continue
            unit_id = record.get("unit_id")
            existing_any.add(unit_id)
            if record.get("status") == "ok":
                existing_ok.add(unit_id)
        appended = 0
        for record in merge_records(campaign, worker_records, winners):
            unit_id = record.get("unit_id")
            if record.get("status") == "ok":
                if unit_id in existing_ok:
                    continue
                existing_ok.add(unit_id)
            elif unit_id in existing_any:
                continue
            existing_any.add(unit_id)
            self.journal.append_record(record)
            appended += 1
            gen = record.get("gen")
            if isinstance(gen, int) and gen > 1:
                if record.get("speculative"):
                    registry.counter(
                        "resilience.worker.speculation_wins"
                    ).inc()
                else:
                    self.steals += 1
                    registry.counter("resilience.worker.steals").inc()
                    # A steal means the previous holder's heartbeat
                    # went stale: a presumed hang, taxonomy-wise.
                    registry.counter(
                        f"resilience.failures.{FailureClass.TIMEOUT.value}"
                    ).inc()
        return appended

    def _degrade(self, outcome, reason, registry, tracer) -> None:
        if outcome.degraded is None:
            outcome.degraded = reason
            registry.counter("resilience.degraded").inc()
            tracer.emit("resilience.degraded", reason=reason)

    def _finalize(
        self,
        campaign: Campaign,
        skipped: Dict[str, Dict[str, object]],
        outcome: CampaignOutcome,
        guard: BudgetGuard,
        registry,
        tracer,
    ) -> None:
        latest: Dict[str, Dict[str, object]] = {}
        for record in self.journal.records():
            if record.get("type") != "unit":
                continue
            unit_id = record.get("unit_id")
            if not isinstance(unit_id, str):
                continue
            prior = latest.get(unit_id)
            if (
                prior is not None
                and prior.get("status") == "ok"
                and record.get("status") != "ok"
            ):
                continue
            latest[unit_id] = record
        for unit in campaign.units:
            if unit.unit_id in skipped:
                outcome.outcomes.append(
                    UnitOutcome(
                        unit_id=unit.unit_id,
                        kind=unit.kind,
                        label=unit.label,
                        status=STATUS_SKIPPED,
                        result=skipped[unit.unit_id].get("result"),
                    )
                )
                registry.counter("resilience.units_skipped").inc()
                continue
            record = latest.get(unit.unit_id)
            if record is None:
                outcome.outcomes.append(
                    UnitOutcome(
                        unit_id=unit.unit_id,
                        kind=unit.kind,
                        label=unit.label,
                        status=STATUS_CANCELLED,
                        error=outcome.degraded or REASON_WORKERS_EXHAUSTED,
                    )
                )
                registry.counter("resilience.units_cancelled").inc()
                continue
            status = (
                STATUS_OK if record.get("status") == "ok" else STATUS_FAILED
            )
            telemetry = record.get("telemetry")
            outcome.outcomes.append(
                UnitOutcome(
                    unit_id=unit.unit_id,
                    kind=unit.kind,
                    label=unit.label,
                    status=status,
                    attempts=int(record.get("attempts", 1) or 1),
                    failure_class=record.get("failure_class"),
                    error=record.get("error"),
                    elapsed_s=float(record.get("elapsed_s", 0.0) or 0.0),
                    result=record.get("result"),
                    telemetry=(
                        telemetry if isinstance(telemetry, dict) else None
                    ),
                )
            )
            registry.counter(
                "resilience.units_ok"
                if status == STATUS_OK
                else "resilience.units_failed"
            ).inc()
        if outcome.degraded is None and any(
            o.status == STATUS_CANCELLED for o in outcome.outcomes
        ):
            self._degrade(
                outcome, REASON_WORKERS_EXHAUSTED, registry, tracer
            )
        outcome.wall_s = guard.elapsed()
        registry.gauge("resilience.wall_seconds").set(outcome.wall_s)
        outcome.telemetry = rollup(u.telemetry for u in outcome.outcomes)
        for name, value in (
            ("spawned", self.spawned),
            ("deaths", self.deaths),
            ("respawns", self.respawns),
            ("steals", self.steals),
            ("speculations", self.speculations),
        ):
            registry.gauge(f"resilience.worker.{name}_total").set(
                float(value)
            )
        self.journal.record_end(
            "partial" if outcome.partial else "complete",
            reason=outcome.degraded,
            telemetry=outcome.telemetry,
        )
        tracer.emit(
            "resilience.end",
            campaign=campaign.name,
            status="partial" if outcome.partial else "complete",
            ok=outcome.count(STATUS_OK),
            skipped=outcome.count(STATUS_SKIPPED),
            failed=outcome.count(STATUS_FAILED),
            cancelled=outcome.count(STATUS_CANCELLED),
            workers=self.spawned,
            steals=self.steals,
            speculations=self.speculations,
        )
