"""Tests for value models and the reuse study."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream
from repro.workloads.values import (
    ValueModel,
    ValueModelConfig,
    ValueReuseStudy,
    study_trace_values,
)


def make_model(**kwargs):
    return ValueModel(ValueModelConfig(**kwargs), RngStream(11))


class TestValueModel:
    def test_image_shape(self):
        images = make_model().sector_images(10)
        assert len(images) == 10
        assert all(len(image) == 32 for image in images)

    def test_determinism(self):
        a = ValueModel(ValueModelConfig(), RngStream(3)).sector_images(20)
        b = ValueModel(ValueModelConfig(), RngStream(3)).sector_images(20)
        assert a == b

    def test_zero_reuse_gives_mostly_unique_values(self):
        model = make_model(sector_reuse=0.0, value_reuse=0.0)
        images = model.sector_images(100)
        values = {v for img in images for v in
                  [img[i:i+4] for i in range(0, 32, 4)]}
        assert len(values) > 700  # out of 800 draws

    def test_high_reuse_concentrates_values(self):
        model = make_model(sector_reuse=1.0, pool_size=32)
        images = model.sector_images(100)
        values = {v for img in images for v in
                  [img[i:i+4] for i in range(0, 32, 4)]}
        # Pool of 32 values, perturbed in the low nibble only.
        assert len(values) < 32 * 16

    def test_group_sizes_must_sum(self):
        with pytest.raises(ConfigurationError):
            make_model().sector_images(5, group_sizes=[2, 2])

    def test_grouped_reuse_is_correlated(self):
        """Sectors of one access share the reuse decision: whole
        accesses are either pooled or unique."""
        model = make_model(sector_reuse=0.5, value_reuse=0.0,
                           near_perturb=0.0, pool_size=16)
        images = model.sector_images(400, group_sizes=[4] * 100)
        pool = set()
        # Learn the pool from a big sample of pooled sectors.
        for img in images:
            for i in range(0, 32, 4):
                pool.add(img[i:i+4])
        groups_mixed = 0
        for g in range(100):
            sector_pooled = []
            for s in range(4):
                img = images[4 * g + s]
                vals = [img[i:i+4] for i in range(0, 32, 4)]
                # A pooled sector repeats pool values heavily; a unique
                # sector has 8 distinct fresh values.
                sector_pooled.append(len(set(vals)) < 8)
            if len(set(sector_pooled)) > 1:
                groups_mixed += 1
        # Correlation: most groups are uniformly pooled or uniformly not.
        assert groups_mixed < 30

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ValueModelConfig(sector_reuse=1.5)
        with pytest.raises(ConfigurationError):
            ValueModelConfig(pool_size=2)


class TestReuseStudy:
    def test_scenario_ordering(self):
        """Paper Fig. 9: masked >= halves >= full, always."""
        model = make_model(sector_reuse=0.5, near_perturb=0.5)
        study = ValueReuseStudy()
        for image in model.sector_images(2000):
            study.observe_sector(image)
        report = study.report()
        assert report["masked"] >= report["halves"] >= report["full"]

    def test_zero_locality_shows_no_reuse(self):
        model = make_model(sector_reuse=0.0, value_reuse=0.0)
        study = ValueReuseStudy()
        for image in model.sector_images(500):
            study.observe_sector(image)
        assert study.reuse_fraction("masked") < 0.05

    def test_total_locality_shows_high_reuse(self):
        model = make_model(sector_reuse=1.0, value_reuse=1.0,
                           near_perturb=0.0, pool_size=32)
        study = ValueReuseStudy()
        for image in model.sector_images(500):
            study.observe_sector(image)
        assert study.reuse_fraction("halves") > 0.8

    def test_writes_insert_but_do_not_count(self):
        study = ValueReuseStudy()
        image = b"\x01\x02\x03\x04" * 8
        study.observe_sector(image, is_read=False)
        assert study.sectors_seen == 0
        study.observe_sector(image, is_read=True)
        assert study.sectors_seen == 1
        assert study.reuse_fraction("halves") == 1.0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            ValueReuseStudy().reuse_fraction("quarters")

    def test_study_over_trace(self, bfs_trace):
        report = study_trace_values(bfs_trace)
        assert set(report) == {"full", "halves", "masked"}
        assert 0.0 < report["masked"] < 1.0
