"""Compact mirrored counters (Plutus idea #2, paper Section IV-D).

A miniature second layer of per-sector encryption counters sits in front
of the standard split counters. Because most GPU data is written rarely,
a 2- or 3-bit counter per 32-byte sector absorbs almost all counter
traffic, and the mini layer's higher density (2x-4x compaction) gives it
far better cacheability — and a far smaller BMT.

Semantics mirror the paper's Figure 13 walk-through:

* value below the saturation code -> the compact counter *is* the
  encryption counter; the original counters are not touched.
* value equal to the saturation code -> the compact access discovers
  saturation and a second access reads the original split counter.
* (adaptive only) when a compact block accumulates ``disable_threshold``
  saturated counters, its on-chip enable bit flips: remaining live
  compact values are synchronized into the original counters once, and
  all further accesses route directly to the originals, eliminating the
  double-access penalty.

The class tracks true per-sector write counts so that functional engines
can derive the exact encryption tweak regardless of which layer serves
the access.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Set

from repro.common.errors import ConfigurationError


class CounterRoute(Enum):
    """Which metadata layer(s) an access must touch."""

    COMPACT_ONLY = "compact_only"
    COMPACT_THEN_ORIGINAL = "compact_then_original"
    ORIGINAL_ONLY = "original_only"


@dataclass(frozen=True)
class CompactCounterConfig:
    """Geometry of one compact-counter design point."""

    width_bits: int
    counters_per_block: int
    adaptive: bool = False
    #: Saturated counters in a block before the adaptive scheme disables
    #: it (paper: 8, i.e. half of the ~25% of counters typically touched).
    disable_threshold: int = 8

    def __post_init__(self) -> None:
        if self.width_bits < 2:
            raise ConfigurationError("compact counters need at least 2 bits")
        if self.counters_per_block <= 0:
            raise ConfigurationError("block must hold at least one counter")
        if self.adaptive and not 0 < self.disable_threshold <= self.counters_per_block:
            raise ConfigurationError("disable threshold outside block capacity")

    @property
    def saturation_value(self) -> int:
        """The reserved all-ones code meaning 'consult the originals'."""
        return (1 << self.width_bits) - 1

    @property
    def block_bytes(self) -> int:
        """Nominal storage of one compact block (fits in a 32 B sector)."""
        return 32

    def compaction_vs(self, original_sectors_per_block: int) -> float:
        """Density gain over originals covering the same data."""
        return self.counters_per_block / original_sectors_per_block


#: The three design points evaluated in paper Fig. 17.
DESIGN_2BIT = CompactCounterConfig(width_bits=2, counters_per_block=128)
DESIGN_3BIT = CompactCounterConfig(width_bits=3, counters_per_block=64)
DESIGN_3BIT_ADAPTIVE = CompactCounterConfig(
    width_bits=3, counters_per_block=64, adaptive=True
)


@dataclass(frozen=True)
class CounterAccessPlan:
    """Route plus bookkeeping flags for one counter access."""

    route: CounterRoute
    #: True when this access just saturated the compact counter and its
    #: value must be propagated into the original copy (a write there).
    propagates_to_original: bool = False
    #: True when this write tripped the adaptive disable of the block
    #: (one-time synchronization of the block into the originals).
    disables_block: bool = False


class CompactCounterState:
    """Per-partition compact-counter layer, indexed by local sector number."""

    def __init__(self, config: CompactCounterConfig) -> None:
        self.config = config
        #: True write count per sector (ground truth for tweaks).
        self._writes: Dict[int, int] = {}
        #: Saturated-counter count per compact block (adaptive).
        self._saturated_in_block: Dict[int, int] = {}
        #: Blocks whose enable bit has been cleared (adaptive).
        self._disabled_blocks: Set[int] = set()
        #: Sectors forced to the originals by a split-counter major bump.
        self._forced_original: Set[int] = set()
        #: Statistics.
        self.disable_events = 0
        self.propagation_events = 0

    def block_of(self, sector_index: int) -> int:
        return sector_index // self.config.counters_per_block

    def write_count(self, sector_index: int) -> int:
        """Ground-truth number of writes the sector has received."""
        return self._writes.get(sector_index, 0)

    def encryption_counter(self, sector_index: int) -> int:
        """The tweak-visible counter value (identical in both layers).

        Mirroring means the compact layer and the original layer always
        agree on the sector's logical counter; only *where it is fetched
        from* differs.
        """
        return self.write_count(sector_index)

    def is_block_disabled(self, sector_index: int) -> bool:
        return self.block_of(sector_index) in self._disabled_blocks

    def _is_saturated(self, sector_index: int) -> bool:
        return (
            sector_index in self._forced_original
            or self.write_count(sector_index) >= self.config.saturation_value
        )

    def plan_read(self, sector_index: int) -> CounterAccessPlan:
        """Route a counter *read* (data fetch needing the decrypt tweak)."""
        if self.config.adaptive and self.is_block_disabled(sector_index):
            return CounterAccessPlan(route=CounterRoute.ORIGINAL_ONLY)
        if self._is_saturated(sector_index):
            return CounterAccessPlan(route=CounterRoute.COMPACT_THEN_ORIGINAL)
        return CounterAccessPlan(route=CounterRoute.COMPACT_ONLY)

    def plan_write(self, sector_index: int) -> CounterAccessPlan:
        """Route a counter *increment* (dirty writeback) and apply it."""
        block = self.block_of(sector_index)
        already_saturated = self._is_saturated(sector_index)
        disabled = self.config.adaptive and block in self._disabled_blocks

        self._writes[sector_index] = self.write_count(sector_index) + 1

        if disabled:
            return CounterAccessPlan(route=CounterRoute.ORIGINAL_ONLY)

        if already_saturated:
            # Compact entry pinned at the saturation code; originals
            # track the live count.
            return CounterAccessPlan(route=CounterRoute.COMPACT_THEN_ORIGINAL)

        if self.write_count(sector_index) >= self.config.saturation_value:
            # This write saturates the compact counter: its value is
            # propagated into the original copy now.
            self.propagation_events += 1
            saturated = self._saturated_in_block.get(block, 0) + 1
            self._saturated_in_block[block] = saturated
            disables = (
                self.config.adaptive
                and saturated >= self.config.disable_threshold
            )
            if disables:
                self._disabled_blocks.add(block)
                self.disable_events += 1
            return CounterAccessPlan(
                route=CounterRoute.COMPACT_THEN_ORIGINAL,
                propagates_to_original=True,
                disables_block=disables,
            )

        return CounterAccessPlan(route=CounterRoute.COMPACT_ONLY)

    # -- batch replay support -------------------------------------------------

    def plan_read_codes(self, sector_indices):
        """Vectorized :meth:`plan_read` route codes for a batch (pure).

        Returns ``None`` when every access routes ``COMPACT_ONLY`` (the
        pristine-state fast path), otherwise a list of route codes:
        0 = compact only, 1 = compact then original, 2 = original only.
        """
        if (
            not self._writes
            and not self._forced_original
            and not self._disabled_blocks
        ):
            return None
        adaptive = self.config.adaptive
        disabled = self._disabled_blocks
        forced = self._forced_original
        writes = self._writes
        get = writes.get
        sat = self.config.saturation_value
        per_block = self.config.counters_per_block
        codes = []
        append = codes.append
        for s in sector_indices:
            if adaptive and s // per_block in disabled:
                append(2)
            elif s in forced or get(s, 0) >= sat:
                append(1)
            else:
                append(0)
        return codes

    def plan_write_code(self, sector_index: int) -> int:
        """Allocation-free :meth:`plan_write` for the batch replay path.

        Applies exactly the same state transitions and returns the route
        code (0 = compact only, 1 = compact then original, 2 = original
        only) plus 8 when this write disables the block.
        """
        block = sector_index // self.config.counters_per_block
        writes = self._writes
        w = writes.get(sector_index, 0)
        already_saturated = (
            sector_index in self._forced_original
            or w >= self.config.saturation_value
        )
        disabled = self.config.adaptive and block in self._disabled_blocks
        writes[sector_index] = w = w + 1
        if disabled:
            return 2
        if already_saturated:
            return 1
        if w >= self.config.saturation_value:
            self.propagation_events += 1
            saturated = self._saturated_in_block.get(block, 0) + 1
            self._saturated_in_block[block] = saturated
            if (
                self.config.adaptive
                and saturated >= self.config.disable_threshold
            ):
                self._disabled_blocks.add(block)
                self.disable_events += 1
                return 1 + 8
            return 1
        return 0

    def bulk_writes_safe(self, sectors, counts) -> bool:
        """True when ``counts[i]`` writes of ``sectors[i]`` trigger no
        saturation bookkeeping — the precondition for :meth:`bulk_writes`.

        A sector is bulk-safe when it is already routed to the originals
        (forced or saturated — further writes only bump the ground-truth
        count) or when the added writes stay strictly below the
        saturation code. Disabled blocks are inherently safe: writes
        there mutate nothing but the count.
        """
        writes = self._writes
        get = writes.get
        sat = self.config.saturation_value
        forced = self._forced_original
        for s, c in zip(sectors, counts):
            w = get(s, 0)
            if s not in forced and w < sat and w + c >= sat:
                return False
        return True

    def bulk_writes(self, sectors, counts) -> None:
        """Apply per-sector write totals checked by
        :meth:`bulk_writes_safe` (no saturation crossing, so order-free)."""
        writes = self._writes
        get = writes.get
        for s, c in zip(sectors, counts):
            writes[s] = get(s, 0) + c

    def state_summary(self):
        """Canonical full-state value for differential comparison."""
        return (
            sorted(self._writes.items()),
            sorted(self._saturated_in_block.items()),
            sorted(self._disabled_blocks),
            sorted(self._forced_original),
            self.disable_events,
            self.propagation_events,
        )

    def force_original(self, sector_indices) -> None:
        """Redirect sectors to the originals after a major-counter bump.

        When a split-counter minor overflows, every sector sharing the
        major counter must use the original layer (paper Section IV-D).
        """
        for s in sector_indices:
            self._forced_original.add(s)

    def sync_sectors_for_disable(self) -> int:
        """Original-counter sectors written when a block is disabled.

        The adaptive scheme provides 2x compaction, so one compact block
        maps onto two original counter sectors (paper: "only two original
        counters blocks are needed to synchronize").
        """
        return 2
