"""Functional MAC storage for protected sectors.

Holds the truncated per-sector tags the functional engines compare
against, playing the role of the MAC region in DRAM. Like
:class:`repro.mem.backing.BackingStore` it is untrusted: the attack
harness can overwrite tags to emulate splicing, and the engine is
expected to catch the mismatch.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.crypto.mac import MacAlgorithm

#: An update interposer: receives ``(sector_index, tag)`` and returns
#: the tag to actually store, or ``None`` to drop the tag update.
UpdateHook = Callable[[int, bytes], Optional[bytes]]


class MacStore:
    """Sparse map of sector index -> stored truncated tag."""

    def __init__(self, algorithm: MacAlgorithm) -> None:
        self.algorithm = algorithm
        self._tags: Dict[int, bytes] = {}
        #: Fault-injection interposer on tag updates (see
        #: :meth:`install_update_hook`); ``None`` means updates land.
        self.update_hook: Optional[UpdateHook] = None
        #: Tag updates suppressed by a hook (campaign diagnostics).
        self.dropped_updates = 0

    def install_update_hook(self, hook: Optional[UpdateHook]) -> None:
        """Interpose *hook* on every tag update (``None`` uninstalls).

        Models dropped or mangled MAC-region stores without the engine
        above knowing: the hook sees the freshly computed tag and
        decides what the untrusted MAC region actually retains.
        """
        self.update_hook = hook

    def update(self, sector_index: int, data: bytes, address: int, counter: int) -> bytes:
        """Recompute and store the tag for freshly written sector data."""
        tag = self.algorithm.compute(data, address=address, counter=counter)
        if self.update_hook is not None:
            hooked = self.update_hook(sector_index, tag)
            if hooked is None:
                self.dropped_updates += 1
                return tag
            if len(hooked) != len(tag):
                raise ValueError("update hook must preserve tag length")
            tag = hooked
        self._tags[sector_index] = tag
        return tag

    def stored_tag(self, sector_index: int) -> bytes:
        """Stored tag (all-zero for never-written sectors)."""
        return self._tags.get(sector_index, b"\x00" * self.algorithm.tag_bytes)

    def verify(
        self, sector_index: int, data: bytes, address: int, counter: int
    ) -> bool:
        """Check sector data against the stored tag."""
        return self.algorithm.verify(
            data, self.stored_tag(sector_index), address=address, counter=counter
        )

    def load_tag(self, sector_index: int, tag: bytes) -> None:
        """Install a stored tag directly (crash recovery).

        Unlike :meth:`update` this does not recompute anything: the tag
        comes verbatim from a persistent MAC region being rebuilt after
        a crash, and unlike :meth:`corrupt` it is an honest engine
        operation, not an attacker primitive.
        """
        if len(tag) != self.algorithm.tag_bytes:
            raise ValueError("tag length mismatch")
        self._tags[sector_index] = tag

    def corrupt(self, sector_index: int, tag: bytes) -> None:
        """Attacker primitive: replace a stored tag."""
        if len(tag) != self.algorithm.tag_bytes:
            raise ValueError("tag length mismatch")
        self._tags[sector_index] = tag

    def splice(self, dst_sector: int, src_sector: int) -> None:
        """Attacker primitive: move a valid tag to a different sector."""
        self._tags[dst_sector] = self.stored_tag(src_sector)

    def tamper(self, sector_index: int, xor_mask: bytes) -> None:
        """Attacker primitive: flip bits of a stored tag in place."""
        if len(xor_mask) != self.algorithm.tag_bytes:
            raise ValueError("mask length must match tag length")
        current = self.stored_tag(sector_index)
        self._tags[sector_index] = bytes(
            a ^ b for a, b in zip(current, xor_mask)
        )

    @property
    def stored_count(self) -> int:
        return len(self._tags)
