"""Robustness sweeps: the headline result must not be an artifact.

The paper reports single-configuration numbers; these sweeps show the
reproduction's Plutus-vs-PSSM speedup is stable across trace seeds,
grows-then-stabilizes with window length, and behaves sensibly across
the metadata-cache budget and the performance-model blend.
"""

import statistics

from conftest import run_once

from repro.harness.report import format_table
from repro.harness.sweeps import (
    sweep_memory_intensity,
    sweep_metadata_cache,
    sweep_seeds,
    sweep_trace_length,
)

BENCH = "bfs"


def test_sweep_seed_robustness(benchmark, ctx):
    rows = run_once(benchmark, lambda: sweep_seeds(BENCH, seeds=(1, 2, 3, 4)))
    print(format_table(rows))
    speedups = [r["speedup"] for r in rows]
    assert min(speedups) > 1.05          # the win survives every seed
    spread = max(speedups) - min(speedups)
    assert spread < 0.15                 # and is stable across seeds
    assert statistics.mean(speedups) > 1.10


def test_sweep_window_convergence(benchmark, ctx):
    rows = run_once(
        benchmark, lambda: sweep_trace_length(BENCH, lengths=(2000, 6000, 12000))
    )
    print(format_table(rows))
    assert all(r["speedup"] > 1.0 for r in rows)


def test_sweep_metadata_cache(benchmark, ctx):
    rows = run_once(
        benchmark, lambda: sweep_metadata_cache(BENCH, sizes=(1024, 2048, 8192))
    )
    print(format_table(rows))
    by_size = {r["cache_bytes"]: r for r in rows}
    # Bigger metadata caches help both designs...
    assert by_size[8192]["pssm_ipc"] >= by_size[1024]["pssm_ipc"]
    # ...and Plutus keeps a clear win at every budget.
    assert all(r["speedup"] > 1.05 for r in rows)


def test_sweep_memory_intensity(benchmark, ctx):
    rows = run_once(benchmark, lambda: sweep_memory_intensity(ctx, BENCH))
    print(format_table(rows))
    by_i = {r["memory_intensity"]: r for r in rows}
    # Compute-bound kernels are indifferent; fully memory-bound ones
    # realize the full traffic saving.
    assert by_i[0.0]["speedup"] == 1.0
    assert by_i[1.0]["speedup"] == max(r["speedup"] for r in rows)
