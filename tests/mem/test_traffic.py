"""Tests for DRAM traffic accounting."""

import pytest

from repro.mem.traffic import (
    METADATA_STREAMS,
    Stream,
    TrafficCounter,
    TrafficReport,
)


class TestCounter:
    def test_record_accumulates(self):
        counter = TrafficCounter()
        counter.record(Stream.DATA_READ, 32)
        counter.record(Stream.DATA_READ, 64, transactions=2)
        assert counter.bytes_for(Stream.DATA_READ) == 96
        assert counter.transactions_for(Stream.DATA_READ) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficCounter().record(Stream.MAC_READ, -1)

    def test_merge(self):
        a, b = TrafficCounter(), TrafficCounter()
        a.record(Stream.MAC_READ, 32)
        b.record(Stream.MAC_READ, 64)
        b.record(Stream.BMT_WRITE, 128)
        a.merge(b)
        assert a.bytes_for(Stream.MAC_READ) == 96
        assert a.bytes_for(Stream.BMT_WRITE) == 128


class TestReportViews:
    def make_report(self):
        counter = TrafficCounter()
        counter.record(Stream.DATA_READ, 1000)
        counter.record(Stream.DATA_WRITE, 500)
        counter.record(Stream.COUNTER_READ, 300)
        counter.record(Stream.MAC_READ, 200)
        counter.record(Stream.BMT_READ, 100)
        counter.record(Stream.COMPACT_COUNTER_READ, 50)
        counter.record(Stream.COMPACT_BMT_READ, 25)
        return counter.report()

    def test_totals(self):
        report = self.make_report()
        assert report.total_bytes == 2175
        assert report.data_bytes == 1500
        assert report.metadata_bytes == 675

    def test_counter_bytes_include_compact_layer(self):
        assert self.make_report().counter_bytes == 350

    def test_tree_bytes_include_mini_tree(self):
        assert self.make_report().tree_bytes == 125

    def test_metadata_overhead(self):
        assert self.make_report().metadata_overhead == pytest.approx(675 / 1500)

    def test_breakdown_covers_everything(self):
        report = self.make_report()
        assert sum(report.breakdown().values()) == report.total_bytes

    def test_metadata_stream_partition(self):
        """Every stream is data or metadata, never both."""
        data_streams = {Stream.DATA_READ, Stream.DATA_WRITE}
        assert data_streams | METADATA_STREAMS == set(Stream)
        assert not data_streams & METADATA_STREAMS


class TestReduction:
    def test_reduction_vs_baseline(self):
        base = TrafficCounter()
        base.record(Stream.MAC_READ, 1000)
        improved = TrafficCounter()
        improved.record(Stream.MAC_READ, 400)
        reduction = improved.report().metadata_reduction_vs(base.report())
        assert reduction == pytest.approx(0.6)

    def test_reduction_against_empty_baseline(self):
        empty = TrafficReport(bytes_by_stream={})
        assert empty.metadata_reduction_vs(empty) == 0.0

    def test_overhead_of_pure_data(self):
        counter = TrafficCounter()
        counter.record(Stream.DATA_READ, 10)
        assert counter.report().metadata_overhead == 0.0
