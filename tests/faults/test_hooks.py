"""Tests for mounting injection plans against a live SecureMemory.

Each test arranges honest state, mounts one fault through the hook
layer, and checks the engine's own verification flow classifies the
probe read correctly — the engines themselves are never modified.
"""

import hashlib

import pytest

from repro.common.errors import (
    FaultInjectionError,
    IntegrityError,
    ReplayError,
)
from repro.faults.hooks import (
    apply_fault,
    dropped_write,
    inject_immediate,
)
from repro.faults.plan import SECTOR_BYTES, FaultKind, InjectionPlan
from repro.secure.functional import SecureMemory


def _payload(tag: str) -> bytes:
    return hashlib.sha256(tag.encode()).digest()


@pytest.fixture
def mem():
    """Functional reference: AES-XTS + unconditional MAC, no value cache."""
    m = SecureMemory(4096, mode="plutus", value_cache_config=None,
                     label="functional")
    for i in range(8):
        m.write(i * SECTOR_BYTES, _payload(f"sector-{i}"))
    return m


class TestSpatialFaults:
    def test_bitflip_detected_at_address(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.BITFLIP, address=64, trigger_index=8, bit=13
        )
        inject_immediate(mem, plan)
        with pytest.raises(IntegrityError) as info:
            mem.read(64, SECTOR_BYTES)
        assert info.value.address == 64
        assert info.value.stream == "mac"

    def test_splice_detected(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.SPLICE, address=0, trigger_index=8,
            src_address=96,
        )
        inject_immediate(mem, plan)
        with pytest.raises(IntegrityError) as info:
            mem.read(0, SECTOR_BYTES)
        assert info.value.address == 0

    def test_counter_corrupt_detected_as_replay(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.COUNTER_CORRUPT, address=32, trigger_index=8,
            bit=5,
        )
        inject_immediate(mem, plan)
        with pytest.raises(ReplayError) as info:
            mem.read(32, SECTOR_BYTES)
        assert info.value.address == 32

    def test_counter_corrupt_requires_published_group(self):
        untouched = SecureMemory(4096, mode="plutus",
                                 value_cache_config=None)
        plan = InjectionPlan(
            kind=FaultKind.COUNTER_CORRUPT, address=0, trigger_index=0
        )
        with pytest.raises(FaultInjectionError):
            inject_immediate(untouched, plan)

    def test_mac_corrupt_detected_by_functional(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.MAC_CORRUPT, address=128, trigger_index=8,
            bit=3,
        )
        inject_immediate(mem, plan)
        with pytest.raises(IntegrityError) as info:
            mem.read(128, SECTOR_BYTES)
        assert info.value.address == 128

    def test_bmt_sibling_corruption_detected(self):
        # 32768 B -> 32 counter groups -> a height-3 tree with real
        # siblings at stored level 0.
        mem = SecureMemory(32768, mode="plutus", value_cache_config=None)
        for i in range(0, 40):
            mem.write(i * SECTOR_BYTES, _payload(f"s{i}"))
        plan = InjectionPlan(
            kind=FaultKind.BMT_NODE, address=0, trigger_index=40,
            tree_level=0,
        )
        inject_immediate(mem, plan)
        with pytest.raises(ReplayError):
            mem.read(0, SECTOR_BYTES)

    def test_bmt_root_level_not_a_target(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.BMT_NODE, address=0, trigger_index=8,
            tree_level=mem.tree.height,
        )
        with pytest.raises(FaultInjectionError):
            inject_immediate(mem, plan)

    def test_temporal_kind_rejected_by_inject_immediate(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.REPLAY, address=0, trigger_index=8
        )
        with pytest.raises(FaultInjectionError):
            inject_immediate(mem, plan)


class TestTemporalFaults:
    def test_replay_rollback_detected(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.REPLAY, address=32, trigger_index=8
        )
        apply_fault(mem, plan, fresh_data=_payload("fresh"))
        with pytest.raises(ReplayError) as info:
            mem.read(32, SECTOR_BYTES)
        assert info.value.address == 32

    def test_replay_requires_fresh_data(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.REPLAY, address=32, trigger_index=8
        )
        with pytest.raises(FaultInjectionError):
            apply_fault(mem, plan)

    def test_dropped_data_write_detected(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.DROPPED_WRITE, address=64, trigger_index=8,
            stream="data",
        )
        apply_fault(mem, plan, fresh_data=_payload("lost"))
        with pytest.raises(IntegrityError) as info:
            mem.read(64, SECTOR_BYTES)
        assert info.value.address == 64

    def test_dropped_mac_write_detected_without_value_cache(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.DROPPED_WRITE, address=64, trigger_index=8,
            stream="mac",
        )
        apply_fault(mem, plan, fresh_data=_payload("lost-tag"))
        with pytest.raises(IntegrityError):
            mem.read(64, SECTOR_BYTES)

    def test_dropped_write_scope_is_exact(self, mem):
        """Only the targeted address is suppressed; neighbours retire."""
        plan = InjectionPlan(
            kind=FaultKind.DROPPED_WRITE, address=64, trigger_index=8,
            stream="data",
        )
        neighbour = _payload("neighbour")
        with dropped_write(mem, plan):
            mem.write(96, neighbour)
        assert mem.read(96, SECTOR_BYTES) == neighbour

    def test_hooks_restored_after_context(self, mem):
        plan = InjectionPlan(
            kind=FaultKind.DROPPED_WRITE, address=64, trigger_index=8,
            stream="data",
        )
        with dropped_write(mem, plan):
            pass
        assert mem.dram.write_hook is None
        after = _payload("after")
        mem.write(64, after)
        assert mem.read(64, SECTOR_BYTES) == after
