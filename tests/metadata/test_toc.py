"""Tests for the Tree of Counters (parallelizable integrity tree)."""

import pytest

from repro.common.errors import ReplayError
from repro.metadata.toc import TreeOfCounters


class TestConstruction:
    def test_initial_state_verifies(self):
        tree = TreeOfCounters(64, arity=8)
        tree.verify_leaf(0, 0)
        tree.verify_leaf(63, 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TreeOfCounters(0)
        with pytest.raises(ValueError):
            TreeOfCounters(8, arity=1)


class TestVersions:
    def test_update_bumps_leaf_version(self):
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(5)
        tree.verify_leaf(5, 1)

    def test_update_bumps_every_ancestor(self):
        tree = TreeOfCounters(64, arity=8)
        root_before = tree.root_version
        tree.update_leaf(5)
        assert tree.root_version == root_before + 1

    def test_stale_version_rejected(self):
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(5)
        tree.update_leaf(5)
        with pytest.raises(ReplayError):
            tree.verify_leaf(5, 1)  # current is 2

    def test_independent_leaves(self):
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(0)
        tree.verify_leaf(1, 0)


class TestTampering:
    def test_corrupted_leaf_version_detected(self):
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(9)
        tree.corrupt_version(0, 9, 5)  # attacker writes version 5
        with pytest.raises(ReplayError):
            tree.verify_leaf(9, 5)  # MAC chain fails

    def test_corrupted_intermediate_version_detected(self):
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(9)
        tree.corrupt_version(1, 1, 42)
        with pytest.raises(ReplayError):
            tree.verify_leaf(9, 1)

    def test_rollback_of_leaf_and_parent_detected(self):
        """Even a consistent-looking rollback fails: the grandparent MAC
        binds the parent version."""
        tree = TreeOfCounters(64, arity=8)
        tree.update_leaf(9)
        tree.update_leaf(9)
        tree.corrupt_version(0, 9, 1)
        tree.corrupt_version(1, 1, 1)
        with pytest.raises(ReplayError):
            tree.verify_leaf(9, 1)


class TestParallelizability:
    def test_many_updates_consistent(self):
        """Unlike a hash tree, version updates have no ordering hazard;
        after any interleaving every leaf verifies."""
        tree = TreeOfCounters(32, arity=4)
        sequence = [3, 17, 3, 8, 31, 3, 17, 0]
        for leaf in sequence:
            tree.update_leaf(leaf)
        tree.verify_leaf(3, 3)
        tree.verify_leaf(17, 2)
        tree.verify_leaf(8, 1)
        tree.verify_leaf(31, 1)
        tree.verify_leaf(0, 1)
        assert tree.root_version == len(sequence)
