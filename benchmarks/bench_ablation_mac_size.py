"""Ablation: 4-byte (PSSM) vs 8-byte (Plutus baseline) MAC tags.

Smaller tags pack more MACs per sector (less traffic) but halve the
security level: 2^-32 collisions vs 2^-64. The paper pays the 8-byte
cost for fairness and then removes the traffic with value verification.
"""

from conftest import run_once

from repro.analysis.security import mac_collision
from repro.harness.report import format_table

BENCHES = ["bfs", "sssp", "lbm"]


def test_ablation_mac_size(benchmark, ctx):
    def run():
        rows = []
        for bench in BENCHES:
            mac8 = ctx.run(bench, "pssm")
            mac4 = ctx.run(bench, "pssm:4B-mac")
            rows.append(
                {
                    "benchmark": bench,
                    "mac8_bytes": mac8.traffic.mac_bytes,
                    "mac4_bytes": mac4.traffic.mac_bytes,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print(format_table(rows))
    for row in rows:
        assert row["mac4_bytes"] <= row["mac8_bytes"], row
    # The security price of the 4-byte tag, for the record.
    assert mac_collision(4).bits_of_security == 32
    assert mac_collision(8).bits_of_security == 64
