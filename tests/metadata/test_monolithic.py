"""Tests for SGX-style monolithic counters."""

import pytest

from repro.common.errors import ConfigurationError, CounterOverflowError
from repro.metadata.monolithic import (
    MonolithicCounterConfig,
    MonolithicCounterStore,
)


class TestConfig:
    def test_sgx_defaults(self):
        config = MonolithicCounterConfig()
        assert config.counter_bits == 56
        assert config.counters_per_block == 8
        assert config.block_bytes == 56  # 8 x 56 bits

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            MonolithicCounterConfig(counter_bits=0)


class TestStore:
    def test_starts_at_zero(self):
        store = MonolithicCounterStore()
        assert store.value(7) == 0
        assert store.combined(7) == 0

    def test_increment(self):
        store = MonolithicCounterStore()
        assert store.increment(7) == 1
        assert store.increment(7) == 2
        assert store.value(8) == 0

    def test_overflow_raises(self):
        store = MonolithicCounterStore(MonolithicCounterConfig(counter_bits=2))
        for _ in range(3):
            store.increment(0)
        with pytest.raises(CounterOverflowError):
            store.increment(0)

    def test_block_mapping(self):
        store = MonolithicCounterStore()
        assert store.block_of(0) == 0
        assert store.block_of(7) == 0
        assert store.block_of(8) == 1

    def test_storage_overhead_exceeds_split(self):
        """The motivation for split counters: monolithic storage is an
        order of magnitude larger per protected sector."""
        mono = MonolithicCounterStore()
        # Split: 1 byte/sector (32 B per 32 sectors). Monolithic: 7 B.
        assert mono.storage_bytes_for(32) > 32

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            MonolithicCounterStore().value(-1)
