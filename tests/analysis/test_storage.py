"""Tests for metadata storage accounting (Section IV-F)."""

import pytest

from repro.analysis.storage import design_comparison, storage_report
from repro.metadata.compact import DESIGN_2BIT, DESIGN_3BIT_ADAPTIVE
from repro.metadata.layout import GranularityDesign
from repro.secure.value_cache import ValueCacheConfig

SECTORS = 4 * 1024 * 1024  # one 128 MiB partition


class TestBasicAccounting:
    def test_counters_are_1_32_of_data(self):
        report = storage_report(SECTORS)
        assert report.counter_bytes == report.data_bytes // 32

    def test_macs_are_quarter_of_data(self):
        report = storage_report(SECTORS, mac_tag_bytes=8)
        assert report.mac_bytes == report.data_bytes // 4

    def test_macs_dominate_offchip(self):
        report = storage_report(SECTORS)
        assert report.mac_bytes > report.counter_bytes + report.bmt_bytes

    def test_breakdown_sums_to_total(self):
        report = storage_report(SECTORS, compact=DESIGN_3BIT_ADAPTIVE)
        assert sum(report.breakdown().values()) == report.offchip_total


class TestPaperNumbers:
    def test_fine_bmt_reaches_1_33_mb(self):
        """Section IV-F: BMT storage grows to 1.33 MB."""
        report = storage_report(SECTORS, design=GranularityDesign.ALL_32)
        assert report.bmt_bytes == pytest.approx(1.33 * 1024**2, rel=0.05)

    def test_value_cache_about_1_kb(self):
        report = storage_report(SECTORS, value_cache=ValueCacheConfig())
        assert 1024 <= report.onchip_value_cache_bytes <= 1200

    def test_compact_layer_adds_two_caches(self):
        plain = storage_report(SECTORS)
        with_compact = storage_report(SECTORS, compact=DESIGN_3BIT_ADAPTIVE)
        assert (
            with_compact.onchip_metadata_sram_bytes
            - plain.onchip_metadata_sram_bytes
            == 2 * 2048
        )


class TestCompaction:
    def test_3bit_mirror_is_half_of_originals(self):
        report = storage_report(SECTORS, compact=DESIGN_3BIT_ADAPTIVE)
        assert report.compact_counter_bytes == report.counter_bytes // 2

    def test_2bit_mirror_is_quarter_of_originals(self):
        report = storage_report(SECTORS, compact=DESIGN_2BIT)
        assert report.compact_counter_bytes == report.counter_bytes // 4

    def test_mini_bmt_smaller_than_original(self):
        report = storage_report(
            SECTORS, design=GranularityDesign.ALL_32,
            compact=DESIGN_3BIT_ADAPTIVE,
        )
        assert report.compact_bmt_bytes < report.bmt_bytes


class TestDesignComparison:
    def test_both_designs_reported(self):
        table = design_comparison()
        assert set(table) == {"pssm", "plutus"}

    def test_plutus_trades_storage_for_bandwidth(self):
        """Plutus costs MORE storage (taller tree + mirror layer) —
        the paper's explicit trade: storage is cheap, bandwidth is not."""
        table = design_comparison()
        assert table["plutus"].offchip_total > table["pssm"].offchip_total
        assert table["plutus"].bmt_bytes > table["pssm"].bmt_bytes
