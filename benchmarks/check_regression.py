"""Performance-regression gate for CI (and local use).

Runs a quick pytest-benchmark subset, normalizes the measured means by
an on-machine calibration loop (so a slow CI runner is compared against
itself, not against the machine that recorded the baseline), and
compares against the committed ``benchmarks/baseline.json``:

* a bench whose normalized mean exceeds baseline x ``--tolerance`` is a
  **regression** and fails the gate;
* the full comparison — including a serial-vs-parallel replay speedup
  demonstration — is written to ``--output`` for artifact upload.

Re-baselining after an intentional performance change::

    PYTHONPATH=src python benchmarks/check_regression.py --rebaseline

then commit the updated ``benchmarks/baseline.json``.

A second mode gates the ``repro.harness bench`` trajectory instead:
``--trajectory-entry fresh.json`` compares one fresh bench entry
(calibration-normalized events/sec per engine and mode) against the
latest comparable entry in ``--trajectory`` (default
``benchmarks/BENCH_0001.json``) and fails on a normalized slowdown
beyond ``--tolerance``.

The speedup
demonstration records wall-clock for ``replay_events`` at ``workers=1``
vs ``workers=4`` on one full-size event log; the >= ``--min-speedup``
assertion only arms when ``REPRO_REQUIRE_SPEEDUP=1`` (multi-core CI
runners), since a single-core host cannot demonstrate parallelism.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
BASELINE_PATH = HERE / "baseline.json"
BASELINE_SCHEMA = "repro.bench-baseline/1"

#: The quick gate subset: one analysis-heavy bench and one that sweeps
#: real simulations across the roster, so both compute styles are
#: timed. Kept small — the gate must stay a few minutes, not an hour.
BENCH_SUBSET = [
    "benchmarks/bench_eq1_forgery.py",
    "benchmarks/bench_fig06_security_overhead.py",
]

#: Trace length for the gate's simulations (small but non-trivial).
GATE_TRACE_LEN = "2000"


def calibrate(rounds: int = 3) -> float:
    """Seconds for a fixed CPU-bound workload on *this* machine.

    A deterministic SHA-256 chain approximates the Python-interpreter
    throughput the simulator depends on; bench means divided by this
    number are comparable across differently-sized runners.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        digest = b"\x00" * 32
        for _ in range(20000):
            digest = hashlib.sha256(digest).digest()
        best = min(best, time.perf_counter() - start)
    return best


def run_bench_subset() -> dict:
    """Run the gate subset under pytest-benchmark; return name -> mean."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", "src")
        env["REPRO_BENCH_TRACE_LEN"] = GATE_TRACE_LEN
        env["REPRO_BENCH_METRICS_OUT"] = ""  # no side artifacts
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            *BENCH_SUBSET,
            "-q",
            f"--benchmark-json={out}",
        ]
        proc = subprocess.run(cmd, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"bench subset failed (exit {proc.returncode})")
        payload = json.loads(out.read_text())
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in payload["benchmarks"]
    }


def measure_parallel_speedup(workers: int = 4) -> dict:
    """Wall-clock for one replay, serial vs sharded across *workers*."""
    from repro.gpu.config import VOLTA
    from repro.gpu.simulator import replay_events, simulate_l2
    from repro.harness.runner import engine_factories
    from repro.workloads.benchmarks import build_trace

    trace = build_trace("bfs", length=30000, seed=2023)
    log = simulate_l2(trace, VOLTA)
    factory = engine_factories()["plutus"]

    start = time.perf_counter()
    serial = replay_events(log, factory, VOLTA, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = replay_events(log, factory, VOLTA, workers=workers)
    parallel_seconds = time.perf_counter() - start

    identical = (
        serial.traffic == parallel.traffic
        and serial.engine_stats == parallel.engine_stats
    )
    return {
        "events": len(log.events),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "results_identical": identical,
        "cpu_count": os.cpu_count(),
    }


def _entry_path(entry: dict) -> str:
    """Replay path an entry measured; pre-columnar entries are object."""
    return entry.get("path", "object")


def _latest_matching(entry: dict, entries: list, path: str):
    """Latest trajectory entry comparable to *entry* on replay *path*."""
    for candidate in reversed(entries):
        if (
            candidate.get("benchmark") == entry.get("benchmark")
            and candidate.get("length") == entry.get("length")
            and candidate.get("seed") == entry.get("seed")
            and _entry_path(candidate) == path
        ):
            return candidate
    return None


def compare_trajectory(entry: dict, trajectory: dict, tolerance: float,
                       min_improvement: float = 3.0) -> dict:
    """Compare a fresh ``bench`` entry against the committed trajectory.

    Throughputs are normalized by each entry's own calibration number
    (``eps * calibration_seconds`` = events per calibration unit of
    CPU), so a slow runner is compared against what the recording
    machine would have measured at its speed. A mode whose normalized
    throughput drops below ``reference / tolerance`` is a regression.

    Entries record which replay ``path`` they measured (absent means
    the pre-columnar object path). Regressions always compare same
    path against same path; when the fresh entry measured the columnar
    path *and* the trajectory holds a comparable object-path entry, a
    second **improvement gate** arms: every engine whose row is marked
    ``batched`` (a native columnar fast path) must show at least
    ``min_improvement`` x the object entry's normalized serial
    throughput — the refactor's payoff, demonstrated, not assumed.
    """
    entries = trajectory.get("entries") or []
    entry_path = _entry_path(entry)
    reference = _latest_matching(entry, entries, entry_path)
    cur_cal = float(entry["calibration_seconds"])
    report: dict = {
        "tolerance": tolerance,
        "path": entry_path,
        "calibration_seconds": cur_cal,
        "reference": None,
        "rows": [],
        "regressions": [],
    }
    if reference is None:
        report["note"] = (
            f"no comparable {entry_path}-path trajectory entry "
            f"(benchmark/length/seed mismatch); nothing to gate"
        )
    else:
        ref_cal = float(reference["calibration_seconds"])
        rows = []
        for engine, current in sorted(entry.get("engines", {}).items()):
            base = reference.get("engines", {}).get(engine)
            for mode in ("serial_eps", "sharded_eps"):
                cur_eps = current.get(mode)
                if cur_eps is None:
                    continue
                if base is None or base.get(mode) is None:
                    rows.append(
                        {"name": f"{engine}:{mode}", "status": "new",
                         "eps": cur_eps}
                    )
                    continue
                cur_norm = cur_eps * cur_cal
                base_norm = base[mode] * ref_cal
                ratio = cur_norm / base_norm if base_norm else float("inf")
                status = "regression" if ratio < 1.0 / tolerance else "ok"
                rows.append(
                    {
                        "name": f"{engine}:{mode}",
                        "status": status,
                        "eps": cur_eps,
                        "reference_eps": base[mode],
                        "normalized_ratio": ratio,
                    }
                )
        rows.sort(key=lambda r: r.get("normalized_ratio", float("inf")))
        report["reference"] = {
            "recorded": reference.get("recorded"),
            "calibration_seconds": ref_cal,
        }
        report["rows"] = rows
        report["regressions"] = [
            r["name"] for r in rows if r["status"] == "regression"
        ]

    if entry_path != "object":
        object_ref = _latest_matching(entry, entries, "object")
        if object_ref is None:
            report["improvement_note"] = (
                "no comparable object-path entry; improvement gate not armed"
            )
        else:
            report["improvement"] = _gate_improvement(
                entry, object_ref, cur_cal, min_improvement
            )
    return report


def _gate_improvement(entry: dict, object_ref: dict, cur_cal: float,
                      min_improvement: float) -> dict:
    """Demand the columnar speedup from every batch-native engine row."""
    ref_cal = float(object_ref["calibration_seconds"])
    rows = []
    failures = []
    for engine, current in sorted(entry.get("engines", {}).items()):
        if not current.get("batched"):
            continue
        cur_eps = current.get("serial_eps")
        base = object_ref.get("engines", {}).get(engine, {})
        base_eps = base.get("serial_eps")
        if cur_eps is None or not base_eps:
            continue
        ratio = (cur_eps * cur_cal) / (base_eps * ref_cal)
        ok = ratio >= min_improvement
        rows.append(
            {
                "name": f"{engine}:serial_eps",
                "status": "improved" if ok else "below-min-improvement",
                "eps": cur_eps,
                "object_reference_eps": base_eps,
                "normalized_ratio": ratio,
            }
        )
        if not ok:
            failures.append(f"{engine}:serial_eps")
    if not rows:
        failures.append(
            "no batched engine rows to demonstrate the columnar speedup"
        )
    return {
        "min_improvement": min_improvement,
        "object_reference": {
            "recorded": object_ref.get("recorded"),
            "calibration_seconds": ref_cal,
        },
        "rows": rows,
        "failures": failures,
    }


def compare(current: dict, baseline: dict, calibration: float,
            tolerance: float, min_time: float) -> dict:
    """Normalized current-vs-baseline comparison, most-regressed first."""
    base_cal = baseline["calibration_seconds"]
    rows = []
    for name, mean in sorted(current.items()):
        base_mean = baseline["benchmarks"].get(name)
        if base_mean is None:
            rows.append({"name": name, "status": "new", "mean": mean})
            continue
        ratio = (mean / calibration) / (base_mean / base_cal)
        if mean < min_time and base_mean < min_time:
            # Sub-min_time benches are timer noise; the ratio test only
            # arms once either side is measurably slow.
            status = "ok"
        else:
            status = "regression" if ratio > tolerance else "ok"
        rows.append(
            {
                "name": name,
                "status": status,
                "mean": mean,
                "baseline_mean": base_mean,
                "normalized_ratio": ratio,
            }
        )
    missing = sorted(set(baseline["benchmarks"]) - set(current))
    rows.sort(key=lambda r: -r.get("normalized_ratio", 0.0))
    return {
        "tolerance": tolerance,
        "calibration_seconds": calibration,
        "baseline_calibration_seconds": base_cal,
        "rows": rows,
        "missing_from_run": missing,
        "regressions": [r["name"] for r in rows if r["status"] == "regression"],
    }


def _load_json_or_usage(path: Path, what: str) -> dict:
    """Read a JSON dict for the trajectory gate, or exit 2 with advice.

    A missing or mangled file is a usage problem (wrong path, bench
    never ran), not a regression — report it plainly instead of letting
    the traceback land in the CI log.
    """
    def usage_exit(message: str) -> SystemExit:
        print(message, file=sys.stderr)
        return SystemExit(2)

    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise usage_exit(
            f"error: {what} {path} does not exist; generate it with "
            f"`repro.harness bench --entry-out` or check the path"
        )
    except (OSError, json.JSONDecodeError) as exc:
        raise usage_exit(f"error: {what} {path} is unreadable: {exc}")
    if not isinstance(payload, dict):
        raise usage_exit(f"error: {what} {path} does not hold a JSON object")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=1.75,
        help="max allowed normalized slowdown per bench (default 1.75)",
    )
    parser.add_argument(
        "--min-time", type=float, default=0.05, metavar="SECONDS",
        help="benches faster than this on both sides never regress "
             "(default 0.05s — below that the timer noise dominates)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="required parallel replay speedup when REPRO_REQUIRE_SPEEDUP "
             "is set (default 2.0)",
    )
    parser.add_argument(
        "--output", default="comparison.json", metavar="PATH",
        help="where to write the comparison artifact",
    )
    parser.add_argument(
        "--rebaseline", action="store_true",
        help="record current means as the new baseline and exit",
    )
    parser.add_argument(
        "--skip-speedup", action="store_true",
        help="omit the serial-vs-parallel demonstration (quick local runs)",
    )
    parser.add_argument(
        "--trajectory-entry", default=None, metavar="PATH",
        help="compare a fresh `repro.harness bench --entry-out` JSON "
             "against --trajectory instead of running the pytest gate",
    )
    parser.add_argument(
        "--trajectory", default=str(HERE / "BENCH_0001.json"),
        metavar="PATH",
        help="committed trajectory file for --trajectory-entry "
             "(default benchmarks/BENCH_0001.json)",
    )
    parser.add_argument(
        "--min-improvement", type=float, default=3.0, metavar="RATIO",
        help="required normalized serial speedup of batched engines in a "
             "columnar --trajectory-entry over the latest object-path "
             "entry (default 3.0)",
    )
    args = parser.parse_args(argv)

    if args.trajectory_entry:
        entry = _load_json_or_usage(
            Path(args.trajectory_entry), "fresh bench entry"
        )
        trajectory = _load_json_or_usage(
            Path(args.trajectory), "trajectory file"
        )
        if not trajectory.get("entries"):
            print(
                f"error: trajectory file {args.trajectory} has no entries; "
                f"run `repro.harness bench` to record one, or point "
                f"--trajectory at the committed benchmarks/BENCH_0001.json",
                file=sys.stderr,
            )
            return 2
        report = compare_trajectory(
            entry, trajectory, args.tolerance, args.min_improvement
        )
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        if report.get("note"):
            print(report["note"])
        for row in report["rows"]:
            ratio = row.get("normalized_ratio")
            detail = f" ratio={ratio:.2f}" if ratio is not None else ""
            print(f"  {row['status']:>10}  {row['name']}{detail}")
        improvement = report.get("improvement")
        if report.get("improvement_note"):
            print(report["improvement_note"])
        if improvement:
            for row in improvement["rows"]:
                print(
                    f"  {row['status']:>22}  {row['name']} "
                    f"ratio={row['normalized_ratio']:.2f} "
                    f"(need >= {improvement['min_improvement']:.2f})"
                )
        failed = False
        if report["regressions"]:
            print(f"REGRESSIONS: {report['regressions']}", file=sys.stderr)
            failed = True
        if improvement and improvement["failures"]:
            print(
                f"IMPROVEMENT GATE FAILED: {improvement['failures']}",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0

    calibration = calibrate()
    print(f"calibration: {calibration * 1e3:.1f} ms")
    current = run_bench_subset()

    if args.rebaseline:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "calibration_seconds": calibration,
                    "trace_length": int(GATE_TRACE_LEN),
                    "benchmarks": current,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"baseline rewritten: {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --rebaseline",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    report = compare(
        current, baseline, calibration, args.tolerance, args.min_time
    )

    if not args.skip_speedup:
        report["parallel_replay"] = measure_parallel_speedup()
        demo = report["parallel_replay"]
        print(
            f"parallel replay: {demo['speedup']:.2f}x over serial "
            f"({demo['serial_seconds']:.2f}s -> "
            f"{demo['parallel_seconds']:.2f}s, {demo['workers']} workers, "
            f"identical={demo['results_identical']})"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    for row in report["rows"]:
        ratio = row.get("normalized_ratio")
        detail = f" ratio={ratio:.2f}" if ratio is not None else ""
        print(f"  {row['status']:>10}  {row['name']}{detail}")

    failed = False
    if report["regressions"]:
        print(f"REGRESSIONS: {report['regressions']}", file=sys.stderr)
        failed = True
    demo = report.get("parallel_replay")
    if demo and not demo["results_identical"]:
        print("parallel replay diverged from serial", file=sys.stderr)
        failed = True
    if demo and os.environ.get("REPRO_REQUIRE_SPEEDUP"):
        if demo["speedup"] < args.min_speedup:
            print(
                f"parallel speedup {demo['speedup']:.2f}x below required "
                f"{args.min_speedup}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
