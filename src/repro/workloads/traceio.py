"""Trace file import/export.

Users with real memory traces (e.g. dumped from GPGPU-Sim's memory
partition interface) can feed them to the simulator through this
module. The format is deliberately trivial — one access per line:

    R 0x00001280 0b0011 aabbcc...32B-hex ddeeff...32B-hex
    W 0x00009000 0b1000 00112233...

i.e. direction, 128-byte-aligned line address (hex), sector mask
(binary, bit i = sector i), then one 64-hex-digit sector image per set
mask bit in ascending sector order. Images are optional: lines without
them still drive every non-value mechanism.

Comment lines start with ``#``; a header comment carries the trace
name, memory intensity, and warmup depth so a round-trip preserves the
profile facts the simulator needs.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Tuple, Union

from repro.common.errors import TraceError
from repro.workloads.trace import Trace, TraceAccess

_HEADER_PREFIX = "#repro-trace"


def dump_trace(trace: Trace, fp: TextIO) -> None:
    """Serialize *trace* to a text stream."""
    fp.write(
        f"{_HEADER_PREFIX} name={trace.name} "
        f"intensity={trace.memory_intensity} "
        f"instructions={trace.instructions} "
        f"warmup={trace.counter_warmup_passes}\n"
    )
    for access in trace:
        parts = [
            "W" if access.write else "R",
            f"0x{access.line_addr:08x}",
            f"0b{access.sector_mask:04b}",
        ]
        if access.values is not None:
            for slot in sorted(access.sectors()):
                image = access.value_for(slot)
                parts.append(image.hex() if image is not None else "-")
        fp.write(" ".join(parts) + "\n")


def dumps_trace(trace: Trace) -> str:
    """Serialize *trace* to a string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def _parse_header(line: str) -> dict:
    fields = {}
    for token in line[len(_HEADER_PREFIX):].split():
        key, _, value = token.partition("=")
        fields[key] = value
    return fields


def _parse_access(line_no: int, tokens: List[str]) -> TraceAccess:
    if len(tokens) < 3:
        raise TraceError(f"line {line_no}: expected 'R/W addr mask ...'")
    direction, addr_token, mask_token = tokens[:3]
    if direction not in ("R", "W"):
        raise TraceError(f"line {line_no}: direction must be R or W")
    try:
        line_addr = int(addr_token, 0)
        mask = int(mask_token, 0)
    except ValueError as exc:
        raise TraceError(f"line {line_no}: {exc}") from None

    values: Union[List[Tuple[int, bytes]], None] = None
    image_tokens = tokens[3:]
    if image_tokens:
        slots = [s for s in range(4) if (mask >> s) & 1]
        if len(image_tokens) != len(slots):
            raise TraceError(
                f"line {line_no}: {len(slots)} sectors set but "
                f"{len(image_tokens)} images given"
            )
        values = []
        for slot, token in zip(slots, image_tokens):
            if token == "-":
                continue
            try:
                image = bytes.fromhex(token)
            except ValueError:
                raise TraceError(
                    f"line {line_no}: bad hex image for sector {slot}"
                ) from None
            if len(image) != 32:
                raise TraceError(
                    f"line {line_no}: sector image must be 32 bytes"
                )
            values.append((slot, image))
        if not values:
            values = None
    return TraceAccess(line_addr, mask, direction == "W", values)


def load_trace(fp: TextIO, name: str = "imported") -> Trace:
    """Parse a trace from a text stream."""
    accesses: List[TraceAccess] = []
    intensity = 0.8
    instructions = 0
    warmup = 3
    for line_no, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(_HEADER_PREFIX):
            header = _parse_header(line)
            name = header.get("name", name)
            intensity = float(header.get("intensity", intensity))
            instructions = int(header.get("instructions", instructions))
            warmup = int(header.get("warmup", warmup))
            continue
        if line.startswith("#"):
            continue
        accesses.append(_parse_access(line_no, line.split()))
    if not accesses:
        raise TraceError("trace file contains no accesses")
    return Trace(
        name=name,
        accesses=accesses,
        memory_intensity=intensity,
        instructions=instructions or 20 * len(accesses),
        counter_warmup_passes=warmup,
    )


def loads_trace(text: str, name: str = "imported") -> Trace:
    """Parse a trace from a string."""
    return load_trace(io.StringIO(text), name=name)


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Concatenate traces (multi-kernel executions).

    Memory intensity is access-weighted; warmup takes the maximum (the
    deepest history wins, conservatively).
    """
    traces = list(traces)
    if not traces:
        raise TraceError("nothing to merge")
    accesses: List[TraceAccess] = []
    weighted_intensity = 0.0
    instructions = 0
    warmup = 0
    for trace in traces:
        accesses.extend(trace.accesses)
        weighted_intensity += trace.memory_intensity * len(trace)
        instructions += trace.instructions
        warmup = max(warmup, trace.counter_warmup_passes)
    return Trace(
        name=name,
        accesses=accesses,
        memory_intensity=weighted_intensity / len(accesses),
        instructions=instructions,
        counter_warmup_passes=warmup,
    )
