"""Ring-buffered structured event tracer.

Events are small dicts with a fixed header — monotonic sequence number,
seconds since the tracer was created, a dotted name, a kind
(``event``/``span``) and an optional duration — plus free-form
caller attributes under ``attrs``. Storage is a bounded deque: when the
ring fills, the oldest events fall off and are counted, so tracing a
long run costs bounded memory and never fails.

The export format is JSONL (one JSON object per line), the same schema
whether dumped to disk (``--trace-out``) or inspected in memory.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional


class EventTracer:
    """Append-only bounded event log with span timing support."""

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._origin = clock()
        self._events: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self.emitted = 0

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        name: str,
        kind: str = "event",
        dur: Optional[float] = None,
        **attrs: object,
    ) -> None:
        """Record one event; oldest events are dropped when full."""
        event: Dict[str, object] = {
            "seq": self.emitted,
            "ts": round(self._clock() - self._origin, 9),
            "name": name,
            "kind": kind,
        }
        if dur is not None:
            event["dur"] = round(dur, 9)
        if attrs:
            event["attrs"] = attrs
        self._events.append(event)
        self.emitted += 1

    def span(self, name: str, **attrs: object) -> "_Span":
        """Context manager timing a region; emits one ``span`` event."""
        return _Span(self, name, attrs)

    # -- inspection / export ----------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return self.emitted - len(self._events)

    def events(self) -> List[Dict[str, object]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_jsonl(self) -> Iterator[str]:
        """One compact JSON object per retained event."""
        for event in self._events:
            yield json.dumps(event, separators=(",", ":"), sort_keys=True)


class _Span:
    """Times a ``with`` region and emits it as one span event."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start")

    def __init__(self, tracer: EventTracer, name: str, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = self._tracer._clock() - self._start
        self._tracer.emit(
            self._name, kind="span", dur=duration, **self._attrs
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer twin handed out by disabled sessions."""

    enabled = False
    emitted = 0
    dropped = 0

    def emit(self, name, kind="event", dur=None, **attrs) -> None:
        pass

    def span(self, name, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> List[Dict[str, object]]:
        return []

    def __len__(self) -> int:
        return 0

    def to_jsonl(self) -> Iterator[str]:
        return iter(())


#: Process-wide no-op tracer (stateless; safe to share).
NULL_TRACER = NullTracer()
