"""Tests for the performance engines (PSSM, common counters, Plutus)."""

import pytest

from repro.mem.traffic import Stream, TrafficCounter
from repro.metadata.compact import DESIGN_3BIT_ADAPTIVE
from repro.metadata.layout import GranularityDesign
from repro.secure.common_counters import CommonCountersEngine
from repro.secure.engine import NoSecurityEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine

SECTORS = 1 << 20  # small partition for tests

ZEROS = bytes(32)


def make(engine_cls, **kwargs):
    traffic = TrafficCounter()
    return engine_cls(0, SECTORS, traffic, **kwargs), traffic


class TestNoSecurity:
    def test_generates_no_metadata_traffic(self):
        engine, traffic = make(NoSecurityEngine)
        for i in range(100):
            engine.on_fill(i, ZEROS)
            engine.on_writeback(i, ZEROS)
        engine.finalize()
        assert traffic.report().total_bytes == 0
        assert engine.stats.fills == 100


class TestPssm:
    def test_fill_fetches_counter_and_mac(self):
        engine, traffic = make(PssmEngine)
        engine.on_fill(0, None)
        report = traffic.report()
        assert report.bytes_by_stream[Stream.COUNTER_READ] == 128  # whole block
        assert report.bytes_by_stream[Stream.MAC_READ] == 32

    def test_cached_metadata_costs_nothing(self):
        engine, traffic = make(PssmEngine)
        engine.on_fill(0, None)
        before = traffic.report().total_bytes
        engine.on_fill(1, None)  # same counter block, same MAC sector
        assert traffic.report().total_bytes == before

    def test_writeback_advances_counter(self):
        engine, _ = make(PssmEngine)
        engine.on_writeback(7, None)
        assert engine.counters.combined(7) == 1

    def test_finalize_writes_dirty_metadata(self):
        engine, traffic = make(PssmEngine)
        engine.on_writeback(7, None)
        engine.finalize()
        report = traffic.report()
        assert report.bytes_by_stream[Stream.COUNTER_WRITE] > 0
        assert report.bytes_by_stream[Stream.MAC_WRITE] > 0

    def test_fine_granularity_fetches_less(self):
        coarse, coarse_traffic = make(PssmEngine, design=GranularityDesign.BLOCK_128)
        fine, fine_traffic = make(PssmEngine, design=GranularityDesign.ALL_32)
        # Touch widely-spaced sectors so counter blocks never share.
        for i in range(0, 100):
            coarse.on_fill(i * 1024, None)
            fine.on_fill(i * 1024, None)
        assert (
            fine_traffic.report().bytes_by_stream[Stream.COUNTER_READ]
            < coarse_traffic.report().bytes_by_stream[Stream.COUNTER_READ]
        )


class TestCommonCounters:
    def test_unwritten_region_counter_is_onchip(self):
        engine, traffic = make(CommonCountersEngine, init_written_fraction=0.0)
        engine.on_fill(0, None)
        assert engine.stats.counter_onchip_hits == 1
        assert traffic.report().bytes_by_stream[Stream.COUNTER_READ] == 0

    def test_mac_traffic_unaffected(self):
        """The design's blind spot the paper attacks."""
        engine, traffic = make(CommonCountersEngine, init_written_fraction=0.0)
        engine.on_fill(0, None)
        assert traffic.report().bytes_by_stream[Stream.MAC_READ] == 32

    def test_first_write_demotes_region_forever(self):
        engine, _ = make(CommonCountersEngine, init_written_fraction=0.0)
        engine.on_writeback(0, None)
        assert not engine.counter_is_common(0)
        # The whole 16 KiB region is demoted, not just the sector.
        assert not engine.counter_is_common(engine.region_sectors - 1)
        # The next region is untouched.
        assert engine.counter_is_common(engine.region_sectors)

    def test_init_written_fraction_predemotes(self):
        engine, _ = make(CommonCountersEngine, init_written_fraction=1.0)
        assert not engine.counter_is_common(0)

    def test_warm_counters_demotes(self):
        engine, _ = make(CommonCountersEngine, init_written_fraction=0.0)
        engine.warm_counters(5)
        assert not engine.counter_is_common(5)


class TestPlutusValuePath:
    def hot_values(self):
        return b"\x11\x22\x33\x44" * 8

    def test_value_verified_fill_skips_mac(self):
        engine, traffic = make(PlutusEngine)
        engine.on_fill(0, self.hot_values())  # cold: MAC fetched
        first_mac = traffic.report().mac_bytes
        engine.on_fill(1024, self.hot_values())  # values now resident
        assert engine.stats.value_verified_fills == 1
        assert traffic.report().mac_bytes == first_mac

    def test_fill_without_values_falls_back(self):
        engine, traffic = make(PlutusEngine)
        engine.on_fill(0, None)
        assert engine.stats.value_verified_fills == 0
        assert traffic.report().mac_bytes > 0

    def test_write_verifiable_skips_mac_write(self):
        from repro.secure.value_cache import ValueCacheConfig

        engine, traffic = make(
            PlutusEngine,
            value_cache_config=ValueCacheConfig(pin_threshold=2),
        )
        for i in range(6):  # promote the values to pinned
            engine.on_fill(i * 64, self.hot_values())
        engine.on_writeback(9999, self.hot_values())
        assert engine.stats.mac_writes_avoided == 1

    def test_value_only_configuration(self):
        engine, traffic = make(PlutusEngine, compact_config=None,
                               design=GranularityDesign.BLOCK_128)
        engine.on_fill(0, self.hot_values())
        report = traffic.report()
        assert report.bytes_by_stream[Stream.COMPACT_COUNTER_READ] == 0
        assert report.bytes_by_stream[Stream.COUNTER_READ] == 128


class TestPlutusCompactPath:
    def test_fresh_reads_touch_only_compact_layer(self):
        engine, traffic = make(PlutusEngine)
        engine.on_fill(0, None)
        report = traffic.report()
        assert report.bytes_by_stream[Stream.COMPACT_COUNTER_READ] == 32
        assert report.bytes_by_stream[Stream.COUNTER_READ] == 0

    def test_saturated_sector_costs_both_layers(self):
        engine, traffic = make(PlutusEngine)
        for _ in range(8):  # saturate the 3-bit compact counter
            engine.on_writeback(0, None)
        engine.on_fill(0, None)
        report = traffic.report()
        assert report.bytes_by_stream[Stream.COUNTER_READ] > 0
        assert engine.stats.compact_double_accesses > 0

    def test_warm_counters_advances_both_layers(self):
        engine, _ = make(PlutusEngine)
        for _ in range(5):
            engine.warm_counters(3)
        assert engine.counters.combined(3) == 5
        assert engine.compact.write_count(3) == 5

    def test_compact_density_beats_original(self):
        """Widely-spaced fills: the compact layer (1 sector per 64 data
        sectors) must fetch fewer bytes than the originals would."""
        engine, traffic = make(PlutusEngine, value_cache_config=None)
        pssm, pssm_traffic = make(PssmEngine, design=GranularityDesign.ALL_32)
        for i in range(200):
            engine.on_fill(i * 64, None)
            pssm.on_fill(i * 64, None)
        assert (
            traffic.report().bytes_by_stream[Stream.COMPACT_COUNTER_READ]
            <= pssm_traffic.report().bytes_by_stream[Stream.COUNTER_READ]
        )


class TestPlutusTreeElimination:
    def test_no_tree_traffic_when_eliminated(self):
        engine, traffic = make(PlutusEngine, eliminate_tree=True)
        for i in range(50):
            engine.on_fill(i * 512, None)
            engine.on_writeback(i * 512, None)
        engine.finalize()
        report = traffic.report()
        assert report.tree_bytes == 0

    def test_tree_traffic_present_by_default(self):
        engine, traffic = make(PlutusEngine)
        for i in range(50):
            engine.on_fill(i * 4096, None)
        assert traffic.report().tree_bytes > 0


class TestMinorOverflowInteraction:
    def test_overflow_forces_compact_sectors_to_original(self):
        from repro.metadata.split_counter import SplitCounterConfig
        from repro.metadata.compact import CounterRoute

        traffic = TrafficCounter()
        engine = PlutusEngine(
            0, SECTORS, traffic,
            counter_config=SplitCounterConfig(minor_bits=2, sectors_per_group=4),
        )
        # Writes 1-6 stay compact-only; the 7th saturates and starts
        # advancing the original minor, which overflows 4 writes later.
        for _ in range(12):
            engine.on_writeback(0, None)
        assert engine.stats.minor_overflows >= 1
        # Sectors sharing the major must now bypass the compact layer.
        plan = engine.compact.plan_read(1)
        assert plan.route is CounterRoute.COMPACT_THEN_ORIGINAL
