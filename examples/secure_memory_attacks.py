#!/usr/bin/env python3
"""Attack lab: every threat-model attack against the functional memory.

The paper's threat model (Section IV-A) defends against physical attacks
on off-chip memory: spoofing (inject data), splicing (move valid
ciphertext+MAC elsewhere), and replay (restore a stale snapshot). This
example mounts each attack against the really-encrypted
:class:`repro.secure.SecureMemory` and shows the exact mechanism that
catches it — including the paper's key observation that AES-XTS
tampering diffuses across the whole cipher block, which is what makes
value-based verification sound, while counter-mode tampering is
surgically malleable.

Run:
    python examples/secure_memory_attacks.py
"""

from repro.common.bitops import xor_bytes
from repro.common.errors import IntegrityError, ReplayError
from repro.crypto import AesXts, CounterModeCipher, make_tweak
from repro.secure import SecureMemory


def show(title: str) -> None:
    print(f"\n--- {title} ---")


def malleability_demo() -> None:
    show("Why AES-XTS? Malleability of CME vs diffusion of XTS")
    plaintext = bytes(range(32))
    tweak = make_tweak(0x2000, 7)

    cme = CounterModeCipher(b"\x01" * 16)
    ct = cme.encrypt(plaintext, tweak)
    flipped = xor_bytes(ct, b"\x01" + b"\x00" * 31)  # flip bit 0
    recovered = cme.decrypt(flipped, tweak)
    diff = sum(a != b for a, b in zip(recovered, plaintext))
    print(f"CME: flipping 1 ciphertext bit changes {diff} plaintext byte(s)"
          f" -> attacker flips exactly the bits they want")

    xts = AesXts(b"\x02" * 32)
    ct = xts.encrypt(plaintext, tweak)
    flipped = xor_bytes(ct, b"\x01" + b"\x00" * 31)
    recovered = xts.decrypt(flipped, tweak)
    diff = sum(a != b for a, b in zip(recovered[:16], plaintext[:16]))
    print(f"XTS: flipping 1 ciphertext bit randomizes {diff}/16 bytes of the"
          f" cipher block -> tampered values cannot hit the value cache")


def spoofing_attack(memory: SecureMemory) -> None:
    show("Spoofing: overwrite ciphertext with attacker bytes")
    memory.write(0x0, b"A" * 32)
    memory.dram.write(0x0, b"\xde\xad\xbe\xef" * 8)
    try:
        memory.read(0x0, 32)
        print("UNDETECTED - this must not happen")
    except IntegrityError as exc:
        print(f"detected: {exc}")
    memory.write(0x0, b"A" * 32)  # heal for the next attack


def splicing_attack(memory: SecureMemory) -> None:
    show("Splicing: move valid ciphertext+MAC to another address")
    memory.write(0x100, b"B" * 32)
    memory.write(0x200, b"C" * 32)
    # Copy sector 0x100's ciphertext AND its stored MAC onto 0x200.
    memory.dram.splice(dst=0x200, src=0x100, length=32)
    memory.mac_store.splice(dst_sector=0x200 // 32, src_sector=0x100 // 32)
    try:
        data = memory.read(0x200, 32)
        print(f"UNDETECTED - read returned {data!r}")
    except IntegrityError as exc:
        print(f"detected (address-bound tweak & MAC): {exc}")


def replay_attack(memory: SecureMemory) -> None:
    show("Replay: restore a stale (ciphertext, MAC, counter) snapshot")
    memory.write(0x300, b"balance: $1,000,000.00 (v1)....."[:32])
    snapshot = memory.snapshot_sector(0x300)
    memory.write(0x300, b"balance: $0000000000.17 (v2)...."[:32])
    memory.replay_sector(0x300, *snapshot)
    try:
        memory.read(0x300, 32)
        print("UNDETECTED - stale data accepted")
    except ReplayError as exc:
        print(f"detected (Merkle tree over counters): {exc}")


def value_verification_flow(memory: SecureMemory) -> None:
    show("Plutus flow: hot values skip the MAC entirely")
    hot = (b"\x00\x00\x80\x3f" * 8)  # 1.0f repeated: classic GPU data
    for i in range(20):  # make the values hot in the value cache
        memory.write(0x400 + 32 * i, hot)
    data = memory.read(0x400, 32)
    flow = memory.last_flow
    print(f"read ok: value_verified={flow.value_verified} "
          f"mac_checked={flow.mac_verified} (MAC avoided: {flow.mac_avoided})")
    assert data == hot
    print(f"lifetime: {memory.mac_checks_avoided} MAC checks avoided, "
          f"{memory.mac_checks} performed")


def main() -> None:
    malleability_demo()
    memory = SecureMemory(1024 * 1024, mode="plutus")
    spoofing_attack(memory)
    splicing_attack(memory)
    replay_attack(memory)
    value_verification_flow(memory)
    print("\nAll attacks detected; honest traffic verified.")


if __name__ == "__main__":
    main()
