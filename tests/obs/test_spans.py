"""Tests for the hierarchical span profiler and its exports."""

import json

import pytest

from repro.obs import (
    CHROME_TRACE_SCHEMA,
    NULL_SPAN_PROFILER,
    ObsConfig,
    ObsSession,
    SpanProfiler,
    chrome_trace,
    collapsed_stacks,
    hotspot_tree,
    render_hotspots,
    write_chrome_trace,
    write_collapsed,
)


class ManualClock:
    """A clock tests advance by hand for deterministic timings."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_profiler(**kwargs):
    wall, cpu = ManualClock(), ManualClock()
    return SpanProfiler(clock=wall, cpu_clock=cpu, **kwargs), wall, cpu


class TestNesting:
    def test_child_time_subtracts_from_parent_self(self):
        prof, wall, cpu = make_profiler()
        with prof.span("parent"):
            wall.advance(1.0)
            cpu.advance(0.5)
            with prof.span("child"):
                wall.advance(2.0)
                cpu.advance(1.0)
            wall.advance(3.0)
            cpu.advance(1.5)
        stats = prof.stats()
        parent = stats[("parent",)]
        child = stats[("parent", "child")]
        assert parent.wall_s == pytest.approx(6.0)
        assert child.wall_s == pytest.approx(2.0)
        assert parent.child_wall_s == pytest.approx(2.0)
        assert parent.self_wall_s == pytest.approx(4.0)
        assert parent.self_cpu_s == pytest.approx(2.0)

    def test_children_sum_never_exceeds_parent(self):
        prof, wall, _ = make_profiler()
        with prof.span("p"):
            for _ in range(5):
                with prof.span("c"):
                    wall.advance(0.5)
                wall.advance(0.1)
        stats = prof.stats()
        parent = stats[("p",)]
        child = stats[("p", "c")]
        assert child.wall_s <= parent.wall_s
        assert parent.self_wall_s == pytest.approx(
            parent.wall_s - child.wall_s
        )

    def test_same_name_at_different_depths_is_distinct(self):
        prof, wall, _ = make_profiler()
        with prof.span("verify"):
            wall.advance(1.0)
            with prof.span("verify"):
                wall.advance(1.0)
        stats = prof.stats()
        assert ("verify",) in stats
        assert ("verify", "verify") in stats
        assert stats[("verify",)].calls == 1
        assert stats[("verify", "verify")].calls == 1

    def test_counters_attach_to_innermost_open_span(self):
        prof, _, _ = make_profiler()
        with prof.span("outer"):
            prof.add("outer_events", 1)
            with prof.span("inner"):
                prof.add("levels", 3)
                prof.add("levels", 2)
        stats = prof.stats()
        assert stats[("outer", "inner")].counters == {"levels": 5}
        assert stats[("outer",)].counters == {"outer_events": 1}

    def test_add_outside_any_span_is_a_noop(self):
        prof, _, _ = make_profiler()
        prof.add("orphan", 7)
        with prof.span("s"):
            pass
        assert stats_counters(prof) == [{}]

    def test_exception_still_closes_span(self):
        prof, wall, _ = make_profiler()
        with pytest.raises(RuntimeError):
            with prof.span("doomed"):
                wall.advance(1.0)
                raise RuntimeError("boom")
        assert prof.open_spans() == []
        assert prof.stats()[("doomed",)].wall_s == pytest.approx(1.0)


def stats_counters(prof):
    return [st.counters for st in prof.stats().values()]


class TestIrregularLifecycles:
    def test_unclosed_span_is_reported(self):
        prof, _, _ = make_profiler()
        ctx = prof.span("leaked")
        ctx.__enter__()
        assert prof.open_spans() == ["leaked"]
        assert prof.stats() == {}

    def test_out_of_order_exit_force_closes_intervening(self):
        prof, wall, _ = make_profiler()
        outer = prof.span("outer")
        inner = prof.span("inner")
        outer.__enter__()
        inner.__enter__()
        wall.advance(1.0)
        outer.__exit__(None, None, None)  # inner never exited
        assert prof.forced_closes == 1
        assert prof.open_spans() == []
        assert set(prof.stats()) == {("outer",), ("outer", "inner")}
        # The straggler exit is tolerated, not double-counted.
        inner.__exit__(None, None, None)
        assert prof.stats()[("outer", "inner")].calls == 1

    def test_record_ring_bounds_and_counts_drops(self):
        prof, wall, _ = make_profiler(max_records=4)
        for _ in range(10):
            with prof.span("s"):
                wall.advance(0.1)
        assert len(prof) == 4
        assert prof.recorded == 10
        assert prof.dropped == 6
        # Aggregates never drop.
        assert prof.stats()[("s",)].calls == 10

    def test_max_records_validated(self):
        with pytest.raises(ValueError):
            SpanProfiler(max_records=0)


class TestRecords:
    def test_record_carries_path_timing_and_args(self):
        prof, wall, cpu = make_profiler()
        wall.advance(5.0)
        with prof.span("run", benchmark="bfs"):
            prof.add("events", 42)
            wall.advance(1.5)
            cpu.advance(1.0)
        (record,) = prof.records()
        assert record["path"] == ("run",)
        assert record["ts"] == pytest.approx(5.0)
        assert record["wall_s"] == pytest.approx(1.5)
        assert record["cpu_s"] == pytest.approx(1.0)
        assert record["args"] == {"benchmark": "bfs", "events": 42}


class TestNullTwin:
    def test_null_profiler_is_inert(self):
        with NULL_SPAN_PROFILER.span("x", attr=1):
            NULL_SPAN_PROFILER.add("c", 5)
        assert not NULL_SPAN_PROFILER.enabled
        assert len(NULL_SPAN_PROFILER) == 0
        assert NULL_SPAN_PROFILER.stats() == {}
        assert NULL_SPAN_PROFILER.open_spans() == []
        assert list(NULL_SPAN_PROFILER.records()) == []
        assert NULL_SPAN_PROFILER.dropped == 0

    def test_disabled_session_hands_out_null_profiler(self):
        session = ObsSession(ObsConfig())
        assert session.profiler is NULL_SPAN_PROFILER

    def test_spans_opt_out_with_enabled_session(self):
        session = ObsSession(ObsConfig(enabled=True, spans=False))
        assert session.profiler is NULL_SPAN_PROFILER

    def test_enabled_session_phase_records_a_span(self):
        session = ObsSession(ObsConfig(enabled=True))
        with session.phase("build_trace", benchmark="bfs"):
            pass
        assert ("build_trace",) in session.profiler.stats()


class TestHotspotTree:
    def test_tree_structure_and_ordering(self):
        prof, wall, _ = make_profiler()
        with prof.span("root"):
            with prof.span("light"):
                wall.advance(1.0)
            with prof.span("heavy"):
                wall.advance(5.0)
        (root,) = hotspot_tree(prof)
        assert root.stats.name == "root"
        assert [c.stats.name for c in root.children] == ["heavy", "light"]

    def test_orphans_promote_past_unclosed_parent(self):
        prof, wall, _ = make_profiler()
        leak = prof.span("leak")
        leak.__enter__()
        with prof.span("child"):
            wall.advance(1.0)
        # "leak" never closed: ("leak", "child") has no aggregated
        # parent, so the child becomes a root instead of vanishing.
        roots = hotspot_tree(prof)
        assert [r.stats.name for r in roots] == ["child"]

    def test_render_mentions_spans_and_diagnostics(self):
        prof, wall, _ = make_profiler(max_records=2)
        outer = prof.span("outer")
        inner = prof.span("inner")
        outer.__enter__()
        inner.__enter__()
        wall.advance(1.0)
        outer.__exit__(None, None, None)
        for _ in range(5):
            with prof.span("noise"):
                wall.advance(0.1)
        leak = prof.span("open_one")
        leak.__enter__()
        text = render_hotspots(prof)
        assert "outer" in text and "inner" in text
        assert "unclosed spans: open_one" in text
        assert "force-closed out-of-order spans: 1" in text
        assert "dropped" in text

    def test_render_empty_profile(self):
        prof, _, _ = make_profiler()
        assert "(no spans recorded)" in render_hotspots(prof)


class TestExports:
    def build(self):
        prof, wall, cpu = make_profiler()
        with prof.span("replay"):
            with prof.span("fill"):
                wall.advance(0.25)
                cpu.advance(0.2)
            wall.advance(0.75)
        return prof

    def test_collapsed_stacks_self_time_microseconds(self):
        prof = self.build()
        lines = collapsed_stacks(prof)
        assert "replay;fill 250000" in lines
        assert "replay 750000" in lines

    def test_collapsed_omits_zero_self_frames(self):
        prof, wall, _ = make_profiler()
        with prof.span("shell"):  # all time inside the child
            with prof.span("work"):
                wall.advance(1.0)
        lines = collapsed_stacks(prof)
        assert lines == ["shell;work 1000000"]

    def test_chrome_trace_shape(self):
        prof = self.build()
        payload = chrome_trace(prof)
        meta = payload["metadata"]
        assert meta["schema"] == CHROME_TRACE_SCHEMA
        assert meta["recorded"] == 2
        assert meta["dropped"] == 0
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        fill = next(e for e in complete if e["name"] == "fill")
        assert fill["cat"] == "replay"
        assert fill["dur"] == pytest.approx(0.25 * 1e6)

    def test_writers_are_atomic_and_report_counts(self, tmp_path):
        prof = self.build()
        chrome_path = tmp_path / "trace.json"
        collapsed_path = tmp_path / "collapsed.txt"
        n_events = write_chrome_trace(str(chrome_path), prof)
        n_stacks = write_collapsed(str(collapsed_path), prof)
        payload = json.loads(chrome_path.read_text())
        assert len(payload["traceEvents"]) == n_events == 3
        assert len(collapsed_path.read_text().splitlines()) == n_stacks == 2
