"""Property-based security tests (hypothesis).

These exercise the paper's core security argument empirically: random
tampering of AES-XTS ciphertext never slips past the combined
value-check + MAC verification, and the value cache's statistical
machinery behaves per Eq. 1.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import split_values
from repro.common.errors import IntegrityError, ReplayError, SecurityViolation
from repro.crypto.xts import AesXts
from repro.secure.functional import SecureMemory
from repro.secure.value_cache import ValueCache, ValueCacheConfig

sector_data = st.binary(min_size=32, max_size=32)
nonzero_masks = st.binary(min_size=32, max_size=32).filter(
    lambda b: any(b)
)


@settings(max_examples=25, deadline=None)
@given(data=sector_data, mask=nonzero_masks)
def test_any_nonzero_tamper_is_detected(data, mask):
    """No single-sector ciphertext corruption survives verification."""
    memory = SecureMemory(4096, mode="plutus")
    memory.write(0, data)
    memory.tamper_data(0, mask)
    with pytest.raises(SecurityViolation):
        memory.read(0, 32)


@settings(max_examples=25, deadline=None)
@given(data=sector_data)
def test_honest_roundtrip_always_succeeds(data):
    memory = SecureMemory(4096, mode="plutus")
    memory.write(32, data)
    assert memory.read(32, 32) == data


@settings(max_examples=25, deadline=None)
@given(first=sector_data, second=sector_data)
def test_replay_always_detected(first, second):
    memory = SecureMemory(4096, mode="plutus")
    memory.write(64, first)
    snapshot = memory.snapshot_sector(64)
    memory.write(64, second)
    memory.replay_sector(64, *snapshot)
    try:
        recovered = memory.read(64, 32)
    except (ReplayError, IntegrityError):
        return  # detected
    # Only acceptable if nothing actually changed (identical states).
    assert recovered == second and first == second


@settings(max_examples=40, deadline=None)
@given(
    key=st.binary(min_size=32, max_size=32),
    plaintext=sector_data,
    flip_byte=st.integers(min_value=0, max_value=31),
    flip_bit=st.integers(min_value=0, max_value=7),
)
def test_xts_tamper_diffusion_breaks_value_locality(
    key, plaintext, flip_byte, flip_bit
):
    """The Section IV-C argument: a tampered cipher block decrypts to
    values that no longer match the originals (with overwhelming
    probability over random keys)."""
    xts = AesXts(key)
    tweak = (5).to_bytes(16, "little")
    ciphertext = bytearray(xts.encrypt(plaintext, tweak))
    ciphertext[flip_byte] ^= 1 << flip_bit
    recovered = xts.decrypt(bytes(ciphertext), tweak)

    block = flip_byte // 16
    original_values = split_values(plaintext, 4)[4 * block : 4 * block + 4]
    tampered_values = split_values(recovered, 4)[4 * block : 4 * block + 4]
    # At most one of the four 32-bit values may coincide by chance
    # (expected ~0 at 2^-32 each); 3-of-4 matching is astronomically
    # unlikely, which is exactly the Eq. 1 margin.
    matches = sum(
        1 for a, b in zip(original_values, tampered_values) if a == b
    )
    assert matches <= 1


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                       min_size=8, max_size=8))
def test_observed_sector_always_verifies(values):
    """Self-consistency: a sector whose values were all just observed
    must pass the value check."""
    cache = ValueCache(ValueCacheConfig())
    cache.observe_many(values)
    assert cache.verify_sector(values)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_random_sector_never_verifies_against_cold_cache(seed):
    import numpy as np

    cache = ValueCache(ValueCacheConfig())
    rng = np.random.default_rng(seed)
    values = [int(v) for v in rng.integers(0, 2**32, size=8)]
    assert not cache.verify_sector(values)
