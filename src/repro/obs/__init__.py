"""Observability layer: metrics registry, event tracing, profiling hooks.

Everything here is zero-dependency and *opt-in*: the pipeline's
instrumentation sites bind to the :func:`active` session at construction
time, and the default session is disabled — hooks reduce to a single
check, keeping figure outputs and test timings identical to an
uninstrumented build. See docs/ARCHITECTURE.md § Observability.
"""

from repro.obs.config import DISABLED, ObsConfig
from repro.obs.export import (
    METRICS_SCHEMA,
    metrics_payload,
    sampler_compactions,
    summary_block,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.hotspots import (
    CHROME_TRACE_SCHEMA,
    chrome_trace,
    collapsed_stacks,
    hotspot_tree,
    render_hotspots,
    write_chrome_trace,
    write_collapsed,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sampler,
)
from repro.obs.session import DISABLED_SESSION, ObsSession, activate, active
from repro.obs.spans import (
    NULL_SPAN_PROFILER,
    NullSpanProfiler,
    SpanProfiler,
    SpanStats,
)
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer

__all__ = [
    "SpanProfiler",
    "SpanStats",
    "NullSpanProfiler",
    "NULL_SPAN_PROFILER",
    "CHROME_TRACE_SCHEMA",
    "hotspot_tree",
    "render_hotspots",
    "collapsed_stacks",
    "chrome_trace",
    "write_chrome_trace",
    "write_collapsed",
    "sampler_compactions",
    "summary_block",
    "ObsConfig",
    "DISABLED",
    "ObsSession",
    "DISABLED_SESSION",
    "active",
    "activate",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Sampler",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "METRICS_SCHEMA",
    "metrics_payload",
    "write_metrics_json",
    "write_trace_jsonl",
]
