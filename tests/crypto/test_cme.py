"""Counter-mode encryption tests, including the malleability contrast."""

import pytest

from repro.crypto.cme import CounterModeCipher
from repro.crypto.tweak import make_tweak


class TestBasics:
    def test_roundtrip(self):
        cme = CounterModeCipher(b"\x07" * 16)
        data = b"the quick brown fox jumps over.."
        tweak = make_tweak(0x100, 3)
        assert cme.decrypt(cme.encrypt(data, tweak), tweak) == data

    def test_encrypt_decrypt_are_same_operation(self):
        cme = CounterModeCipher(b"\x07" * 16)
        data, tweak = b"\xaa" * 32, make_tweak(0, 0)
        assert cme.encrypt(data, tweak) == cme.decrypt(data, tweak)

    def test_arbitrary_lengths(self):
        cme = CounterModeCipher(b"\x07" * 16)
        tweak = make_tweak(0x40, 1)
        for length in (1, 15, 16, 17, 100):
            data = bytes(range(length % 256))[:length]
            assert cme.decrypt(cme.encrypt(data, tweak), tweak) == data

    def test_bad_tweak_length(self):
        with pytest.raises(ValueError):
            CounterModeCipher(b"\x00" * 16).generate_pad(b"\x00" * 8, 16)


class TestPadProperties:
    def test_pad_is_deterministic(self):
        cme = CounterModeCipher(b"\x01" * 16)
        tweak = make_tweak(0x80, 5)
        assert cme.generate_pad(tweak, 64) == cme.generate_pad(tweak, 64)

    def test_pad_prefix_property(self):
        """A longer pad extends a shorter one (CTR block sequencing)."""
        cme = CounterModeCipher(b"\x01" * 16)
        tweak = make_tweak(0x80, 5)
        assert cme.generate_pad(tweak, 64)[:32] == cme.generate_pad(tweak, 32)

    def test_different_counters_give_different_pads(self):
        cme = CounterModeCipher(b"\x01" * 16)
        assert cme.generate_pad(make_tweak(0x80, 5), 32) != cme.generate_pad(
            make_tweak(0x80, 6), 32
        )

    def test_different_addresses_give_different_pads(self):
        cme = CounterModeCipher(b"\x01" * 16)
        assert cme.generate_pad(make_tweak(0x80, 5), 32) != cme.generate_pad(
            make_tweak(0xC0, 5), 32
        )


class TestMalleability:
    """CME is bit-malleable — the paper's reason for moving to XTS."""

    def test_bit_flip_maps_to_exact_plaintext_bit(self):
        cme = CounterModeCipher(b"\x0f" * 16)
        data = bytes(32)
        tweak = make_tweak(0x200, 9)
        ct = bytearray(cme.encrypt(data, tweak))
        ct[5] ^= 0x10  # flip exactly one ciphertext bit
        recovered = cme.decrypt(bytes(ct), tweak)
        assert recovered[5] == 0x10  # the same single bit flipped
        assert recovered[:5] == data[:5]
        assert recovered[6:] == data[6:]

    def test_attacker_can_add_constant(self):
        """Demonstrates the dictionary-free surgical edit CME allows."""
        cme = CounterModeCipher(b"\x0f" * 16)
        data = b"\x01" + bytes(31)
        tweak = make_tweak(0x240, 2)
        ct = bytearray(cme.encrypt(data, tweak))
        ct[0] ^= 0x03  # attacker knows: flips plaintext bits 0 and 1
        assert cme.decrypt(bytes(ct), tweak)[0] == 0x02
