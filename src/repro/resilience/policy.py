"""Failure taxonomy and the retry-with-backoff policy.

Extends PR 3's shard-level classes (crash / timeout / deterministic)
to whole work units:

* ``DETERMINISTIC`` — a :class:`~repro.common.errors.ReproError`: the
  library itself rejected the work. Retrying replays the same inputs
  into the same code, so the policy never retries these.
* ``CRASH`` — any other exception (including
  :class:`MemoryError` and chaos-mode kills): environmental, retried.
* ``TIMEOUT`` — the per-unit wall-clock bound tripped
  (:class:`~repro.common.errors.UnitTimeoutError`): load, retried.
* ``BUDGET`` — a campaign-wide resource budget was exhausted
  (:class:`~repro.common.errors.BudgetExceededError`): never retried;
  the supervisor degrades gracefully instead.

Backoff is exponential with *seeded* jitter: the delay for a given
(unit, attempt) is a pure function of the policy seed, so a re-run of
a flaky campaign sleeps the same schedule — reproducibility extends to
the supervisor's own timing decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet

from repro.common.errors import (
    BudgetExceededError,
    ReproError,
    ResilienceError,
    UnitTimeoutError,
)


class FailureClass(Enum):
    """Why one unit attempt failed, and therefore what to do next."""

    DETERMINISTIC = "deterministic"
    CRASH = "crash"
    TIMEOUT = "timeout"
    BUDGET = "budget"


def classify_failure(exc: BaseException) -> FailureClass:
    """Map one exception onto the retry taxonomy.

    Order matters: the resilience-specific :class:`ReproError`
    subclasses (timeout, budget) are *not* deterministic and must be
    recognized before the generic base class.
    """
    if isinstance(exc, UnitTimeoutError):
        return FailureClass.TIMEOUT
    if isinstance(exc, BudgetExceededError):
        return FailureClass.BUDGET
    if isinstance(exc, ReproError):
        return FailureClass.DETERMINISTIC
    return FailureClass.CRASH


#: Classes worth another attempt (environmental, not logical).
RETRYABLE: FrozenSet[FailureClass] = frozenset(
    {FailureClass.CRASH, FailureClass.TIMEOUT}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-unit attempts and the backoff schedule between them."""

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff_factor: float = 2.0
    #: Jitter amplitude as a fraction of the exponential delay: the
    #: slept delay is ``delay * (1 ± jitter)``, drawn from the seeded
    #: per-(unit, attempt) stream.
    jitter: float = 0.25
    seed: int = 2023
    retryable: FrozenSet[FailureClass] = field(default=RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ResilienceError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ResilienceError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError("jitter must be within [0, 1]")

    def should_retry(self, failure: FailureClass, attempt: int) -> bool:
        """Whether attempt *attempt* (1-based) warrants another try."""
        return failure in self.retryable and attempt < self.max_attempts

    def backoff_delay(self, unit_id: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt *attempt* (1-based)."""
        base = min(
            self.max_delay_s,
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
        )
        rng = random.Random(f"{self.seed}:{unit_id}:{attempt}")
        return max(0.0, base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0)))
