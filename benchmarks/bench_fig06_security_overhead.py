"""Fig. 6: IPC of the PSSM-secured GPU normalized to no security.

Paper shape: secured IPC well below 1.0 across the roster, with the
irregular (graph) benchmarks losing the most.
"""

from conftest import run_once

from repro.harness.experiments import run_fig06
from repro.harness.report import render_experiment


def test_fig06_security_overhead(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig06(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    # Every benchmark pays for security; irregular ones pay the most.
    assert result.summary["max"] < 1.0
    ipc = {r["benchmark"]: r["ipc_normalized"] for r in result.rows}
    assert ipc["bfs"] < ipc["lbm"]
