"""Hypothesis property tests riding on the conformance subsystem.

Two metamorphic properties from the issue:

* **Warmup invariance** — measured traffic is independent of
  ``counter_warmup_passes`` for engines without saturating warmup
  state (nosec, pssm), provided no split counter crosses its minor
  overflow (64 writes per sector): logs are constrained to at most 8
  writes per sector and warmup depth at most 5, so the worst case is
  8 x (5 + 1) = 48 < 64 increments.
* **Value-cache monotonicity** — with pinning disabled the value cache
  is pure LRU, whose inclusion property makes hits (and therefore
  value-verified fills) nondecreasing in cache size for the same
  probe/observe sequence.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.conformance.fuzzer import rebuild_log
from repro.gpu.config import VOLTA
from repro.gpu.simulator import (
    EventKind,
    MemoryEvent,
    MemoryEventLog,
    replay_events,
)
from repro.harness.runner import EngineSpec
from repro.secure.engine import NoSecurityEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine
from repro.secure.value_cache import ValueCache, ValueCacheConfig

MAX_WRITES_PER_SECTOR = 8
MAX_WARMUP = 5

_event = st.tuples(
    st.booleans(),                   # fill?
    st.integers(min_value=0, max_value=1),   # partition
    st.integers(min_value=0, max_value=11),  # sector
)


def _bounded_events(draw_events):
    """Cap writebacks at MAX_WRITES_PER_SECTOR per (partition, sector)."""
    writes = Counter()
    value = bytes(range(32))
    events = []
    for fill, partition, sector in draw_events:
        kind = EventKind.FILL if fill else EventKind.WRITEBACK
        if kind is EventKind.WRITEBACK:
            if writes[(partition, sector)] >= MAX_WRITES_PER_SECTOR:
                kind = EventKind.FILL
            else:
                writes[(partition, sector)] += 1
        events.append(MemoryEvent(kind, partition, sector, value))
    return events


def _log_from(draw_events, warmup=0):
    base = MemoryEventLog(
        trace_name="prop", memory_intensity=0.5, instructions=1,
        counter_warmup_passes=warmup,
    )
    return rebuild_log(base, _bounded_events(draw_events))


class TestWarmupInvariance:
    @given(st.lists(_event, min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_traffic_independent_of_warmup(self, raw_events):
        log = _log_from(raw_events)
        for spec in (EngineSpec(NoSecurityEngine), EngineSpec(PssmEngine)):
            reports = [
                replay_events(
                    log, spec, VOLTA, counter_warmup_passes=passes
                ).traffic
                for passes in (0, 2, MAX_WARMUP)
            ]
            reference = reports[0]
            for report in reports[1:]:
                assert report.bytes_by_stream == reference.bytes_by_stream
                assert (
                    report.transactions_by_stream
                    == reference.transactions_by_stream
                )


_value = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestValueCacheMonotonicity:
    @given(
        st.lists(
            st.lists(_value, min_size=8, max_size=8), min_size=4, max_size=40
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hit_rate_nondecreasing_in_entries(self, sectors):
        # Probe both units of every sector (check_unit, not
        # verify_sector — the latter short-circuits after a failed
        # unit, which would make probe counts size-dependent), then
        # observe, mirroring the fill path's state updates.
        caches = [
            ValueCache(ValueCacheConfig(entries=n, pinned_fraction=0.0))
            for n in (16, 64, 256)
        ]
        for cache in caches:
            for values in sectors:
                cache.check_unit(values[:4])
                cache.check_unit(values[4:])
                cache.observe_many(values)
        # Identical probe sequences, so hit-rate order is hit order.
        probes = {cache.stats.probes for cache in caches}
        assert len(probes) == 1
        hits = [cache.stats.hits for cache in caches]
        assert hits == sorted(hits)
        rates = [cache.stats.hit_rate for cache in caches]
        assert rates == sorted(rates)

    @given(
        st.lists(
            st.lists(_value, min_size=8, max_size=8), min_size=4, max_size=30
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_verified_sectors_nondecreasing_in_entries(self, sectors):
        # The fill path proper (verify_sector short-circuit included):
        # verified-sector counts still order by cache size, because a
        # bigger LRU cache holds a superset of a smaller one.
        caches = [
            ValueCache(ValueCacheConfig(entries=n, pinned_fraction=0.0))
            for n in (16, 64, 256)
        ]
        for cache in caches:
            for values in sectors:
                cache.verify_sector(values)
                cache.observe_many(values)
        verified = [cache.stats.sectors_verified for cache in caches]
        assert verified == sorted(verified)

    @given(
        st.lists(_event, min_size=10, max_size=60),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=10, deadline=None)
    def test_engine_verified_fills_nondecreasing(self, raw_events, seed):
        import random

        rng = random.Random(seed)
        pool = [rng.getrandbits(256).to_bytes(32, "little") for _ in range(6)]
        base = MemoryEventLog(
            trace_name="vmono", memory_intensity=0.5, instructions=1
        )
        events = [
            MemoryEvent(
                EventKind.FILL if fill else EventKind.WRITEBACK,
                partition, sector, rng.choice(pool),
            )
            for fill, partition, sector in raw_events
        ]
        log = rebuild_log(base, events)
        verified = []
        for entries in (16, 64, 256):
            spec = EngineSpec(
                PlutusEngine,
                value_cache_config=ValueCacheConfig(
                    entries=entries, pinned_fraction=0.0
                ),
            )
            result = replay_events(log, spec, VOLTA)
            verified.append(result.engine_stats.value_verified_fills)
        assert verified == sorted(verified)
