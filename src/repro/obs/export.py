"""Serialization of collected metrics and traces.

Two stable on-disk formats:

* ``metrics.json`` — one object: a schema tag, the originating
  :class:`~repro.obs.config.ObsConfig`, every registry instrument under
  ``metrics`` (keyed by dotted name), and a free-form ``extra`` section
  for caller headline numbers.
* ``events.jsonl`` — the tracer's ring buffer, one JSON event per line
  (schema documented in docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.common.atomicio import atomic_write_text
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import EventTracer

#: Version tag for the metrics JSON layout.
METRICS_SCHEMA = "repro.obs/1"


def metrics_payload(
    registry: MetricsRegistry,
    config: Optional[ObsConfig] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON-able object ``write_metrics_json`` persists."""
    return {
        "schema": METRICS_SCHEMA,
        "config": config.as_dict() if config is not None else None,
        "metrics": registry.as_dict(),
        "extra": extra or {},
    }


def write_metrics_json(
    path: str,
    registry: MetricsRegistry,
    config: Optional[ObsConfig] = None,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    """Dump a registry (plus headline extras) as one JSON document.

    The write is crash-atomic (same-directory temp file + rename): a
    kill mid-export never leaves a torn metrics file behind.
    """
    text = json.dumps(
        metrics_payload(registry, config, extra), indent=2, sort_keys=True
    )
    atomic_write_text(path, text + "\n")


def write_trace_jsonl(path: str, tracer: EventTracer) -> int:
    """Dump the tracer ring buffer as JSONL; returns lines written.

    Crash-atomic like :func:`write_metrics_json`.
    """
    lines = list(tracer.to_jsonl())
    atomic_write_text(path, "".join(line + "\n" for line in lines))
    return len(lines)
