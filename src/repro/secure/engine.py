"""Secure-memory engine interface and shared metadata machinery.

A *partition engine* sits where the paper's per-partition security
engines sit: between the L2 bank and the DRAM channel. The GPU simulator
feeds it two event kinds —

* ``on_fill(sector, values)``: a data sector is being fetched from DRAM
  (L2 read miss) and must be verified/decrypted;
* ``on_writeback(sector, values)``: a dirty data sector is leaving the
  chip and must be encrypted/authenticated;

— and the engine responds by generating security-metadata traffic into
the partition's :class:`~repro.mem.traffic.TrafficCounter`. Data traffic
itself is accounted by the caller; engines add only the security cost,
which keeps "no security" vs "PSSM" vs "Plutus" trivially comparable.

:class:`MetadataEngine` implements the machinery every design shares:
sectored counter/MAC/BMT caches (2 kB each per partition, Table II),
split counters, lazy BMT maintenance, and the eviction plumbing between
them. Concrete designs (:mod:`repro.secure.pssm`,
:mod:`repro.secure.plutus`, :mod:`repro.secure.common_counters`)
specialize the read/write flows.
"""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.mem.cache import CacheConfig, SectoredCache
from repro.mem.traffic import Stream, TrafficCounter
from repro.obs.session import active as _obs_active
from repro.metadata.bmt import BmtTraversal
from repro.metadata.layout import GranularityDesign, MetadataLayout
from repro.metadata.split_counter import SplitCounterConfig, SplitCounterStore


@dataclass
class EngineStats:
    """Event counts shared across engine designs."""

    fills: int = 0
    writebacks: int = 0
    counter_fetches: int = 0
    counter_onchip_hits: int = 0
    mac_fetches: int = 0
    mac_fetches_avoided: int = 0
    mac_writes_avoided: int = 0
    value_verified_fills: int = 0
    value_check_failures: int = 0
    compact_only_accesses: int = 0
    compact_double_accesses: int = 0
    original_only_accesses: int = 0
    compact_disable_events: int = 0
    minor_overflows: int = 0
    reencrypted_sectors: int = 0
    wal_appends: int = 0


@dataclass(frozen=True)
class MetadataCacheConfig:
    """Per-partition metadata cache sizing (Table II defaults)."""

    size_bytes: int = 2048
    line_bytes: int = 128
    ways: int = 4
    sector_bytes: int = 32
    sectored: bool = True

    def build(self, name: str) -> SectoredCache:
        return SectoredCache(
            CacheConfig(
                name=name,
                size_bytes=self.size_bytes,
                line_bytes=self.line_bytes,
                ways=self.ways,
                sector_bytes=self.sector_bytes,
                sectored=self.sectored,
            )
        )


class PartitionEngine:
    """Interface of one partition's security engine."""

    #: Human-readable design name, overridden by subclasses.
    name = "abstract"

    def __init__(self, partition_id: int, data_sectors: int,
                 traffic: TrafficCounter) -> None:
        self.partition_id = partition_id
        self.data_sectors = data_sectors
        self.traffic = traffic
        self.stats = EngineStats()
        #: Observability session captured at construction (disabled
        #: singleton by default); subclasses emit tracer events and the
        #: replay loop polls :meth:`obs_snapshot` through it.
        self.obs = _obs_active()
        #: Span profiler for per-operation hot-path spans, or None
        #: unless ``span_detail`` profiling is on — the metadata paths
        #: guard on this single attribute.
        self._prof = (
            self.obs.profiler
            if self.obs.config.span_detail_active else None
        )

    #: True when the engine overrides the batch hooks with a genuinely
    #: vectorized implementation; the default hooks replay the scalar
    #: calls in order, so stateful engines stay byte-identical without
    #: opting in. The bench records this per design point.
    batch_native = False

    def on_fill(self, sector_index: int, values: Optional[bytes]) -> None:
        """Handle a data-sector fetch from DRAM (L2 read miss)."""
        raise NotImplementedError

    def on_writeback(self, sector_index: int, values: Optional[bytes]) -> None:
        """Handle a dirty data-sector eviction to DRAM."""
        raise NotImplementedError

    # -- batch hooks (columnar replay) -----------------------------------
    #
    # The columnar replay path delivers consecutive same-kind events of
    # one partition as a single call. The contract is strict: a batch
    # call must leave the engine in exactly the state the equivalent
    # sequence of scalar calls would, so the defaults below are the
    # scalar loop and only stateless (or order-free) designs override.

    def on_fill_batch(self, sector_indices, values) -> None:
        """Handle a run of fills (scalar fallback: in-order replay)."""
        on_fill = self.on_fill
        for sector_index, image in zip(sector_indices, values):
            on_fill(sector_index, image)

    def on_writeback_batch(self, sector_indices, values) -> None:
        """Handle a run of writebacks (scalar fallback: in-order replay)."""
        on_writeback = self.on_writeback
        for sector_index, image in zip(sector_indices, values):
            on_writeback(sector_index, image)

    def warm_counters_batch(self, sector_indices, passes: int = 1) -> None:
        """Warm counter state for *passes* pre-window write rounds.

        Equivalent to ``passes`` pass-major scalar rounds over the whole
        sector list (the order the replay loop used to drive). Batch
        implementations may collapse the rounds only where the result is
        provably order-free (no overflow, no saturation crossing).
        """
        warm_counters = self.warm_counters
        for _ in range(passes):
            for sector_index in sector_indices:
                warm_counters(sector_index)

    def warm_counters(self, sector_index: int) -> None:
        """Advance counter state for one pre-window write (no traffic).

        Simulated windows are slices of much longer executions; the
        writes that happened before the window have already advanced the
        encryption counters (and saturated compact counters, demoted
        common-counter regions, ...). Warmup replays the window's
        writeback sectors through this hook so counter *state* matches a
        long-running execution while measured traffic stays clean.
        """

    def finalize(self) -> None:
        """Drain dirty metadata at end of simulation (kernel boundary)."""

    def obs_snapshot(self) -> Dict[str, int]:
        """Cumulative observability quantities for interval sampling.

        The replay loop polls this at each snapshot interval and records
        *deltas* into time-series samplers (e.g. value-cache hit rate
        over trace position). Keys are design-specific; absent keys read
        as zero. Only called when observability is enabled.
        """
        return {}

    # -- differential state digest ----------------------------------------

    def _state_summary(self) -> List:
        """Everything the engine's future behavior depends on.

        Subclasses extend the list with their own structures. Ordered
        containers (cache LRU order) keep their order; plain dicts and
        sets are canonicalized by sorting, because the batch contract
        permits reordering key insertions whose order carries no
        semantics (see the per-structure ``state_summary`` helpers).
        """
        return [astuple(self.stats)]

    def state_digest(self) -> str:
        """Stable hash of the complete engine state.

        Two engines with equal digests are behaviorally
        indistinguishable from here on — the comparison surface of the
        batch-vs-scalar differential suite, strictly stronger than the
        traffic/stats identity the conformance invariant checks.
        """
        summary = repr(self._state_summary()).encode()
        return hashlib.sha256(summary).hexdigest()


class NoSecurityEngine(PartitionEngine):
    """The insecure baseline: data moves, no metadata exists."""

    name = "no-security"
    batch_native = True

    def on_fill(self, sector_index: int, values: Optional[bytes]) -> None:
        self.stats.fills += 1

    def on_writeback(self, sector_index: int, values: Optional[bytes]) -> None:
        self.stats.writebacks += 1

    # Only the counts matter: batch runs are O(1), and the lazy value
    # sequence is never materialized.

    def on_fill_batch(self, sector_indices, values) -> None:
        self.stats.fills += len(sector_indices)

    def on_writeback_batch(self, sector_indices, values) -> None:
        self.stats.writebacks += len(sector_indices)

    def warm_counters_batch(self, sector_indices, passes: int = 1) -> None:
        pass


class MetadataEngine(PartitionEngine):
    """Shared counter/MAC/BMT machinery for the secured designs."""

    def __init__(
        self,
        partition_id: int,
        data_sectors: int,
        traffic: TrafficCounter,
        design: GranularityDesign = GranularityDesign.BLOCK_128,
        mac_tag_bytes: int = 8,
        cache_config: MetadataCacheConfig = MetadataCacheConfig(),
        counter_config: SplitCounterConfig = SplitCounterConfig(),
        lazy_update: bool = True,
    ) -> None:
        super().__init__(partition_id, data_sectors, traffic)
        self.layout = MetadataLayout(
            data_sectors=data_sectors,
            design=design,
            mac_tag_bytes=mac_tag_bytes,
            sectors_per_counter_sector=counter_config.sectors_per_group,
        )
        self.counters = SplitCounterStore(counter_config)
        self.counter_cache = cache_config.build(f"ctr[{partition_id}]")
        self.mac_cache = cache_config.build(f"mac[{partition_id}]")
        self.bmt_cache = cache_config.build(f"bmt[{partition_id}]")
        self.bmt = BmtTraversal(
            self.layout.bmt_geometry(),
            self.bmt_cache,
            traffic,
            read_stream=Stream.BMT_READ,
            write_stream=Stream.BMT_WRITE,
            lazy_update=lazy_update,
        )

    # -- eviction plumbing ---------------------------------------------------

    def _drain_counter_evictions(self, evictions) -> None:
        """Write back dirty counter sectors; lazily update their tree leaves.

        A dirty counter block leaving the chip is the moment the lazy
        scheme recomputes its parent hash, so each distinct evicted leaf
        triggers a tree update.
        """
        sector_bytes = self.counter_cache.config.sector_bytes
        for ev in evictions:
            self.traffic.record(
                Stream.COUNTER_WRITE,
                ev.dirty_sector_count * sector_bytes,
                transactions=ev.dirty_sector_count,
            )
            leaves = set()
            for s in range(self.counter_cache.config.sectors_per_line):
                if not (ev.dirty_mask >> s) & 1:
                    continue
                counter_sector = ev.line_addr // sector_bytes + s
                leaves.add(self._leaf_of_counter_sector(counter_sector))
            self.bmt.update_leaves(leaves)

    def _leaf_of_counter_sector(self, counter_sector: int) -> int:
        if self.layout.design is GranularityDesign.BLOCK_128:
            per_line = self.layout.line_bytes // self.layout.sector_bytes
            return counter_sector // per_line
        return counter_sector

    def _drain_mac_evictions(self, evictions) -> None:
        sector_bytes = self.mac_cache.config.sector_bytes
        for ev in evictions:
            self.traffic.record(
                Stream.MAC_WRITE,
                ev.dirty_sector_count * sector_bytes,
                transactions=ev.dirty_sector_count,
            )

    # -- counter path ----------------------------------------------------------
    #
    # The public counter/MAC methods are span-instrumented template
    # methods; designs that specialize a path override the ``_``-prefixed
    # implementation so detail profiling covers every engine uniformly.

    def counter_read(self, sector_index: int) -> None:
        """Bring the sector's encryption counter on-chip, verified."""
        if self._prof is None:
            self._counter_read(sector_index)
        else:
            with self._prof.span("engine.counter_read"):
                self._counter_read(sector_index)

    def _counter_read(self, sector_index: int) -> None:
        line, mask = self.layout.counter_location(sector_index)
        result = self.counter_cache.access(line, mask, write=False)
        if result.miss_mask:
            self.stats.counter_fetches += 1
            self.traffic.record(
                Stream.COUNTER_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
            self.bmt.verify_leaf(self.layout.bmt_leaf_index(sector_index))
        self._drain_counter_evictions(result.evictions)

    def counter_write(self, sector_index: int) -> None:
        """Advance the sector's counter for a writeback (dirty in cache)."""
        if self._prof is None:
            self._counter_write(sector_index)
        else:
            with self._prof.span("engine.counter_write"):
                self._counter_write(sector_index)

    def _counter_write(self, sector_index: int) -> None:
        outcome = self.counters.increment(sector_index)
        if outcome.minor_overflowed:
            self._on_minor_overflow(outcome)
        line, mask = self.layout.counter_location(sector_index)
        result = self.counter_cache.access(line, mask, write=True)
        if result.miss_mask:
            # Updating a counter needs its block resident and verified.
            self.stats.counter_fetches += 1
            self.traffic.record(
                Stream.COUNTER_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
            self.bmt.verify_leaf(self.layout.bmt_leaf_index(sector_index))
        self._drain_counter_evictions(result.evictions)

    def _on_minor_overflow(self, outcome) -> None:
        """A minor overflow re-encrypts the whole major-counter group."""
        self._reencrypt_group(outcome.reencrypted_sectors)

    def _reencrypt_group(self, reencrypted_sectors) -> None:
        """Account a major-counter bump's group re-encryption.

        Every sector in the group must be read, re-encrypted under the
        new major, and written back — real data traffic the model
        charges to the data streams. The batch paths call this directly
        with the affected tuple from ``increment_fast``.
        """
        self.stats.minor_overflows += 1
        group = [
            s for s in reencrypted_sectors if s < self.data_sectors
        ]
        if self.obs.enabled:
            self.obs.tracer.emit(
                "counter.minor_overflow",
                partition=self.partition_id,
                reencrypted_sectors=len(group),
            )
        self.stats.reencrypted_sectors += len(group)
        nbytes = len(group) * self.layout.sector_bytes
        self.traffic.record(Stream.DATA_READ, nbytes, transactions=len(group))
        self.traffic.record(Stream.DATA_WRITE, nbytes, transactions=len(group))

    # -- MAC path ------------------------------------------------------------------

    def mac_read(self, sector_index: int) -> None:
        """Fetch the sector's MAC for conventional verification."""
        if self._prof is None:
            self._mac_read(sector_index)
        else:
            with self._prof.span("engine.mac_read"):
                self._mac_read(sector_index)

    def _mac_read(self, sector_index: int) -> None:
        line, mask = self.layout.mac_location(sector_index)
        result = self.mac_cache.access(line, mask, write=False)
        if result.miss_mask:
            self.stats.mac_fetches += 1
            self.traffic.record(
                Stream.MAC_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
        self._drain_mac_evictions(result.evictions)

    def mac_write(self, sector_index: int) -> None:
        """Install a freshly computed MAC (read-modify-write on miss)."""
        if self._prof is None:
            self._mac_write(sector_index)
        else:
            with self._prof.span("engine.mac_write"):
                self._mac_write(sector_index)

    def _mac_write(self, sector_index: int) -> None:
        line, mask = self.layout.mac_location(sector_index)
        result = self.mac_cache.access(line, mask, write=True)
        if result.miss_mask:
            # The 32 B MAC sector holds several tags; merging one tag
            # into a non-resident sector fetches it first.
            self.traffic.record(
                Stream.MAC_READ,
                result.miss_sector_count * self.layout.sector_bytes,
                transactions=result.miss_sector_count,
            )
        self._drain_mac_evictions(result.evictions)

    # -- batch replay machinery (columnar path) ---------------------------------
    #
    # The helpers below are what the batch-native engines compose their
    # on_fill_batch / on_writeback_batch overrides from. Each one is a
    # provably byte-identical replay of the scalar per-event sequence:
    #
    # * metadata locations for the whole run come from one vectorized
    #   layout pass;
    # * consecutive events hitting the same (line, mask) collapse into a
    #   single ``access_run`` — the repeats are full hits by
    #   construction, so only bulk hit accounting remains;
    # * per-access miss traffic and fetch stats accumulate in locals and
    #   post once per run (traffic streams and EngineStats are
    #   commutative sums);
    # * tree verification and eviction draining keep their scalar
    #   position relative to every cache-state mutation.
    #
    # Counter-phase and MAC-phase state are disjoint (separate caches,
    # separate streams), which is what legalizes running all counter
    # work of a run before all MAC work.

    @staticmethod
    def _run_bounds(lines: np.ndarray, masks: np.ndarray) -> List[int]:
        """Boundaries of equal-(line, mask) runs: [0, ..., n]."""
        n = int(lines.size)
        if n <= 1:
            return [0, n]
        change = np.flatnonzero(
            (lines[1:] != lines[:-1]) | (masks[1:] != masks[:-1])
        )
        bounds = np.empty(change.size + 2, dtype=np.int64)
        bounds[0] = 0
        bounds[1:-1] = change + 1
        bounds[-1] = n
        return bounds.tolist()

    def _verify_counter_tree(self, leaf_index: int) -> None:
        """Tree walk for a counter fetch; designs may gate it (Fig. 20)."""
        self.bmt.verify_leaf(leaf_index)

    def _batch_counter_reads(self, sectors: np.ndarray) -> None:
        """Counter-read phase of a batched fill run."""
        if sectors.size == 0:
            return
        lines, masks = self.layout.counter_locations(sectors)
        leaves = self.layout.bmt_leaf_indices(sectors)
        bounds = self._run_bounds(lines, masks)
        lines_l = lines.tolist()
        masks_l = masks.tolist()
        leaves_l = leaves.tolist()
        access_run = self.counter_cache.access_run_raw
        drain = self._drain_counter_evictions
        fetches = 0
        miss_sectors = 0
        for j in range(len(bounds) - 1):
            a = bounds[j]
            miss_mask, miss_count, evictions = access_run(
                lines_l[a], masks_l[a], False, bounds[j + 1] - a
            )
            if miss_mask:
                fetches += 1
                miss_sectors += miss_count
                self._verify_counter_tree(leaves_l[a])
            if evictions:
                drain(evictions)
        if fetches:
            self.stats.counter_fetches += fetches
            self.traffic.record(
                Stream.COUNTER_READ,
                miss_sectors * self.layout.sector_bytes,
                transactions=miss_sectors,
            )

    def _batch_counter_writes(self, sectors: np.ndarray) -> None:
        """Counter-write phase of a batched writeback run.

        Increments stay in event order (a minor overflow's side effects
        land exactly between its neighbours' increments); only the cache
        accesses of a same-location run are compressed, which is legal
        because increments never read cache state.
        """
        if sectors.size == 0:
            return
        lines, masks = self.layout.counter_locations(sectors)
        leaves = self.layout.bmt_leaf_indices(sectors)
        bounds = self._run_bounds(lines, masks)
        sec_l = sectors.tolist()
        lines_l = lines.tolist()
        masks_l = masks.tolist()
        leaves_l = leaves.tolist()
        access_run = self.counter_cache.access_run_raw
        drain = self._drain_counter_evictions
        increment = self.counters.increment_fast
        fetches = 0
        miss_sectors = 0
        for j in range(len(bounds) - 1):
            a = bounds[j]
            b = bounds[j + 1]
            for s in sec_l[a:b]:
                affected = increment(s)
                if affected is not None:
                    self._reencrypt_group(affected)
            miss_mask, miss_count, evictions = access_run(
                lines_l[a], masks_l[a], True, b - a
            )
            if miss_mask:
                fetches += 1
                miss_sectors += miss_count
                self._verify_counter_tree(leaves_l[a])
            if evictions:
                drain(evictions)
        if fetches:
            self.stats.counter_fetches += fetches
            self.traffic.record(
                Stream.COUNTER_READ,
                miss_sectors * self.layout.sector_bytes,
                transactions=miss_sectors,
            )

    def _batch_mac_reads(self, sectors: np.ndarray) -> None:
        """MAC-read phase of a batched fill run."""
        if sectors.size == 0:
            return
        lines, masks = self.layout.mac_locations(sectors)
        bounds = self._run_bounds(lines, masks)
        lines_l = lines.tolist()
        masks_l = masks.tolist()
        access_run = self.mac_cache.access_run_raw
        drain = self._drain_mac_evictions
        fetches = 0
        miss_sectors = 0
        for j in range(len(bounds) - 1):
            a = bounds[j]
            miss_mask, miss_count, evictions = access_run(
                lines_l[a], masks_l[a], False, bounds[j + 1] - a
            )
            if miss_mask:
                fetches += 1
                miss_sectors += miss_count
            if evictions:
                drain(evictions)
        if fetches:
            self.stats.mac_fetches += fetches
            self.traffic.record(
                Stream.MAC_READ,
                miss_sectors * self.layout.sector_bytes,
                transactions=miss_sectors,
            )

    def _batch_mac_writes(self, sectors: np.ndarray) -> None:
        """MAC-write phase of a batched writeback run.

        A miss is a read-modify-write: the fetch is MAC_READ traffic but
        does not count as a demand MAC fetch — same as the scalar path.
        """
        if sectors.size == 0:
            return
        lines, masks = self.layout.mac_locations(sectors)
        bounds = self._run_bounds(lines, masks)
        lines_l = lines.tolist()
        masks_l = masks.tolist()
        access_run = self.mac_cache.access_run_raw
        drain = self._drain_mac_evictions
        miss_sectors = 0
        for j in range(len(bounds) - 1):
            a = bounds[j]
            miss_mask, miss_count, evictions = access_run(
                lines_l[a], masks_l[a], True, bounds[j + 1] - a
            )
            if miss_mask:
                miss_sectors += miss_count
            if evictions:
                drain(evictions)
        if miss_sectors:
            self.traffic.record(
                Stream.MAC_READ,
                miss_sectors * self.layout.sector_bytes,
                transactions=miss_sectors,
            )

    def warm_counters_batch(self, sector_indices, passes: int = 1) -> None:
        """Vectorized counter warmup.

        When no minor counter can overflow across all passes, the
        per-sector totals are order-free and apply in one bulk pass;
        otherwise the exact pass-major scalar order replays (overflow
        side effects depend on interleaving).
        """
        if passes <= 0:
            return
        sectors = np.asarray(sector_indices, dtype=np.int64)
        if sectors.size == 0:
            return
        if int(sectors.min()) < 0:
            # Match the scalar error behavior (increment raises on the
            # first negative index, after earlier warms applied).
            PartitionEngine.warm_counters_batch(
                self, sectors.tolist(), passes
            )
            return
        uniq, counts = np.unique(sectors, return_counts=True)
        uniq_l = uniq.tolist()
        totals = (counts * int(passes)).tolist()
        if self.counters.bulk_increment_safe(uniq_l, totals):
            self.counters.bulk_increment(uniq_l, totals)
            return
        increment = self.counters.increment_fast
        sec_l = sectors.tolist()
        for _ in range(passes):
            for s in sec_l:
                increment(s)

    # -- lifecycle -------------------------------------------------------------------

    def warm_counters(self, sector_index: int) -> None:
        """Pre-window write: advance the split counter silently."""
        self.counters.increment(sector_index)

    def finalize(self) -> None:
        """Flush all dirty metadata (counters, MACs, tree nodes)."""
        self._drain_counter_evictions(self.counter_cache.flush())
        self._drain_mac_evictions(self.mac_cache.flush())
        self.bmt.flush()

    def _state_summary(self) -> List:
        summary = super()._state_summary()
        summary.append(self.counter_cache.state_summary())
        summary.append(self.mac_cache.state_summary())
        summary.append(self.bmt_cache.state_summary())
        summary.append(self.counters.state_summary())
        summary.append(self.bmt.root_verifications)
        return summary

    def obs_snapshot(self) -> Dict[str, int]:
        """Shared cumulative quantities (see :meth:`PartitionEngine.obs_snapshot`)."""
        return {
            "fills": self.stats.fills,
            "writebacks": self.stats.writebacks,
            "counter_fetches": self.stats.counter_fetches,
            "mac_fetches": self.stats.mac_fetches,
            "minor_overflows": self.stats.minor_overflows,
        }
