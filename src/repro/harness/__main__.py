"""CLI entry: ``python -m repro.harness [experiment ...]``.

Runs the requested experiments (default: all) and prints their reports.
Useful flags: ``--length`` to control trace size, ``--benchmarks`` to
restrict the roster.

``python -m repro.harness profile <benchmark>`` instead runs one fully
instrumented simulation and renders the observability dashboard; see
docs/ARCHITECTURE.md § Observability.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import render_experiment, render_profile
from repro.harness.runner import (
    DEFAULT_TRACE_LENGTH,
    ExperimentContext,
    engine_factories,
)
from repro.obs import ObsConfig
from repro.workloads.benchmarks import benchmark_names


def profile_main(argv) -> int:
    """Parse and run the ``profile`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness profile",
        description="Run one instrumented simulation and render the "
                    "observability dashboard.",
    )
    parser.add_argument(
        "benchmark", choices=benchmark_names(),
        help="benchmark trace to profile",
    )
    parser.add_argument(
        "--engine", default="plutus", choices=sorted(engine_factories()),
        help="engine design point (default: plutus)",
    )
    parser.add_argument(
        "--length", type=int, default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the event trace as JSONL",
    )
    parser.add_argument(
        "--interval", type=int, default=1024, metavar="EVENTS",
        help="DRAM events between traffic snapshots (default 1024)",
    )
    parser.add_argument(
        "--trace-events", action="store_true",
        help="also trace every individual fill/writeback (verbose)",
    )
    args = parser.parse_args(argv)

    from repro.harness.profile import run_profile

    profile = run_profile(
        args.benchmark,
        args.engine,
        length=args.length,
        seed=args.seed,
        obs=ObsConfig(
            enabled=True,
            interval_events=args.interval,
            trace_memory_events=args.trace_events,
        ),
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )
    print(render_profile(profile))
    return 0


def main(argv=None) -> int:
    """Parse arguments, run the selected experiments, print reports."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Reproduce the Plutus paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default all): {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--length",
        type=int,
        default=DEFAULT_TRACE_LENGTH,
        help="trace length in coalesced accesses per benchmark",
    )
    parser.add_argument(
        "--seed", type=int, default=2023, help="trace generation seed"
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        choices=benchmark_names(),
        help="restrict to a subset of the benchmark roster",
    )
    args = parser.parse_args(argv)

    selected = args.experiments or sorted(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    ctx = ExperimentContext(
        trace_length=args.length,
        seed=args.seed,
        benchmarks=args.benchmarks or benchmark_names(),
    )
    for key in selected:
        print(render_experiment(EXPERIMENTS[key](ctx)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
