"""Experiment execution context with caching.

All figure reproductions share the same expensive artifacts: benchmark
traces, their L2 event logs (one pass per trace regardless of how many
engines are compared), and per-engine simulation results. The
:class:`ExperimentContext` memoizes all three, so running the full
figure suite costs one L2 pass and one engine replay per (trace,
engine) pair.

Engine design points are addressed by *keys* (e.g. ``"plutus"``,
``"pssm"``, ``"plutus:gran32"``) so experiments stay declarative and
results cache across figures.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.simulator import (
    EngineFactory,
    MemoryEventLog,
    SimulationResult,
    replay_events,
    simulate_l2,
)
from repro.metadata.compact import (
    DESIGN_2BIT,
    DESIGN_3BIT,
    DESIGN_3BIT_ADAPTIVE,
)
from repro.metadata.layout import GranularityDesign
from repro.obs import ObsConfig, ObsSession, activate
from repro.secure.common_counters import CommonCountersEngine
from repro.secure.engine import NoSecurityEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine
from repro.secure.value_cache import ValueCacheConfig
from repro.workloads.benchmarks import benchmark_names, build_trace
from repro.workloads.trace import Trace

#: Default trace length; override with the REPRO_TRACE_LEN environment
#: variable (tests use small values, full runs larger ones).
DEFAULT_TRACE_LENGTH = int(os.environ.get("REPRO_TRACE_LEN", "30000"))


def engine_factories() -> Dict[str, EngineFactory]:
    """The named design points every experiment draws from."""

    def plutus_variant(**kwargs) -> EngineFactory:
        return lambda p, s, t: PlutusEngine(p, s, t, **kwargs)

    factories: Dict[str, EngineFactory] = {
        "nosec": lambda p, s, t: NoSecurityEngine(p, s, t),
        "pssm": lambda p, s, t: PssmEngine(p, s, t),
        "pssm:4B-mac": lambda p, s, t: PssmEngine(p, s, t, mac_tag_bytes=4),
        "common-counters": lambda p, s, t: CommonCountersEngine(p, s, t),
        "plutus": plutus_variant(),
        # Fig. 15: value verification alone on the PSSM organization.
        "plutus:value-only": plutus_variant(
            design=GranularityDesign.BLOCK_128, compact_config=None
        ),
        # Fig. 16: the three granularity designs, nothing else enabled.
        "gran:128B": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=None,
        ),
        "gran:32B-leaf": plutus_variant(
            design=GranularityDesign.LEAF_32_TREE_128,
            value_cache_config=None,
            compact_config=None,
        ),
        "gran:32B-all": plutus_variant(
            design=GranularityDesign.ALL_32,
            value_cache_config=None,
            compact_config=None,
        ),
        # Fig. 17: the three compact-counter designs on PSSM granularity.
        "compact:2bit": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_2BIT,
        ),
        "compact:3bit": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_3BIT,
        ),
        "compact:adaptive": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_3BIT_ADAPTIVE,
        ),
        # Fig. 20: integrity-tree traffic eliminated (MGX/TNPU-style).
        "plutus:no-tree": plutus_variant(eliminate_tree=True),
        "pssm:no-tree": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=None,
            eliminate_tree=True,
        ),
        # Ablations.
        "pssm:eager": lambda p, s, t: PssmEngine(p, s, t, lazy_update=False),
    }
    for entries in (64, 128, 256, 512, 1024):
        factories[f"plutus:vcache-{entries}"] = plutus_variant(
            value_cache_config=ValueCacheConfig(entries=entries)
        )
    for fraction in (0.0, 0.125, 0.25, 0.5):
        factories[f"plutus:pinned-{fraction}"] = plutus_variant(
            value_cache_config=ValueCacheConfig(pinned_fraction=fraction)
        )
    return factories


#: Backwards-compatible alias for the pre-observability private name.
_engine_factories = engine_factories


@dataclass
class ExperimentContext:
    """Caching runner shared by every experiment.

    When an enabled :class:`~repro.obs.ObsConfig` is supplied, every
    trace build, L2 pass, and engine replay executed through the context
    runs under one :class:`~repro.obs.ObsSession`, whose registry and
    tracer accumulate across runs (the ``profile`` subcommand drives a
    single run and exports them). The default config is disabled and
    changes nothing.
    """

    config: GpuConfig = VOLTA
    trace_length: int = DEFAULT_TRACE_LENGTH
    seed: int = 2023
    benchmarks: List[str] = field(default_factory=benchmark_names)
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        self._traces: Dict[str, Trace] = {}
        self._logs: Dict[str, MemoryEventLog] = {}
        self._results: Dict[str, SimulationResult] = {}
        self.factories = engine_factories()
        self.obs_session = ObsSession(self.obs)

    def trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            with self.obs_session.phase("build_trace", benchmark=benchmark):
                self._traces[benchmark] = build_trace(
                    benchmark, length=self.trace_length, seed=self.seed
                )
        return self._traces[benchmark]

    def event_log(self, benchmark: str) -> MemoryEventLog:
        if benchmark not in self._logs:
            trace = self.trace(benchmark)
            with activate(self.obs_session):
                self._logs[benchmark] = simulate_l2(trace, self.config)
        return self._logs[benchmark]

    def run(self, benchmark: str, engine_key: str) -> SimulationResult:
        """Simulate one (benchmark, engine) pair, memoized."""
        cache_key = f"{benchmark}|{engine_key}"
        if cache_key not in self._results:
            factory = self.factories.get(engine_key)
            if factory is None:
                raise KeyError(
                    f"unknown engine {engine_key!r}; known: "
                    f"{sorted(self.factories)}"
                )
            log = self.event_log(benchmark)
            with activate(self.obs_session):
                self._results[cache_key] = replay_events(
                    log, factory, self.config
                )
        return self._results[cache_key]

    def run_custom(
        self,
        benchmark: str,
        key: str,
        factory: EngineFactory,
    ) -> SimulationResult:
        """Simulate with an ad-hoc engine factory, memoized under *key*."""
        cache_key = f"{benchmark}|{key}"
        if cache_key not in self._results:
            log = self.event_log(benchmark)
            with activate(self.obs_session):
                self._results[cache_key] = replay_events(
                    log, factory, self.config
                )
        return self._results[cache_key]
