"""Golden-corpus tests: verification, drift detection, regeneration."""

import shutil

import pytest

from repro.conformance.corpus import (
    CORPUS,
    default_corpus_dir,
    events_path,
    run_corpus,
    snapshot_path,
)

FUZZ_SPECS = tuple(spec for spec in CORPUS if spec.kind == "fuzz")
FAST_FUNCTIONAL = 24


def _copy_entries(tmp_path, specs):
    src = default_corpus_dir()
    for spec in specs:
        shutil.copy(events_path(src, spec.name), tmp_path)
        shutil.copy(snapshot_path(src, spec.name), tmp_path)
    return tmp_path


class TestCommittedCorpus:
    def test_corpus_declares_six_entries(self):
        assert len(CORPUS) == 6
        assert {spec.kind for spec in CORPUS} == {"benchmark", "fuzz"}

    def test_claims_asserted_only_on_benchmark_entries(self):
        for spec in CORPUS:
            assert spec.claims_apply == (spec.kind == "benchmark")

    def test_committed_files_exist(self):
        root = default_corpus_dir()
        for spec in CORPUS:
            assert events_path(root, spec.name).exists()
            assert snapshot_path(root, spec.name).exists()

    def test_adversarial_entries_verify_clean(self):
        outcome = run_corpus(
            specs=FUZZ_SPECS, functional_events=FAST_FUNCTIONAL
        )
        assert outcome.ok
        assert [entry.name for entry in outcome.entries] == [
            spec.name for spec in FUZZ_SPECS
        ]


class TestDriftDetection:
    def test_numeric_corruption_reported_as_drift(self, tmp_path):
        root = _copy_entries(tmp_path, FUZZ_SPECS[:1])
        spec = FUZZ_SPECS[0]
        snap = snapshot_path(root, spec.name)
        text = snap.read_text(encoding="utf-8")
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if not line.startswith("#"):
                stream, nbytes, ntx = line.split()
                lines[i] = f"{stream} {int(nbytes) + 32} {int(ntx) + 1}"
                break
        snap.write_text("\n".join(lines) + "\n", encoding="utf-8")

        outcome = run_corpus(
            corpus_dir=root, specs=(spec,),
            functional_events=FAST_FUNCTIONAL,
        )
        assert not outcome.ok
        assert outcome.entries[0].drift
        assert "drifted" in outcome.entries[0].drift[0]

    def test_unparseable_snapshot_reported_not_raised(self, tmp_path):
        root = _copy_entries(tmp_path, FUZZ_SPECS[:1])
        spec = FUZZ_SPECS[0]
        snap = snapshot_path(root, spec.name)
        snap.write_text("#repro-traffic name=x engine=y\n", encoding="utf-8")
        outcome = run_corpus(
            corpus_dir=root, specs=(spec,),
            functional_events=FAST_FUNCTIONAL,
        )
        assert not outcome.ok
        assert "unparseable" in outcome.entries[0].drift[0]

    def test_missing_files_reported(self, tmp_path):
        outcome = run_corpus(
            corpus_dir=tmp_path, specs=FUZZ_SPECS[:1],
            functional_events=FAST_FUNCTIONAL,
        )
        assert not outcome.ok
        assert outcome.entries[0].missing


class TestRegeneration:
    def test_update_writes_files_that_then_verify(self, tmp_path):
        spec = next(s for s in FUZZ_SPECS if s.name == "value-thrash")
        updated = run_corpus(
            corpus_dir=tmp_path, specs=(spec,), update=True,
            functional_events=FAST_FUNCTIONAL,
        )
        assert updated.ok
        assert updated.entries[0].updated
        assert events_path(tmp_path, spec.name).exists()
        assert snapshot_path(tmp_path, spec.name).exists()

        verified = run_corpus(
            corpus_dir=tmp_path, specs=(spec,),
            functional_events=FAST_FUNCTIONAL,
        )
        assert verified.ok

    def test_update_is_deterministic(self, tmp_path):
        spec = next(s for s in FUZZ_SPECS if s.name == "write-storm")
        a_dir = tmp_path / "a"
        b_dir = tmp_path / "b"
        for target in (a_dir, b_dir):
            run_corpus(
                corpus_dir=target, specs=(spec,), update=True,
                functional_events=FAST_FUNCTIONAL,
            )
        assert (
            events_path(a_dir, spec.name).read_text()
            == events_path(b_dir, spec.name).read_text()
        )
        assert (
            snapshot_path(a_dir, spec.name).read_text()
            == snapshot_path(b_dir, spec.name).read_text()
        )

    def test_committed_corpus_matches_specs(self):
        # The committed .events files must be exactly what --update
        # would regenerate: anything else means the corpus and its
        # specs have drifted apart.
        import io

        from repro.conformance.corpus import build_spec_log
        from repro.workloads.traceio import dumps_event_log

        root = default_corpus_dir()
        for spec in FUZZ_SPECS:
            committed = events_path(root, spec.name).read_text(
                encoding="utf-8"
            )
            rebuilt = dumps_event_log(build_spec_log(spec))
            assert committed == rebuilt, spec.name


@pytest.mark.slow
class TestFullCorpusCli:
    def test_corrupted_snapshot_fails_cli(self, tmp_path):
        from repro.harness.__main__ import main

        root = _copy_entries(tmp_path, CORPUS)
        snap = snapshot_path(root, "bfs-small")
        text = snap.read_text(encoding="utf-8")
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if not line.startswith("#"):
                stream, nbytes, ntx = line.split()
                lines[i] = f"{stream} {int(nbytes) + 3200} {int(ntx) + 100}"
                break
        snap.write_text("\n".join(lines) + "\n", encoding="utf-8")

        rc = main([
            "conform", "--corpus", "--corpus-dir", str(root),
            "--functional-events", "24",
        ])
        assert rc == 1
