"""Address-pattern generators for synthetic GPU workloads.

Each generator produces ``n`` coalesced accesses over a region of
128-byte lines, returned as parallel numpy arrays ``(line_index,
sector_mask)``. The patterns cover the access behaviours of the paper's
benchmark suites: bulk streaming (dense linear algebra, LBM), strided
sweeps (Gaussian elimination), stencils (hotspot, SRAD), and the
power-law irregular accesses of the graph workloads (BFS, SSSP,
PageRank, coloring) whose poor metadata locality motivates Plutus.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStream

FULL_MASK = 0b1111


@dataclass(frozen=True)
class PatternResult:
    """Generated address stream: line indices and per-access masks."""

    line_index: np.ndarray
    sector_mask: np.ndarray

    def __post_init__(self) -> None:
        if len(self.line_index) != len(self.sector_mask):
            raise ConfigurationError("pattern arrays must align")

    def __len__(self) -> int:
        return len(self.line_index)


def _single_sector_masks(rng: RngStream, n: int) -> np.ndarray:
    """Random one-sector masks (irregular accesses touch 32 B)."""
    return (1 << rng.integers(0, 4, size=n)).astype(np.uint8)


def stream(n: int, region_lines: int, rng: RngStream) -> PatternResult:
    """Sequential full-line sweep, wrapping over the region.

    The classic coalesced GPU pattern: consecutive warps touch
    consecutive lines with all four sectors live.
    """
    if region_lines <= 0:
        raise ConfigurationError("region must contain lines")
    idx = np.arange(n, dtype=np.int64) % region_lines
    return PatternResult(idx, np.full(n, FULL_MASK, dtype=np.uint8))


def strided(n: int, region_lines: int, stride: int, rng: RngStream) -> PatternResult:
    """Fixed-stride sweep (column walks of dense solvers).

    Strides defeat line-level spatial locality, so accesses carry a
    single live sector.
    """
    if region_lines <= 0 or stride <= 0:
        raise ConfigurationError("region and stride must be positive")
    idx = (np.arange(n, dtype=np.int64) * stride) % region_lines
    return PatternResult(idx, _single_sector_masks(rng, n))


def random_uniform(n: int, region_lines: int, rng: RngStream) -> PatternResult:
    """Uniformly random single-sector accesses (hash tables, histograms)."""
    if region_lines <= 0:
        raise ConfigurationError("region must contain lines")
    idx = rng.integers(0, region_lines, size=n).astype(np.int64)
    return PatternResult(idx, _single_sector_masks(rng, n))


def graph_zipf(
    n: int, region_lines: int, rng: RngStream, skew: float = 1.1,
    shuffle: bool = True,
) -> PatternResult:
    """Power-law line popularity (graph frontier expansion).

    Vertex degrees follow a power law, so a few hub lines are touched
    constantly while the long tail is touched once — poor temporal
    locality overall, single-sector accesses. With ``shuffle`` (the
    default) hot lines scatter over the region as renumbered graphs do;
    without it the hottest lines sit contiguously at the region start,
    the shape of skewed histogram bins or degree-sorted vertex arrays.
    """
    if region_lines <= 0:
        raise ConfigurationError("region must contain lines")
    ranks = rng.zipf_bounded(skew, region_lines, n).astype(np.int64)
    if not shuffle:
        return PatternResult(ranks, _single_sector_masks(rng, n))
    placement = np.arange(region_lines, dtype=np.int64)
    rng.shuffle(placement)
    return PatternResult(placement[ranks], _single_sector_masks(rng, n))


def stencil(
    n: int, region_lines: int, row_lines: int, rng: RngStream
) -> PatternResult:
    """Row sweep with north/south neighbours (5-point stencils).

    Every output point reads its own line plus the lines one row above
    and below; the sweep revisits each line from three consecutive rows,
    giving the strong-but-finite reuse stencil kernels show.
    """
    if region_lines <= 0 or row_lines <= 0:
        raise ConfigurationError("region and row width must be positive")
    centre = np.arange(n, dtype=np.int64) // 3
    offset = (np.arange(n, dtype=np.int64) % 3 - 1) * row_lines
    idx = (centre + offset) % region_lines
    return PatternResult(idx, np.full(n, FULL_MASK, dtype=np.uint8))


def tiled(
    n: int, region_lines: int, tile_lines: int, rng: RngStream
) -> PatternResult:
    """Tile-at-a-time reuse (blocked matrix kernels).

    Accesses stay inside one tile for ``tile_lines`` * revisit rounds,
    then jump to a random next tile: high short-range temporal locality,
    none across tiles.
    """
    if tile_lines <= 0 or region_lines < tile_lines:
        raise ConfigurationError("tile must fit in region")
    revisits = 4
    span = tile_lines * revisits
    n_tiles = max(1, region_lines // tile_lines)
    tile_of_access = rng.integers(0, n_tiles, size=(n + span - 1) // span)
    bases = np.repeat(tile_of_access * tile_lines, span)[:n]
    within = rng.integers(0, tile_lines, size=n)
    idx = (bases + within).astype(np.int64) % region_lines
    return PatternResult(idx, np.full(n, FULL_MASK, dtype=np.uint8))


PATTERNS = {
    "stream": stream,
    "strided": strided,
    "random": random_uniform,
    "graph": graph_zipf,
    "stencil": stencil,
    "tiled": tiled,
}


def generate(
    kind: str, n: int, region_lines: int, rng: RngStream, **kwargs
) -> PatternResult:
    """Dispatch a pattern by name with its extra parameters."""
    if kind not in PATTERNS:
        raise ConfigurationError(
            f"unknown pattern {kind!r}; choose from {sorted(PATTERNS)}"
        )
    return PATTERNS[kind](n, region_lines, rng=rng, **kwargs)
