"""Failure taxonomy and the seeded retry/backoff policy."""

import pytest

from repro.common.errors import (
    BudgetExceededError,
    ReproError,
    ResilienceError,
    TraceError,
    UnitTimeoutError,
)
from repro.resilience import (
    RETRYABLE,
    ChaosKill,
    FailureClass,
    RetryPolicy,
    classify_failure,
)


class TestClassifyFailure:
    def test_timeout_is_timeout(self):
        exc = UnitTimeoutError("slow", timeout_s=1.0)
        assert classify_failure(exc) is FailureClass.TIMEOUT

    def test_budget_is_budget(self):
        exc = BudgetExceededError("wall-clock budget exhausted")
        assert classify_failure(exc) is FailureClass.BUDGET

    def test_repro_errors_are_deterministic(self):
        # Library errors replay identically; retrying them is waste.
        assert classify_failure(ReproError("x")) is FailureClass.DETERMINISTIC
        assert classify_failure(TraceError("x")) is FailureClass.DETERMINISTIC

    def test_everything_else_is_a_crash(self):
        for exc in (ValueError("x"), MemoryError(), ChaosKill("boom")):
            assert classify_failure(exc) is FailureClass.CRASH

    def test_retryable_set_is_environmental_only(self):
        assert RETRYABLE == {FailureClass.CRASH, FailureClass.TIMEOUT}


class TestShouldRetry:
    def test_crash_and_timeout_retry_below_max(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(FailureClass.CRASH, 1)
        assert policy.should_retry(FailureClass.TIMEOUT, 2)

    def test_no_retry_at_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.should_retry(FailureClass.CRASH, 3)

    def test_deterministic_and_budget_never_retry(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(FailureClass.DETERMINISTIC, 1)
        assert not policy.should_retry(FailureClass.BUDGET, 1)


class TestBackoff:
    def test_delay_is_deterministic_per_seed_unit_attempt(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=11)
        assert a.backoff_delay("u1", 1) == b.backoff_delay("u1", 1)
        assert a.backoff_delay("u1", 2) == b.backoff_delay("u1", 2)

    def test_delay_varies_across_units_and_seeds(self):
        policy = RetryPolicy(seed=11, jitter=0.25)
        assert policy.backoff_delay("u1", 1) != policy.backoff_delay("u2", 1)
        assert (
            RetryPolicy(seed=11).backoff_delay("u1", 1)
            != RetryPolicy(seed=12).backoff_delay("u1", 1)
        )

    def test_delay_within_jitter_band(self):
        policy = RetryPolicy(
            base_delay_s=0.1, backoff_factor=2.0, jitter=0.25, max_delay_s=10.0
        )
        for attempt in (1, 2, 3):
            expected = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff_delay("unit", attempt)
            assert expected * 0.75 <= delay <= expected * 1.25

    def test_delay_capped_by_max(self):
        policy = RetryPolicy(
            base_delay_s=1.0, backoff_factor=10.0, max_delay_s=2.0, jitter=0.0
        )
        assert policy.backoff_delay("unit", 5) == 2.0

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(base_delay_s=0.05, jitter=0.0, max_delay_s=10.0)
        assert policy.backoff_delay("unit", 1) == pytest.approx(0.05)
        assert policy.backoff_delay("unit", 3) == pytest.approx(0.2)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"max_delay_s": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)
