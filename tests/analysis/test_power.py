"""Tests for the power model (Fig. 22 machinery)."""

import pytest

from repro.analysis.power import (
    EnergyParams,
    estimate_power,
    kernel_seconds,
    power_overhead,
)


class TestKernelSeconds:
    def test_more_traffic_more_time(self, engine_results):
        base_bytes = engine_results["nosec"].total_bytes
        nosec_t = kernel_seconds(engine_results["nosec"], base_bytes)
        pssm_t = kernel_seconds(engine_results["pssm"], base_bytes)
        assert pssm_t > nosec_t

    def test_invalid_baseline(self, engine_results):
        with pytest.raises(ValueError):
            kernel_seconds(engine_results["pssm"], 0)


class TestEstimate:
    def test_more_traffic_more_energy(self, engine_results):
        base_bytes = engine_results["nosec"].total_bytes
        nosec = estimate_power(engine_results["nosec"], base_bytes)
        pssm = estimate_power(engine_results["pssm"], base_bytes)
        assert pssm.energy_joules > nosec.energy_joules

    def test_baseline_has_no_crypto_energy(self, engine_results):
        """No-security runs pay DRAM and background only; comparing a
        zero-background estimate isolates that."""
        params = EnergyParams(background_watts=1e-9)
        base_bytes = engine_results["nosec"].total_bytes
        nosec = estimate_power(engine_results["nosec"], base_bytes, params)
        dram_only = params.dram_pj_per_byte * base_bytes * 1e-12
        assert nosec.energy_joules == pytest.approx(dram_only, rel=0.01)


class TestOverheadShape:
    def overheads(self, engine_results):
        base_bytes = engine_results["nosec"].total_bytes
        base = estimate_power(engine_results["nosec"], base_bytes)
        out = {}
        for key in ("pssm", "plutus"):
            est = estimate_power(engine_results[key], base_bytes)
            out[key] = power_overhead(est, base)
        return out

    def test_security_has_positive_power_overhead(self, engine_results):
        overheads = self.overheads(engine_results)
        assert overheads["pssm"] > 0
        assert overheads["plutus"] > 0

    def test_plutus_overhead_below_pssm(self, engine_results):
        """The Fig. 22 headline: Plutus substantially cuts the overhead."""
        overheads = self.overheads(engine_results)
        assert overheads["plutus"] < overheads["pssm"]

    def test_power_overhead_below_energy_overhead(self, engine_results):
        """Runtime stretching dilutes dynamic energy into lower power."""
        base_bytes = engine_results["nosec"].total_bytes
        base = estimate_power(engine_results["nosec"], base_bytes)
        est = estimate_power(engine_results["pssm"], base_bytes)
        energy_overhead = est.energy_joules / base.energy_joules - 1
        assert power_overhead(est, base) < energy_overhead

    def test_params_are_tunable(self, engine_results):
        base_bytes = engine_results["nosec"].total_bytes
        light = EnergyParams(mac_pj_per_op=0.0, aes_pj_per_block=0.0,
                             sram_pj_per_access=0.0)
        default_est = estimate_power(engine_results["pssm"], base_bytes)
        light_est = estimate_power(engine_results["pssm"], base_bytes, light)
        assert light_est.energy_joules < default_est.energy_joules
