"""GPU configuration mirroring the paper's Tables I and II.

One frozen dataclass collects every structural parameter of the modeled
Volta-class GPU: SM count (used by the performance model's compute
side), the L2 organization, the DRAM system, the protected-memory
geometry, and the per-partition metadata cache sizing. Experiments vary
a field with :func:`dataclasses.replace` rather than mutating state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.units import Frequency
from repro.mem.address import AddressMap
from repro.mem.dram import DramConfig
from repro.secure.engine import MetadataCacheConfig


@dataclass(frozen=True)
class L2Config:
    """One partition's slice of the L2 (two 96 KB banks on Volta)."""

    size_bytes: int = 2 * 96 * 1024
    line_bytes: int = 128
    ways: int = 16
    sector_bytes: int = 32
    sectored: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ConfigurationError("L2 lines must divide evenly into ways")


@dataclass(frozen=True)
class GpuConfig:
    """Structural model of the baseline GPU (paper Table I / Table II)."""

    name: str = "volta-like"
    num_sms: int = 80
    core_clock: Frequency = Frequency.from_mhz(1132.0)
    address_map: AddressMap = field(default_factory=AddressMap)
    l2: L2Config = field(default_factory=L2Config)
    dram: DramConfig = field(default_factory=DramConfig)
    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    #: Security-engine latencies (documented; the bandwidth model does
    #: not charge them — GPUs hide latency with TLP, per the paper).
    mac_latency_cycles: int = 40
    aes_latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigurationError("GPU needs at least one SM")
        if self.dram.num_partitions != self.address_map.num_partitions:
            raise ConfigurationError(
                "DRAM and address map disagree on partition count"
            )

    @property
    def num_partitions(self) -> int:
        return self.address_map.num_partitions

    @property
    def sectors_per_partition(self) -> int:
        return (
            self.address_map.partition_bytes // self.address_map.sector_bytes
        )

    @property
    def total_l2_bytes(self) -> int:
        return self.l2.size_bytes * self.num_partitions

    @property
    def total_metadata_cache_bytes(self) -> int:
        """PSSM metadata SRAM: 3 caches x 2 kB x partitions (192 kB)."""
        return 3 * self.metadata_cache.size_bytes * self.num_partitions


VOLTA = GpuConfig()
