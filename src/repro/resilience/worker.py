"""One distributed-campaign worker process (``python -m repro.resilience.worker``).

A worker is spawned by the coordinator
(:class:`repro.resilience.distributed.DistributedSupervisor`) against a
run directory and does four things in a loop until the queue drains:

1. rebuild the campaign from the run's ``campaign.json`` factory spec
   and refuse to start on a fingerprint mismatch — unit ids are
   content-addressed, so a faithful rebuild is what makes results
   interchangeable across processes;
2. claim a pending unit through the lease protocol
   (:mod:`repro.resilience.queue`): first claim, steal of a stale
   lease, or speculative duplicate of a straggler;
3. execute it under the serial supervisor's exact retry/classification
   machinery, with a daemon heartbeat thread refreshing the lease
   mtime the whole time;
4. append the outcome to its **own** torn-tail-tolerant
   :class:`~repro.resilience.journal.RunJournal`
   (``workers/<id>/journal.jsonl``) *before* publishing the exclusive
   done marker — so a kill at any instant loses at most unjournaled
   work, never a journaled-but-unclaimed or claimed-but-unjournaled
   result.

Losing the done-marker race (the unit was speculated or stolen and a
peer finished first) is recorded as a ``spec-loss`` worker event, not a
unit record, so the journal merge never sees conflicting verdicts —
and even a harmless duplicate ``ok`` record is safe, because runners
are deterministic and the merge dedups by unit id.

Chaos: ``--chaos`` mounts the regular unit-attempt
:class:`~repro.resilience.chaos.ChaosMonkey` inside the worker;
``--chaos-workers`` mounts :class:`~repro.resilience.chaos.WorkerChaos`,
which really ``kill -9``'s or freezes *this process* to exercise lease
expiry, stealing, respawn, and straggler speculation end to end.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.common.errors import EXIT_OK, EXIT_USAGE, ReproError
from repro.resilience.budget import BudgetGuard, ResourceBudget
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosMonkey,
    WorkerChaos,
    WorkerChaosConfig,
)
from repro.resilience.journal import RunJournal
from repro.resilience.policy import FailureClass, RetryPolicy, classify_failure
from repro.resilience.queue import Lease, WorkQueue
from repro.resilience.telemetry import UnitTelemetry
from repro.resilience.units import Campaign, WorkUnit

#: Name of the factory-spec file the coordinator writes into the run dir.
CAMPAIGN_SPEC_NAME = "campaign.json"

#: Subdirectory of the run dir holding per-worker journals and logs.
WORKERS_DIR = "workers"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.worker",
        description="One lease-claiming campaign worker (spawned by the "
                    "distributed supervisor; runnable by hand for "
                    "debugging).",
    )
    parser.add_argument("--run", required=True, metavar="PATH",
                        help="run directory (journal.jsonl, campaign.json, "
                             "queue/, workers/)")
    parser.add_argument("--worker-id", required=True, metavar="ID")
    parser.add_argument("--worker-index", type=int, default=0, metavar="N",
                        help="rotation offset into the pending list "
                             "(reduces first-claim contention)")
    parser.add_argument("--incarnation", type=int, default=0, metavar="N",
                        help="respawn count (salts the worker-chaos draw)")
    parser.add_argument("--lease-ttl", type=float, default=5.0,
                        metavar="SECONDS")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="lease heartbeat interval (default: ttl / 3)")
    parser.add_argument("--retries", type=int, default=3, metavar="N")
    parser.add_argument("--backoff", type=float, default=0.05,
                        metavar="SECONDS")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS")
    parser.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                        help="idle sleep when nothing is claimable")
    parser.add_argument("--chaos", action="store_true",
                        help="unit-attempt chaos monkey inside this worker")
    parser.add_argument("--chaos-seed", type=int, default=7, metavar="N")
    parser.add_argument("--chaos-workers", action="store_true",
                        help="worker-process chaos: seeded kill -9s and "
                             "heartbeat-alive freezes of this process")
    parser.add_argument("--worker-kill-prob", type=float, default=0.2)
    parser.add_argument("--worker-freeze-prob", type=float, default=0.15)
    parser.add_argument("--worker-freeze-s", type=float, default=2.0)
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="artifact-store root; touched artifacts are "
                             "pinned for this run and cache counters are "
                             "flushed on exit")
    return parser


def load_campaign(run_dir: Path) -> Campaign:
    """Rebuild the campaign from the run's factory spec, validated."""
    from repro.resilience.distributed import build_campaign

    spec_path = run_dir / CAMPAIGN_SPEC_NAME
    try:
        spec = json.loads(spec_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(
            f"cannot read campaign spec {spec_path}: {exc}"
        ) from None
    return build_campaign(spec)


def _heartbeat_loop(
    queue: WorkQueue, lease: Lease, stop: threading.Event, interval: float
) -> None:
    while not stop.wait(interval):
        queue.heartbeat(lease)


class Worker:
    """The claim/execute/journal loop; one instance per process."""

    def __init__(
        self,
        queue: WorkQueue,
        journal: RunJournal,
        campaign: Campaign,
        worker_id: str,
        worker_index: int = 0,
        lease_ttl_s: float = 5.0,
        heartbeat_s: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        unit_timeout_s: Optional[float] = None,
        chaos: Optional[ChaosMonkey] = None,
        worker_chaos: Optional[WorkerChaos] = None,
        poll_s: float = 0.1,
        sleep=time.sleep,
    ) -> None:
        self.queue = queue
        self.journal = journal
        self.units: Dict[str, WorkUnit] = {
            unit.unit_id: unit for unit in campaign.units
        }
        self.worker_id = worker_id
        self.worker_index = worker_index
        self.lease_ttl_s = lease_ttl_s
        self.heartbeat_s = (
            heartbeat_s
            if heartbeat_s is not None
            else max(0.05, lease_ttl_s / 3.0)
        )
        self.policy = policy if policy is not None else RetryPolicy()
        self.guard = BudgetGuard(
            ResourceBudget(unit_timeout_s=unit_timeout_s)
        )
        self.chaos = chaos
        self.worker_chaos = worker_chaos
        self.poll_s = poll_s
        self.sleep = sleep
        self.executed = 0

    def run(self) -> None:
        """Claim and execute until every queued unit has a done marker."""
        while True:
            pending = [
                uid
                for uid in self.queue.pending_units()
                if not self.queue.is_done(uid)
            ]
            if not pending:
                return
            offset = self.worker_index % len(pending)
            progress = False
            for uid in pending[offset:] + pending[:offset]:
                unit = self.units.get(uid)
                if unit is None:
                    continue  # queued by a different campaign build
                lease = self.queue.claim(
                    uid, self.worker_id, ttl_s=self.lease_ttl_s
                )
                if lease is None:
                    continue
                progress = True
                self._execute(unit, lease)
            if not progress:
                # Everything claimable is held by live peers; wait for
                # done markers, expiries, or speculation requests.
                self.sleep(self.poll_s)

    # -- one unit ------------------------------------------------------------

    def _provenance(self, lease: Lease) -> Dict[str, object]:
        extra: Dict[str, object] = {
            "worker": self.worker_id, "gen": lease.gen,
        }
        if lease.speculative:
            extra["speculative"] = True
        return extra

    def _execute(self, unit: WorkUnit, lease: Lease) -> None:
        stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(self.queue, lease, stop, self.heartbeat_s),
            daemon=True,
        )
        beat.start()
        if lease.speculative:
            self.journal.record_event(
                "speculate", unit_id=unit.unit_id, worker=self.worker_id,
                gen=lease.gen,
            )
        elif lease.gen > 1:
            self.journal.record_event(
                "steal", unit_id=unit.unit_id, worker=self.worker_id,
                gen=lease.gen,
            )
        try:
            if self.worker_chaos is not None:
                # May SIGKILL this process (lease goes stale -> stolen)
                # or freeze it with the heartbeat alive (-> speculated).
                self.worker_chaos.strike(unit.unit_id)
            self._attempts(unit, lease)
        finally:
            stop.set()
            beat.join(timeout=1.0)
            self.queue.release(lease)

    def _attempts(self, unit: WorkUnit, lease: Lease) -> None:
        start = time.monotonic()
        cpu_start = time.process_time()
        failure: Optional[FailureClass] = None
        error: Optional[str] = None
        attempt = 0

        def measure(elapsed: float, attempts: int) -> Dict[str, object]:
            from repro.resilience.budget import current_rss_mb

            return UnitTelemetry(
                wall_s=elapsed,
                cpu_s=max(0.0, time.process_time() - cpu_start),
                rss_mb=current_rss_mb(),
                retries=max(0, attempts - 1),
            ).as_dict()

        for attempt in range(1, self.policy.max_attempts + 1):
            if self.queue.is_done(unit.unit_id):
                # A peer (steal or speculation) finished first; cancel.
                self.journal.record_event(
                    "spec-loss", unit_id=unit.unit_id,
                    worker=self.worker_id, gen=lease.gen,
                )
                return
            try:
                if self.chaos is not None:
                    self.chaos.strike(unit.unit_id, attempt)
                with self.guard.unit_timeout():
                    payload = unit.execute()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                failure = classify_failure(exc)
                error = f"{type(exc).__name__}: {exc}"
                if not self.policy.should_retry(failure, attempt):
                    break
                self.sleep(
                    self.policy.backoff_delay(unit.unit_id, attempt)
                )
            else:
                elapsed = time.monotonic() - start
                if self.queue.is_done(unit.unit_id):
                    self.journal.record_event(
                        "spec-loss", unit_id=unit.unit_id,
                        worker=self.worker_id, gen=lease.gen,
                    )
                    return
                # Journal first, publish second: a kill between the two
                # re-runs the unit idempotently; the reverse order
                # could mark work done that no journal holds.
                self.journal.record_unit(
                    unit, "ok", attempt, elapsed, result=payload,
                    telemetry=measure(elapsed, attempt),
                    extra=self._provenance(lease),
                )
                self.executed += 1
                won = self.queue.mark_done(
                    unit.unit_id, self.worker_id, "ok", elapsed,
                    gen=lease.gen,
                )
                if not won:
                    self.journal.record_event(
                        "spec-loss", unit_id=unit.unit_id,
                        worker=self.worker_id, gen=lease.gen,
                    )
                return
        elapsed = time.monotonic() - start
        failure_value = failure.value if failure is not None else None
        self.journal.record_unit(
            unit, "failed", attempt, elapsed,
            failure_class=failure_value, error=error,
            telemetry=measure(elapsed, attempt),
            extra=self._provenance(lease),
        )
        # Publish the failed verdict too: peers must not burn retries
        # on a deterministic failure. A later --resume clears non-ok
        # markers and retries, matching serial resume semantics.
        self.queue.mark_done(
            unit.unit_id, self.worker_id, "failed", elapsed, gen=lease.gen
        )


def worker_main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    run_dir = Path(args.run)
    try:
        campaign = load_campaign(run_dir)
    except ReproError as exc:
        print(f"worker error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    queue = WorkQueue(run_dir / "queue", default_ttl_s=args.lease_ttl)
    journal = RunJournal.open(
        run_dir / WORKERS_DIR,
        args.worker_id,
        campaign,
        meta={"worker": args.worker_id},
    )
    chaos = (
        ChaosMonkey(ChaosConfig(seed=args.chaos_seed))
        if args.chaos
        else None
    )
    worker_chaos = (
        WorkerChaos(
            WorkerChaosConfig(
                seed=args.chaos_seed,
                kill_prob=args.worker_kill_prob,
                freeze_prob=args.worker_freeze_prob,
                freeze_s=args.worker_freeze_s,
            ),
            worker_id=args.worker_id,
            incarnation=args.incarnation,
        )
        if args.chaos_workers
        else None
    )
    worker = Worker(
        queue=queue,
        journal=journal,
        campaign=campaign,
        worker_id=args.worker_id,
        worker_index=args.worker_index,
        lease_ttl_s=args.lease_ttl,
        heartbeat_s=args.heartbeat,
        policy=RetryPolicy(
            max_attempts=max(1, args.retries), base_delay_s=args.backoff
        ),
        unit_timeout_s=args.unit_timeout,
        chaos=chaos,
        worker_chaos=worker_chaos,
        poll_s=args.poll,
    )
    # Pin every artifact this worker touches for the duration of the
    # run, so a concurrent `cache gc` cannot evict in-flight inputs.
    from repro.harness.diskcache import DiskCache, activate_pin, flush_counters

    cache = DiskCache.from_spec(args.cache_dir)
    if cache is not None:
        activate_pin(f"run-{run_dir.name}-{args.worker_id}")
    journal.record_event(
        "start", worker=args.worker_id, pid=os.getpid(),
        incarnation=args.incarnation,
    )
    try:
        worker.run()
    finally:
        journal.record_event(
            "exit", worker=args.worker_id, executed=worker.executed
        )
        if cache is not None:
            flush_counters()
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(worker_main())
