"""Deterministic op streams that campaigns attack.

A campaign needs a victim workload: a sequence of sector-granular reads
and writes that establishes ciphertext, counters, MACs, and tree state
before a fault is mounted. Two sources are supported:

* :func:`ops_from_trace` distills the stream from a benchmark trace —
  the same synthetic workloads the performance experiments use, so the
  attacked state has realistic spatial structure and value locality;
* :func:`synthetic_ops` generates a free-standing seeded stream for
  tests that do not want to pay for trace generation.

:func:`value_sweep_ops` produces writes whose 32-bit values sweep a key
range — the warm-up the value-stress campaign uses to saturate a
(deliberately weakened) value cache before measuring false accepts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

from repro.common.rng import RngStream
from repro.workloads.trace import Trace

SECTOR_BYTES = 32


@dataclass(frozen=True)
class Op:
    """One sector-granular operation of the victim workload."""

    write: bool
    address: int
    #: Sector payload for writes; ``None`` for reads.
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.address % SECTOR_BYTES != 0:
            raise ValueError(f"address {self.address:#x} not sector aligned")
        if self.write and (self.data is None or len(self.data) != SECTOR_BYTES):
            raise ValueError("writes need one whole sector of data")


def _fill_data(tag: str, index: int, address: int) -> bytes:
    """Deterministic sector payload for value-less trace accesses."""
    return hashlib.sha256(
        f"{tag}:{index}:{address:#x}".encode("ascii")
    ).digest()


def ops_from_trace(
    trace: Trace, size_bytes: int, limit: Optional[int] = None
) -> List[Op]:
    """Map a benchmark trace onto the functional memory's address space.

    Each set sector of each coalesced access becomes one op at the
    sector address folded into ``[0, size_bytes)``. Sector images from
    the trace's value model are used verbatim; accesses without images
    get deterministic content-hashed payloads so writes stay
    reproducible.
    """
    if size_bytes % SECTOR_BYTES != 0 or size_bytes <= 0:
        raise ValueError("size_bytes must be a positive sector multiple")
    ops: List[Op] = []
    for i, access in enumerate(trace):
        for slot in access.sectors():
            address = (access.line_addr + slot * SECTOR_BYTES) % size_bytes
            address -= address % SECTOR_BYTES
            if access.write:
                data = access.value_for(slot)
                if data is None:
                    data = _fill_data(trace.name, i, address)
                ops.append(Op(write=True, address=address, data=data))
            else:
                ops.append(Op(write=False, address=address))
            if limit is not None and len(ops) >= limit:
                return ops
    return ops


def synthetic_ops(
    seed: int, count: int, size_bytes: int, write_fraction: float = 0.6
) -> List[Op]:
    """A free-standing seeded op stream (writes first touch, then mixed)."""
    if size_bytes % SECTOR_BYTES != 0 or size_bytes <= 0:
        raise ValueError("size_bytes must be a positive sector multiple")
    rng = RngStream(seed=seed)
    sectors = size_bytes // SECTOR_BYTES
    ops: List[Op] = []
    written: List[int] = []
    for i in range(count):
        make_write = not written or rng.random() < write_fraction
        if make_write:
            address = int(rng.integers(0, sectors)) * SECTOR_BYTES
            ops.append(
                Op(write=True, address=address,
                   data=_fill_data("synthetic", i, address))
            )
            written.append(address)
        else:
            ops.append(Op(write=False, address=int(rng.choice(written))))
    return ops


def value_sweep_ops(
    size_bytes: int, keys: int = 256, key_shift: int = 24
) -> List[Op]:
    """Writes whose 32-bit values sweep ``keys`` distinct cache keys.

    With a weakened :class:`~repro.secure.value_cache.ValueCacheConfig`
    (large ``mask_bits``), this warm-up populates the cache with every
    reachable key so that random tampered plaintext *will* hit — the
    regime in which the value-stress campaign measures a non-trivial
    false-accept rate and checks it against the analytic model.
    """
    ops: List[Op] = []
    values_per_sector = SECTOR_BYTES // 4
    address = 0
    value = 0
    while value < keys:
        sector = b"".join(
            ((min(value + j, keys - 1) << key_shift) & 0xFFFFFFFF).to_bytes(
                4, "little"
            )
            for j in range(values_per_sector)
        )
        ops.append(Op(write=True, address=address % size_bytes, data=sector))
        address += SECTOR_BYTES
        value += values_per_sector
    return ops
