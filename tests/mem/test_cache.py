"""Tests for the sectored set-associative cache."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SectoredCache


def make_cache(size=2048, ways=4, sectored=True):
    return SectoredCache(
        CacheConfig(name="t", size_bytes=size, ways=ways, sectored=sectored)
    )


class TestConfigValidation:
    def test_valid_default(self):
        assert make_cache().config.num_lines == 16

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="t", size_bytes=2000)

    def test_lines_must_divide_into_ways(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="t", size_bytes=3 * 128, ways=2)

    def test_sector_must_divide_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(name="t", size_bytes=2048, sector_bytes=48)

    def test_non_power_of_two_sets_allowed(self):
        """Volta L2 banks have 96 sets."""
        config = CacheConfig(name="l2", size_bytes=192 * 1024, ways=16)
        assert config.num_sets == 96
        SectoredCache(config)  # must construct fine


class TestHitMissBasics:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x0, 0b0001)
        assert first.miss_mask == 0b0001 and first.hit_mask == 0
        second = cache.access(0x0, 0b0001)
        assert second.hit_mask == 0b0001 and second.miss_mask == 0

    def test_partial_sector_miss(self):
        cache = make_cache()
        cache.access(0x0, 0b0011)
        result = cache.access(0x0, 0b1111)
        assert result.hit_mask == 0b0011
        assert result.miss_mask == 0b1100

    def test_sector_isolation_between_lines(self):
        cache = make_cache()
        cache.access(0x0, 0b1111)
        result = cache.access(0x80, 0b1111)
        assert result.miss_mask == 0b1111

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            make_cache().access(0x0, 0b0000)

    def test_mask_is_truncated_to_line(self):
        cache = make_cache()
        result = cache.access(0x0, 0b10001)  # bit 4 is out of range
        assert result.miss_mask == 0b0001


class TestNonSectored:
    def test_whole_line_fetched_on_any_access(self):
        cache = make_cache(sectored=False)
        result = cache.access(0x0, 0b0001)
        assert result.miss_mask == 0b1111

    def test_subsequent_sectors_hit(self):
        cache = make_cache(sectored=False)
        cache.access(0x0, 0b0001)
        assert cache.access(0x0, 0b1000).is_full_hit


class TestDirtyAndEviction:
    def test_write_marks_dirty(self):
        cache = make_cache()
        cache.access(0x0, 0b0011, write=True)
        eviction = cache.invalidate(0x0)
        assert eviction is not None and eviction.dirty_mask == 0b0011

    def test_clean_eviction_returns_none(self):
        cache = make_cache()
        cache.access(0x0, 0b1111, write=False)
        assert cache.invalidate(0x0) is None

    def test_lru_victim_is_oldest(self):
        cache = make_cache(size=4 * 128, ways=4)  # one set of 4 ways
        for i in range(4):
            cache.access(i * 128 * cache.config.num_sets, 0b1111)
        # Touch line 0 to refresh it, then insert a 5th line.
        cache.access(0, 0b1111)
        result = cache.access(4 * 128 * cache.config.num_sets, 0b1111)
        assert not cache.contains(128 * cache.config.num_sets)  # line 1 evicted
        assert cache.contains(0)
        del result

    def test_eviction_carries_dirty_sectors(self):
        cache = make_cache(size=4 * 128, ways=4)
        stride = 128 * cache.config.num_sets
        cache.access(0, 0b0101, write=True)
        for i in range(1, 4):
            cache.access(i * stride, 0b0001)
        result = cache.access(4 * stride, 0b0001)
        assert len(result.evictions) == 1
        assert result.evictions[0].line_addr == 0
        assert result.evictions[0].dirty_mask == 0b0101

    def test_flush_returns_all_dirty(self):
        cache = make_cache()
        cache.access(0x0, 0b0001, write=True)
        cache.access(0x100, 0b0010, write=True)
        cache.access(0x200, 0b0100, write=False)
        dirty = cache.flush()
        assert {(e.line_addr, e.dirty_mask) for e in dirty} == {
            (0x0, 0b0001),
            (0x100, 0b0010),
        }
        assert cache.resident_lines() == {}


class TestStats:
    def test_sector_hit_accounting(self):
        cache = make_cache()
        cache.access(0x0, 0b1111)   # 4 misses
        cache.access(0x0, 0b0011)   # 2 hits
        assert cache.stats.sector_misses == 4
        assert cache.stats.sector_hits == 2
        assert cache.stats.sector_hit_rate == pytest.approx(2 / 6)

    def test_fill_does_not_count_as_access(self):
        cache = make_cache()
        cache.fill(0x0, 0b1111)
        assert cache.stats.accesses == 0
        assert cache.access(0x0, 0b1111).is_full_hit

    def test_mark_dirty_only_touches_resident(self):
        cache = make_cache()
        cache.access(0x0, 0b0011)
        cache.mark_dirty(0x0, 0b1111)
        eviction = cache.invalidate(0x0)
        assert eviction.dirty_mask == 0b0011  # only resident sectors


class TestSetHashing:
    def test_power_of_two_strides_spread_over_sets(self):
        """Large power-of-two strides must not all land in one set
        (the integrity-tree-level pathology)."""
        cache = make_cache(size=2048, ways=4)  # 4 sets
        sets = {cache._set_index(i * (1 << 20)) for i in range(16)}
        assert len(sets) > 1

    def test_same_line_same_set(self):
        cache = make_cache()
        assert cache._set_index(0x1280) == cache._set_index(0x1280)
