"""Set-associative sectored caches.

All on-chip storage in the model — L2 data banks and the per-partition
metadata caches (counter / MAC / BMT / compact layers) — is an instance
of :class:`SectoredCache`. Lines carry per-sector valid and dirty bits;
an access names a line plus a sector mask, and the cache answers which
sectors hit, which must be fetched, and what got evicted.

Sectoring is load-bearing for the paper: PSSM's central claim is that
fetching only the touched 32-byte sectors of a metadata line avoids
useless traffic, while the BMT's 128-byte hashing granularity forces the
counter cache to fetch whole lines anyway — the tension Plutus's
finer-granularity design resolves. Setting ``sectored=False`` reproduces
a conventional whole-line cache for the ablations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.bitops import popcount
from repro.common.errors import ConfigurationError
from repro.obs.session import active as _obs_active


@dataclass(frozen=True)
class CacheConfig:
    """Static geometry of one cache instance."""

    name: str
    size_bytes: int
    line_bytes: int = 128
    ways: int = 4
    sector_bytes: int = 32
    sectored: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % self.line_bytes != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not a multiple of line size"
            )
        if self.line_bytes % self.sector_bytes != 0:
            raise ConfigurationError(
                f"{self.name}: line size must be a multiple of sector size"
            )
        num_lines = self.size_bytes // self.line_bytes
        if num_lines % self.ways != 0:
            raise ConfigurationError(
                f"{self.name}: {num_lines} lines not divisible by {self.ways} ways"
            )
        # Set counts need not be powers of two (Volta's L2 banks have 96
        # sets); indexing is by modulo, which handles any count.

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes

    @property
    def full_mask(self) -> int:
        return (1 << self.sectors_per_line) - 1


@dataclass
class CacheStats:
    """Aggregate hit/miss/eviction counters for one cache."""

    accesses: int = 0
    sector_hits: int = 0
    sector_misses: int = 0
    line_evictions: int = 0
    dirty_evictions: int = 0

    @property
    def sector_hit_rate(self) -> float:
        probed = self.sector_hits + self.sector_misses
        return self.sector_hits / probed if probed else 0.0


@dataclass
class Eviction:
    """A line pushed out of the cache, with its dirty sectors."""

    line_addr: int
    dirty_mask: int

    @property
    def dirty_sector_count(self) -> int:
        return popcount(self.dirty_mask)


@dataclass
class AccessResult:
    """Outcome of one cache access.

    ``miss_mask`` names the sectors the caller must fetch from the next
    level; ``evictions`` are writebacks the caller must perform.
    """

    hit_mask: int
    miss_mask: int
    evictions: List[Eviction] = field(default_factory=list)

    @property
    def is_full_hit(self) -> bool:
        return self.miss_mask == 0

    @property
    def miss_sector_count(self) -> int:
        return popcount(self.miss_mask)

    @property
    def hit_sector_count(self) -> int:
        return popcount(self.hit_mask)


class _Line:
    __slots__ = ("valid_mask", "dirty_mask")

    def __init__(self) -> None:
        self.valid_mask = 0
        self.dirty_mask = 0


class SectoredCache:
    """LRU set-associative cache with per-sector valid/dirty state.

    Addresses are opaque non-negative integers; callers may present
    physical addresses, partition-local metadata addresses, or abstract
    node indices — the cache only requires that equal lines have equal
    ``line_addr``.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # One OrderedDict per set: line_addr -> _Line, LRU order = insertion
        # order with move_to_end on touch.
        self._sets: List["OrderedDict[int, _Line]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        # Observability binds at construction: instances created under an
        # active session publish hit/miss/eviction counters aggregated by
        # cache *family* — the name up to the partition index, so
        # "ctr[0]".."ctr[31]" all feed "cache.ctr.*". Disabled sessions
        # leave the slots None and access() pays one check.
        obs = _obs_active()
        if obs.config.metrics_active:
            family = config.name.split("[", 1)[0]
            registry = obs.registry
            self._m_hits = registry.counter(f"cache.{family}.sector_hits")
            self._m_misses = registry.counter(f"cache.{family}.sector_misses")
            self._m_evictions = registry.counter(
                f"cache.{family}.line_evictions"
            )
        else:
            self._m_hits = None
            self._m_misses = None
            self._m_evictions = None
        # Hot-path precomputation for :meth:`access_run_raw`. The XOR
        # fold in :meth:`_set_index` is pure in the address, so repeat
        # lookups hit a memo dict (bounded by the distinct lines the
        # metadata address space ever touches); popcounts of sector
        # masks come from a table when lines are narrow enough (the
        # 128 B / 32 B metadata lines have only 4 sectors).
        self._set_memo: Dict[int, int] = {}
        self._pc_table: Optional[List[int]] = (
            [bin(m).count("1") for m in range(1 << config.sectors_per_line)]
            if config.sectors_per_line <= 16 else None
        )

    def _set_index(self, line_addr: int) -> int:
        """XOR-folded set index.

        Plain modulo indexing pathologically conflicts for metadata
        address spaces whose regions (e.g. integrity-tree levels) start
        at large power-of-two offsets — every level of a tree walk would
        land in one set and the walk would thrash itself. Folding the
        upper line-index bits into the index (as real cache hash
        functions do) decorrelates those strides.
        """
        line = line_addr // self.config.line_bytes
        sets = self.config.num_sets
        if sets == 1:
            return 0  # fully-associative: the fold below cannot shrink line
        folded = 0
        while line:
            folded ^= line % sets
            line //= sets
        # XOR of residues can exceed sets-1 when the set count is not a
        # power of two (e.g. Volta's 96-set L2 banks); reduce once more.
        return folded % sets

    def _normalize_mask(self, sector_mask: int) -> int:
        mask = sector_mask & self.config.full_mask
        if mask == 0:
            raise ValueError("sector mask selects no sectors")
        if not self.config.sectored:
            # Non-sectored caches always operate on the whole line.
            return self.config.full_mask
        return mask

    def probe(self, line_addr: int, sector_mask: int) -> Tuple[int, int]:
        """Hit/miss masks without updating state or statistics."""
        mask = self._normalize_mask(sector_mask)
        line = self._sets[self._set_index(line_addr)].get(line_addr)
        if line is None:
            return 0, mask
        hit = mask & line.valid_mask
        return hit, mask & ~line.valid_mask

    def access(
        self, line_addr: int, sector_mask: int, write: bool = False
    ) -> AccessResult:
        """Look up *sector_mask* of the line, allocating on miss.

        Missing sectors are filled (the caller is responsible for
        generating the corresponding fetch traffic). On a write, the
        touched sectors are marked dirty. Victim lines surface in the
        result so the caller can issue writebacks for dirty sectors.
        """
        mask = self._normalize_mask(sector_mask)
        self.stats.accesses += 1
        set_ = self._sets[self._set_index(line_addr)]
        evictions: List[Eviction] = []

        line = set_.get(line_addr)
        if line is None:
            if len(set_) >= self.config.ways:
                victim_addr, victim = set_.popitem(last=False)
                self.stats.line_evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
                if victim.dirty_mask:
                    self.stats.dirty_evictions += 1
                    evictions.append(Eviction(victim_addr, victim.dirty_mask))
            line = _Line()
            set_[line_addr] = line
        else:
            set_.move_to_end(line_addr)

        hit_mask = mask & line.valid_mask
        miss_mask = mask & ~line.valid_mask
        hits = popcount(hit_mask)
        misses = popcount(miss_mask)
        self.stats.sector_hits += hits
        self.stats.sector_misses += misses
        if self._m_hits is not None:
            if hits:
                self._m_hits.inc(hits)
            if misses:
                self._m_misses.inc(misses)

        line.valid_mask |= mask
        if write:
            line.dirty_mask |= mask

        return AccessResult(hit_mask=hit_mask, miss_mask=miss_mask, evictions=evictions)

    def access_run(
        self, line_addr: int, sector_mask: int, write: bool, count: int
    ) -> AccessResult:
        """*count* consecutive identical accesses, compressed to one.

        State- and stats-identical to calling :meth:`access` *count*
        times with the same arguments: after the first access the line
        is resident with every masked sector valid (and dirty, on a
        write), so each repeat is a full hit that moves the line to the
        MRU slot it already occupies and evicts nothing. The batch
        replay path leans on this to collapse the per-event metadata
        lookups of a same-location run into one real access plus bulk
        hit accounting.
        """
        if count < 1:
            raise ValueError("access_run needs count >= 1")
        result = self.access(line_addr, sector_mask, write)
        if count > 1:
            repeats = count - 1
            hits = repeats * popcount(
                self._normalize_mask(sector_mask)
            )
            self.stats.accesses += repeats
            self.stats.sector_hits += hits
            if self._m_hits is not None and hits:
                self._m_hits.inc(hits)
        return result

    def access_run_raw(
        self, line_addr: int, sector_mask: int, write: bool, count: int
    ):
        """:meth:`access_run` without the :class:`AccessResult` wrapper.

        The batch replay layer calls this once per same-location
        sub-run; at that rate the dataclass allocation and the popcount
        properties dominate, so the raw form returns a plain
        ``(miss_mask, miss_sector_count, evictions)`` tuple with an
        empty-tuple placeholder when nothing dirty left the cache.
        State and statistics transitions are identical to
        :meth:`access_run`.
        """
        mask = self._normalize_mask(sector_mask)
        stats = self.stats
        stats.accesses += count
        memo = self._set_memo
        index = memo.get(line_addr)
        if index is None:
            index = self._set_index(line_addr)
            memo[line_addr] = index
        set_ = self._sets[index]
        evictions = ()

        line = set_.get(line_addr)
        if line is None:
            if len(set_) >= self.config.ways:
                victim_addr, victim = set_.popitem(last=False)
                stats.line_evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
                if victim.dirty_mask:
                    stats.dirty_evictions += 1
                    evictions = (Eviction(victim_addr, victim.dirty_mask),)
            line = _Line()
            set_[line_addr] = line
        else:
            set_.move_to_end(line_addr)

        valid = line.valid_mask
        hit_mask = mask & valid
        miss_mask = mask & ~valid
        pc = self._pc_table
        if pc is not None:
            hits = pc[hit_mask]
            if count > 1:
                hits += (count - 1) * pc[mask]
            misses = pc[miss_mask]
        else:
            hits = popcount(hit_mask)
            if count > 1:
                hits += (count - 1) * popcount(mask)
            misses = popcount(miss_mask)
        stats.sector_hits += hits
        stats.sector_misses += misses
        if self._m_hits is not None:
            if hits:
                self._m_hits.inc(hits)
            if misses:
                self._m_misses.inc(misses)

        line.valid_mask |= mask
        if write:
            line.dirty_mask |= mask
        return miss_mask, misses, evictions

    def fill(self, line_addr: int, sector_mask: int) -> AccessResult:
        """Install sectors without counting a demand access (prefetch/fill)."""
        saved = self.stats.accesses
        result = self.access(line_addr, sector_mask, write=False)
        self.stats.accesses = saved
        return result

    def mark_dirty(self, line_addr: int, sector_mask: int) -> None:
        """Set dirty bits on already-resident sectors."""
        line = self._sets[self._set_index(line_addr)].get(line_addr)
        if line is not None:
            line.dirty_mask |= sector_mask & line.valid_mask

    def contains(self, line_addr: int, sector_mask: int = -1) -> bool:
        """True if all selected sectors of the line are resident."""
        hit, miss = self.probe(line_addr, sector_mask & self.config.full_mask or self.config.full_mask)
        return miss == 0 and hit != 0

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Drop a line, returning its dirty sectors if any."""
        set_ = self._sets[self._set_index(line_addr)]
        line = set_.pop(line_addr, None)
        if line is None:
            return None
        if line.dirty_mask:
            return Eviction(line_addr, line.dirty_mask)
        return None

    def flush(self) -> List[Eviction]:
        """Empty the cache, returning every dirty line for writeback."""
        dirty: List[Eviction] = []
        for set_ in self._sets:
            for addr, line in set_.items():
                if line.dirty_mask:
                    dirty.append(Eviction(addr, line.dirty_mask))
            set_.clear()
        return dirty

    def resident_lines(self) -> Dict[int, int]:
        """Map of resident line address -> valid sector mask (for tests)."""
        out: Dict[int, int] = {}
        for set_ in self._sets:
            for addr, line in set_.items():
                out[addr] = line.valid_mask
        return out

    def state_summary(self):
        """Canonical full-state value for differential comparison.

        Captures everything future behavior depends on: per-set LRU
        order (insertion order of the OrderedDicts), per-line valid and
        dirty masks, and the aggregate statistics. Two caches with equal
        summaries are behaviorally indistinguishable from here on.
        """
        sets = [
            [(addr, line.valid_mask, line.dirty_mask)
             for addr, line in set_.items()]
            for set_ in self._sets
        ]
        st = self.stats
        return (
            sets,
            (st.accesses, st.sector_hits, st.sector_misses,
             st.line_evictions, st.dirty_evictions),
        )
