"""The campaign supervisor: retries, journaling, budgets, degradation.

:class:`Supervisor.run` executes a :class:`~repro.resilience.units.Campaign`
unit by unit under one retry policy, resource budget, optional chaos
monkey, and optional run journal:

* a unit already marked ``ok`` in the journal is **skipped** and its
  journaled result reused (that is what makes ``--resume`` after
  ``kill -9`` cheap and byte-identical);
* a failing attempt is classified (crash / timeout / deterministic /
  budget) and retried with seeded exponential backoff while the policy
  allows;
* budgets are checked before every unit and between retry attempts;
  exhaustion cancels all remaining units — they are *not* journaled,
  so a later resume still runs them — and the outcome is **partial**;
* every finished unit (ok or failed) is journaled with an fsync before
  the supervisor moves on.

Journal, retry, chaos, and watchdog events flow into the ambient
:mod:`repro.obs` session (``resilience.*`` metrics and trace events),
so a profile of a supervised run shows *how* it survived, not just
that it did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.errors import EXIT_OK, EXIT_PARTIAL
from repro.obs import active
from repro.resilience.budget import BudgetGuard, ResourceBudget, current_rss_mb
from repro.resilience.chaos import ChaosMonkey
from repro.resilience.journal import RunJournal
from repro.resilience.policy import FailureClass, RetryPolicy, classify_failure
from repro.resilience.telemetry import UnitTelemetry, rollup
from repro.resilience.units import Campaign, WorkUnit

#: Unit statuses a :class:`UnitOutcome` can carry.
STATUS_OK = "ok"
STATUS_SKIPPED = "skipped"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"


@dataclass
class UnitOutcome:
    """What the supervisor concluded about one work unit."""

    unit_id: str
    kind: str
    label: str
    status: str
    attempts: int = 0
    failure_class: Optional[str] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    #: JSON-normalized result payload (``ok``/``skipped`` only).
    result: Optional[object] = None
    #: Resource measurements for the attempt series (journal form);
    #: ``None`` for skipped/cancelled units, which never executed here.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def completed(self) -> bool:
        return self.status in (STATUS_OK, STATUS_SKIPPED)


@dataclass
class CampaignOutcome:
    """One supervised run: per-unit outcomes plus the overall verdict."""

    campaign: str
    fingerprint: str
    run_id: Optional[str] = None
    outcomes: List[UnitOutcome] = field(default_factory=list)
    #: Stable reason degradation was triggered (``None`` = no budget
    #: tripped; units may still have failed).
    degraded: Optional[str] = None
    wall_s: float = 0.0
    #: Roll-up of per-unit resource telemetry (measured units only);
    #: see :func:`repro.resilience.telemetry.rollup`.
    telemetry: Dict[str, object] = field(default_factory=dict)

    def count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def results(self) -> Dict[str, object]:
        """unit_id -> result payload for every completed unit."""
        return {o.unit_id: o.result for o in self.outcomes if o.completed}

    @property
    def partial(self) -> bool:
        return self.degraded is not None or any(
            not o.completed for o in self.outcomes
        )

    @property
    def ok(self) -> bool:
        return not self.partial

    @property
    def exit_code(self) -> int:
        return EXIT_PARTIAL if self.partial else EXIT_OK


class Supervisor:
    """Executes campaigns resiliently; see the module docstring."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        budget: Optional[ResourceBudget] = None,
        chaos: Optional[ChaosMonkey] = None,
        journal: Optional[RunJournal] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        cpu_clock: Callable[[], float] = time.process_time,
        rss_probe: Callable[[], Optional[float]] = current_rss_mb,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        self.budget = budget if budget is not None else ResourceBudget()
        self.chaos = chaos
        self.journal = journal
        self.sleep = sleep
        self.clock = clock
        #: Telemetry clocks/probes, injectable for deterministic tests.
        self.cpu_clock = cpu_clock
        self.rss_probe = rss_probe

    def run(self, campaign: Campaign) -> CampaignOutcome:
        """Execute *campaign* to a :class:`CampaignOutcome`."""
        session = active()
        registry = session.registry
        tracer = session.tracer
        guard = BudgetGuard(self.budget, clock=self.clock)
        guard.start()
        outcome = CampaignOutcome(
            campaign=campaign.name,
            fingerprint=campaign.fingerprint,
            run_id=self.journal.run_id if self.journal else None,
        )
        completed = self.journal.completed() if self.journal else {}
        tracer.emit(
            "resilience.run",
            campaign=campaign.name,
            units=len(campaign.units),
            resumed=len(completed),
        )
        try:
            for unit in campaign.units:
                prior = completed.get(unit.unit_id)
                if prior is not None:
                    outcome.outcomes.append(
                        UnitOutcome(
                            unit_id=unit.unit_id,
                            kind=unit.kind,
                            label=unit.label,
                            status=STATUS_SKIPPED,
                            attempts=0,
                            result=prior.get("result"),
                        )
                    )
                    registry.counter("resilience.units_skipped").inc()
                    continue
                if outcome.degraded is None:
                    reason = guard.exceeded()
                    if reason is not None:
                        self._degrade(outcome, reason, registry, tracer)
                if outcome.degraded is not None:
                    outcome.outcomes.append(
                        UnitOutcome(
                            unit_id=unit.unit_id,
                            kind=unit.kind,
                            label=unit.label,
                            status=STATUS_CANCELLED,
                            error=outcome.degraded,
                        )
                    )
                    registry.counter("resilience.units_cancelled").inc()
                    continue
                unit_outcome = self._run_unit(unit, guard, registry, tracer)
                outcome.outcomes.append(unit_outcome)
                if unit_outcome.failure_class == FailureClass.BUDGET.value:
                    self._degrade(
                        outcome,
                        unit_outcome.error or "budget exhausted",
                        registry,
                        tracer,
                    )
        finally:
            guard.stop()
        outcome.wall_s = guard.elapsed()
        registry.gauge("resilience.wall_seconds").set(outcome.wall_s)
        outcome.telemetry = rollup(u.telemetry for u in outcome.outcomes)
        registry.gauge("resilience.cpu_seconds").set(
            float(outcome.telemetry.get("cpu_s", 0.0))  # type: ignore[arg-type]
        )
        if self.journal is not None:
            self.journal.record_end(
                "partial" if outcome.partial else "complete",
                reason=outcome.degraded,
                telemetry=outcome.telemetry,
            )
        tracer.emit(
            "resilience.end",
            campaign=campaign.name,
            status="partial" if outcome.partial else "complete",
            ok=outcome.count(STATUS_OK),
            skipped=outcome.count(STATUS_SKIPPED),
            failed=outcome.count(STATUS_FAILED),
            cancelled=outcome.count(STATUS_CANCELLED),
        )
        return outcome

    # -- internals -----------------------------------------------------------

    def _degrade(self, outcome, reason, registry, tracer) -> None:
        outcome.degraded = reason
        registry.counter("resilience.degraded").inc()
        tracer.emit("resilience.degraded", reason=reason)

    def _run_unit(
        self,
        unit: WorkUnit,
        guard: BudgetGuard,
        registry,
        tracer,
    ) -> UnitOutcome:
        policy = self.policy
        start = self.clock()
        cpu_start = self.cpu_clock()
        failure: Optional[FailureClass] = None
        error: Optional[str] = None
        attempt = 0

        def measure(elapsed: float, attempts: int) -> Dict[str, object]:
            return UnitTelemetry(
                wall_s=elapsed,
                cpu_s=max(0.0, self.cpu_clock() - cpu_start),
                rss_mb=self.rss_probe(),
                retries=max(0, attempts - 1),
            ).as_dict()
        for attempt in range(1, policy.max_attempts + 1):
            try:
                if self.chaos is not None:
                    self.chaos.strike(unit.unit_id, attempt)
                with guard.unit_timeout():
                    payload = unit.execute()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                failure = classify_failure(exc)
                error = f"{type(exc).__name__}: {exc}"
                registry.counter(
                    f"resilience.failures.{failure.value}"
                ).inc()
                tracer.emit(
                    "resilience.unit_failure",
                    unit=unit.label,
                    attempt=attempt,
                    failure=failure.value,
                    error=error,
                )
                if not policy.should_retry(failure, attempt):
                    break
                reason = guard.exceeded()
                if reason is not None:
                    # No budget left for another attempt: surface the
                    # exhaustion, not the transient failure.
                    failure = FailureClass.BUDGET
                    error = reason
                    break
                registry.counter("resilience.retries").inc()
                self.sleep(policy.backoff_delay(unit.unit_id, attempt))
            else:
                elapsed = self.clock() - start
                telemetry = measure(elapsed, attempt)
                if self.journal is not None:
                    self.journal.record_unit(
                        unit, STATUS_OK, attempt, elapsed, result=payload,
                        telemetry=telemetry,
                    )
                registry.counter("resilience.units_ok").inc()
                tracer.emit(
                    "resilience.unit_ok",
                    unit=unit.label,
                    attempts=attempt,
                    dur=elapsed,
                )
                return UnitOutcome(
                    unit_id=unit.unit_id,
                    kind=unit.kind,
                    label=unit.label,
                    status=STATUS_OK,
                    attempts=attempt,
                    elapsed_s=elapsed,
                    result=payload,
                    telemetry=telemetry,
                )
        elapsed = self.clock() - start
        telemetry = measure(elapsed, attempt)
        failure_value = failure.value if failure is not None else None
        if self.journal is not None and failure is not FailureClass.BUDGET:
            # Budget failures stay out of the journal: the unit never
            # ran to a verdict, so a resume should retry it.
            self.journal.record_unit(
                unit,
                STATUS_FAILED,
                attempt,
                elapsed,
                failure_class=failure_value,
                error=error,
                telemetry=telemetry,
            )
        registry.counter("resilience.units_failed").inc()
        return UnitOutcome(
            unit_id=unit.unit_id,
            kind=unit.kind,
            label=unit.label,
            status=STATUS_FAILED,
            attempts=attempt,
            failure_class=failure_value,
            error=error,
            elapsed_s=elapsed,
            telemetry=telemetry,
        )
