"""Fault classes and injection plans.

An :class:`InjectionPlan` is the complete, serializable description of
one adversarial tamper: *what* (the :class:`FaultKind`), *where* (the
target data address, plus kind-specific coordinates such as the bit to
flip, the splice source, or the tree level), and *when* (the workload
op index after which the fault is mounted). Campaigns generate plans
from a seed, so every run — and every failure — replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.common.errors import FaultInjectionError

SECTOR_BYTES = 32

#: The secure-memory variants a campaign attacks. ``"functional"`` is
#: AES-XTS with an unconditional MAC (no value cache) — the reference
#: where every covered fault must be detected outright. ``"recoverable"``
#: is the crash-recoverable engine (same volatile surfaces as
#: ``"functional"``, plus a persistent image the crash campaigns kill).
ENGINE_VARIANTS: Tuple[str, ...] = ("plutus", "pssm", "functional",
                                    "recoverable")


class FaultKind(Enum):
    """The attack classes of the paper's threat model (and then some)."""

    #: Spoofing: flip one ciphertext bit in untrusted DRAM.
    BITFLIP = "bitflip"
    #: Splicing: move valid (ciphertext, MAC) state between addresses.
    SPLICE = "splice"
    #: Replay: roll data *and* metadata back to a captured snapshot.
    REPLAY = "replay"
    #: Corrupt the stored split/compact counter blob of a group.
    COUNTER_CORRUPT = "counter_corrupt"
    #: Corrupt a stored MAC tag in the untrusted MAC region.
    MAC_CORRUPT = "mac_corrupt"
    #: Corrupt a stored integrity-tree node at a chosen depth.
    BMT_NODE = "bmt_node"
    #: Suppress a DRAM store (data or MAC stream) on the write path.
    DROPPED_WRITE = "dropped_write"


#: Kinds whose silent acceptance is *quantified* (value-cache false
#: accepts) rather than strictly forbidden: the tampered/garbage
#: plaintext may legitimately pass value verification with probability
#: that must stay under the MAC collision-rate bound.
QUANTIFIED_KINDS = frozenset(
    {FaultKind.BITFLIP, FaultKind.SPLICE, FaultKind.DROPPED_WRITE}
)

#: Kinds where returning the *correct original data* is acceptable:
#: MAC-region tampering with untouched ciphertext can be bypassed by a
#: legitimate value verification of genuine plaintext (data integrity
#: holds even though the MAC region lies).
BENIGN_OK_KINDS = frozenset({FaultKind.MAC_CORRUPT, FaultKind.DROPPED_WRITE})


@dataclass(frozen=True)
class InjectionPlan:
    """One fully specified adversarial tamper.

    ``trigger_index`` positions the fault in the workload: the campaign
    replays the op stream up to (and including) op ``trigger_index - 1``
    honestly, mounts the fault, then probes the target address with one
    read. Temporal kinds (:data:`FaultKind.REPLAY`,
    :data:`FaultKind.DROPPED_WRITE`) additionally perform their own
    advancing write at the trigger point — see
    :mod:`repro.faults.hooks`.
    """

    kind: FaultKind
    #: Sector-aligned data address the fault targets (and the probe reads).
    address: int
    #: Workload op count replayed before the fault is mounted.
    trigger_index: int
    #: BITFLIP: bit within the 256-bit sector. COUNTER_CORRUPT /
    #: MAC_CORRUPT: bit within the blob/tag (taken modulo its width).
    bit: int = 0
    #: SPLICE: the (written) source address whose state is copied in.
    src_address: Optional[int] = None
    #: BMT_NODE: stored-tree level of the corrupted sibling node
    #: (0 = leaf hashes; the root level itself is on-chip and trusted).
    tree_level: int = 0
    #: DROPPED_WRITE: which store is suppressed — ``"data"`` or ``"mac"``.
    stream: str = "data"

    def __post_init__(self) -> None:
        if self.address % SECTOR_BYTES != 0 or self.address < 0:
            raise FaultInjectionError(
                f"target address {self.address:#x} is not sector aligned"
            )
        if self.trigger_index < 0:
            raise FaultInjectionError("trigger index cannot be negative")
        if self.bit < 0:
            raise FaultInjectionError("bit index cannot be negative")
        if self.kind is FaultKind.BITFLIP and self.bit >= SECTOR_BYTES * 8:
            raise FaultInjectionError(
                f"bitflip bit {self.bit} outside a {SECTOR_BYTES}-byte sector"
            )
        if self.kind is FaultKind.SPLICE:
            if self.src_address is None:
                raise FaultInjectionError("splice plan needs src_address")
            if (
                self.src_address % SECTOR_BYTES != 0
                or self.src_address == self.address
            ):
                raise FaultInjectionError(
                    "splice source must be a different, aligned sector"
                )
        if self.kind is FaultKind.DROPPED_WRITE and self.stream not in (
            "data",
            "mac",
        ):
            raise FaultInjectionError(
                f"dropped-write stream must be 'data' or 'mac', "
                f"got {self.stream!r}"
            )
        if self.tree_level < 0:
            raise FaultInjectionError("tree level cannot be negative")

    def describe(self) -> str:
        """One-line human description for reports and trace events."""
        extra = ""
        if self.kind is FaultKind.BITFLIP:
            extra = f" bit {self.bit}"
        elif self.kind is FaultKind.SPLICE:
            extra = f" from {self.src_address:#x}"
        elif self.kind is FaultKind.BMT_NODE:
            extra = f" level {self.tree_level}"
        elif self.kind is FaultKind.DROPPED_WRITE:
            extra = f" ({self.stream} stream)"
        elif self.kind in (FaultKind.COUNTER_CORRUPT, FaultKind.MAC_CORRUPT):
            extra = f" bit {self.bit}"
        return (
            f"{self.kind.value} @ {self.address:#x}{extra} "
            f"after op {self.trigger_index}"
        )
