"""Functional secure GPU memory: real crypto, end to end.

Where the performance engines account *traffic*, this module implements
the actual security object: a sector-granular protected memory backed by
an untrusted :class:`~repro.mem.backing.BackingStore`, with

* AES-XTS (Plutus mode) or counter-mode (PSSM mode) encryption, tweaked
  by address and split counter;
* a truncated stateful MAC per 32-byte sector;
* a Merkle tree over the counter groups (replay protection) whose root
  is the only trusted state;
* in Plutus mode, a value cache that verifies reads without the MAC
  whenever enough decrypted values hit.

Every attack class from the threat model is expressible against the
exposed untrusted surfaces (``dram``, ``mac_store``, ``counter_blob``
storage, tree nodes), and the read path raises
:class:`~repro.common.errors.IntegrityError` or
:class:`~repro.common.errors.ReplayError` exactly as the hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.bitops import split_values
from repro.common.errors import (
    ConfigurationError,
    IntegrityError,
    ReplayError,
)
from repro.crypto.cme import CounterModeCipher
from repro.crypto.mac import HmacSha256Mac, MacAlgorithm
from repro.crypto.tweak import make_tweak
from repro.crypto.xts import AesXts
from repro.mem.backing import BackingStore
from repro.metadata.mac_store import MacStore
from repro.metadata.merkle import MerkleTree
from repro.metadata.split_counter import SplitCounterConfig, SplitCounterStore
from repro.secure.value_cache import ValueCache, ValueCacheConfig

SECTOR_BYTES = 32


@dataclass
class ReadFlow:
    """Trace of the verification steps one read took (for inspection)."""

    address: int = 0
    counter_verified: bool = False
    value_verified: bool = False
    mac_verified: bool = False
    value_hits: List[int] = field(default_factory=list)

    @property
    def mac_avoided(self) -> bool:
        return self.value_verified and not self.mac_verified


class SecureMemory:
    """A functional, attackable secure memory for one protection domain.

    ``mode`` selects the design: ``"plutus"`` (AES-XTS + value cache,
    MAC on value miss) or ``"pssm"`` (counter mode + unconditional MAC).
    Passing ``value_cache_config=None`` in Plutus mode disables value
    verification — AES-XTS with an unconditional MAC, the pure
    functional reference the fault campaigns call ``"functional"``.

    ``label`` names the engine variant in security exceptions (defaults
    to the mode), and ``op_index`` counts public read/write sector
    operations so a violation names the event that tripped it.
    """

    def __init__(
        self,
        size_bytes: int,
        mode: str = "plutus",
        key: bytes = b"\x11" * 64,
        mac_key: bytes = b"\x22" * 32,
        mac_tag_bytes: int = 8,
        counter_config: SplitCounterConfig = SplitCounterConfig(),
        value_cache_config: Optional[ValueCacheConfig] = ValueCacheConfig(),
        tree_arity: int = 16,
        label: Optional[str] = None,
    ) -> None:
        if size_bytes % SECTOR_BYTES != 0:
            raise ConfigurationError("memory size must be sector aligned")
        if mode not in ("plutus", "pssm"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        self.mode = mode
        self.label = label or mode
        self.size_bytes = size_bytes

        #: Untrusted ciphertext storage (attacker-writable).
        self.dram = BackingStore(size_bytes)
        #: Untrusted MAC storage (attacker-writable).
        mac_algorithm: MacAlgorithm = HmacSha256Mac(mac_key, mac_tag_bytes)
        self.mac_store = MacStore(mac_algorithm)
        #: Untrusted serialized counter groups (attacker-writable).
        self.counter_blobs: Dict[int, bytes] = {}

        self.counters = SplitCounterStore(counter_config)
        self._written: Set[int] = set()

        if mode == "plutus":
            self._xts = AesXts(key)
            self._cme = None
            self.value_cache = (
                ValueCache(value_cache_config)
                if value_cache_config is not None
                else None
            )
        else:
            self._xts = None
            self._cme = CounterModeCipher(key[:16])
            self.value_cache = None

        num_groups = -(
            -(size_bytes // SECTOR_BYTES) // counter_config.sectors_per_group
        )
        #: Merkle tree over counter groups; only ``tree.root`` is trusted.
        self.tree = MerkleTree(num_groups, arity=tree_arity)
        self._trusted_root = self.tree.root
        #: Verification trace of the most recent read.
        self.last_flow = ReadFlow()
        #: Lifetime statistics.
        self.reads = 0
        self.writes = 0
        self.mac_checks = 0
        self.mac_checks_avoided = 0
        #: Public sector operations performed so far; security
        #: exceptions cite the index of the operation that tripped them.
        self.op_index = 0

    # -- counter <-> untrusted storage ------------------------------------------

    def _serialize_group(self, group: int) -> bytes:
        """Pack a counter group (major + minors) for untrusted storage."""
        cfg = self.counters.config
        base = group * cfg.sectors_per_group
        major = self.counters.value(base)[0]
        blob = major.to_bytes(8, "little")
        for s in range(base, base + cfg.sectors_per_group):
            blob += self.counters.value(s)[1].to_bytes(2, "little")
        return blob

    def _publish_group(self, group: int) -> None:
        blob = self._serialize_group(group)
        self.counter_blobs[group] = blob
        self.tree.update_leaf(group, blob)
        self._trusted_root = self.tree.root

    def _verify_group(self, group: int, address: Optional[int] = None) -> None:
        """Check the stored counter blob against the trusted root.

        Re-raises the tree's :class:`ReplayError` enriched with the data
        address being served, the engine label, and the operation index
        — the context a campaign report (or a user) needs to act on.
        """
        blob = self.counter_blobs.get(group, b"")
        try:
            self.tree.verify_leaf(group, blob, trusted_root=self._trusted_root)
        except ReplayError as exc:
            where = (
                f"{address:#x}" if address is not None else f"group {group}"
            )
            raise ReplayError(
                f"counter-tree verification failed at {where} "
                f"(engine={self.label}, op={self.op_index}, "
                f"counter group {group}): {exc}",
                address=address,
                stream="counter",
            ) from exc

    # -- helpers ----------------------------------------------------------------------

    def _sector_index(self, address: int) -> int:
        if address % SECTOR_BYTES != 0:
            raise ValueError(f"address {address:#x} not sector aligned")
        if not 0 <= address < self.size_bytes:
            raise ValueError(f"address {address:#x} out of range")
        return address // SECTOR_BYTES

    def _encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        tweak = make_tweak(address, counter)
        if self._xts is not None:
            return self._xts.encrypt(plaintext, tweak)
        return self._cme.encrypt(plaintext, tweak)

    def _decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        tweak = make_tweak(address, counter)
        if self._xts is not None:
            return self._xts.decrypt(ciphertext, tweak)
        return self._cme.decrypt(ciphertext, tweak)

    # -- public API ----------------------------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Encrypt and store *data* (one or more whole sectors)."""
        if len(data) % SECTOR_BYTES != 0:
            raise ValueError("data must be whole sectors")
        for offset in range(0, len(data), SECTOR_BYTES):
            self._write_sector(address + offset, data[offset : offset + SECTOR_BYTES])

    def _write_sector(self, address: int, plaintext: bytes) -> None:
        self.writes += 1
        self.op_index += 1
        idx = self._sector_index(address)
        cfg = self.counters.config

        # Snapshot group counters in case the increment overflows the
        # minor: the old values are needed to re-encrypt the group.
        group = self.counters.group_of(idx)
        base = group * cfg.sectors_per_group
        old_counters = {
            s: self.counters.combined(s)
            for s in range(base, base + cfg.sectors_per_group)
        }

        outcome = self.counters.increment(idx)
        if outcome.minor_overflowed:
            self._reencrypt_group(outcome.reencrypted_sectors, old_counters,
                                  skip=idx)

        counter = self.counters.combined(idx)
        self.dram.write(address, self._encrypt(plaintext, address, counter))
        self.mac_store.update(idx, plaintext, address=address, counter=counter)
        self._written.add(idx)
        if self.value_cache is not None:
            self.value_cache.observe_many(split_values(plaintext, 4))
        self._publish_group(group)

    def _reencrypt_group(self, sectors, old_counters, skip: int) -> None:
        """Major bump: re-encrypt every written sector under new counters."""
        for s in sectors:
            if s == skip or s not in self._written:
                continue
            address = s * SECTOR_BYTES
            if address >= self.size_bytes:
                continue
            ciphertext = self.dram.read(address, SECTOR_BYTES)
            plaintext = self._decrypt(ciphertext, address, old_counters[s])
            new_counter = self.counters.combined(s)
            self.dram.write(address, self._encrypt(plaintext, address, new_counter))
            self.mac_store.update(s, plaintext, address=address, counter=new_counter)

    def read(self, address: int, length: int) -> bytes:
        """Fetch, verify, and decrypt *length* bytes (whole sectors).

        Raises :class:`ReplayError` when counter metadata fails the tree
        check and :class:`IntegrityError` when neither the value check
        (Plutus) nor the MAC accepts the decrypted data.
        """
        if length % SECTOR_BYTES != 0:
            raise ValueError("length must be whole sectors")
        out = bytearray()
        for offset in range(0, length, SECTOR_BYTES):
            out += self._read_sector(address + offset)
        return bytes(out)

    def _read_sector(self, address: int) -> bytes:
        self.reads += 1
        self.op_index += 1
        idx = self._sector_index(address)
        flow = ReadFlow(address=address)
        self.last_flow = flow

        if idx not in self._written:
            # Never-written memory: defined to read as zeros, with no
            # ciphertext to verify (matches zero-initialized device
            # memory semantics).
            return b"\x00" * SECTOR_BYTES

        group = self.counters.group_of(idx)
        self._verify_group(group, address=address)
        flow.counter_verified = True

        counter = self.counters.combined(idx)
        ciphertext = self.dram.read(address, SECTOR_BYTES)
        plaintext = self._decrypt(ciphertext, address, counter)

        if self.value_cache is not None:
            values = split_values(plaintext, 4)
            if self.value_cache.verify_sector(values):
                flow.value_verified = True
                flow.value_hits = values
                self.mac_checks_avoided += 1
                self.value_cache.observe_many(values)
                return plaintext

        self.mac_checks += 1
        if not self.mac_store.verify(idx, plaintext, address=address,
                                     counter=counter):
            raise IntegrityError(
                f"MAC verification failed at {address:#x} "
                f"(engine={self.label}, op={self.op_index})",
                address=address,
                stream="mac",
            )
        flow.mac_verified = True
        if self.value_cache is not None:
            self.value_cache.observe_many(split_values(plaintext, 4))
        return plaintext

    # -- attacker surface -------------------------------------------------------------

    def tamper_data(self, address: int, xor_mask: bytes) -> None:
        """Flip ciphertext bits in untrusted DRAM."""
        self.dram.corrupt(address, xor_mask)

    def tamper_counter_blob(self, group: int, xor_mask: bytes) -> None:
        """Flip bits of a stored (untrusted) counter group blob.

        Models split/compact counter corruption in the metadata region:
        the blob no longer matches its Merkle leaf, so the next read of
        the group must raise :class:`ReplayError`.
        """
        blob = bytearray(self.counter_blobs.get(group, b""))
        if not blob:
            raise ValueError(f"counter group {group} was never published")
        for i, b in enumerate(xor_mask):
            if i < len(blob):
                blob[i] ^= b
        self.counter_blobs[group] = bytes(blob)

    def replay_sector(self, address: int, old_ciphertext: bytes,
                      old_tag: bytes, old_blob: bytes) -> None:
        """Restore a previously captured (ciphertext, MAC, counter) state.

        The counter blob rollback is what the Merkle tree catches: the
        stored leaf no longer matches the trusted root.
        """
        idx = self._sector_index(address)
        self.dram.write(address, old_ciphertext)
        self.mac_store.corrupt(idx, old_tag)
        self.counter_blobs[self.counters.group_of(idx)] = old_blob

    def snapshot_sector(self, address: int):
        """Capture the untrusted state an attacker would record."""
        idx = self._sector_index(address)
        return (
            self.dram.read(address, SECTOR_BYTES),
            self.mac_store.stored_tag(idx),
            self.counter_blobs.get(self.counters.group_of(idx), b""),
        )
