"""Tests for security-level accounting."""

import pytest

from repro.analysis.security import (
    comparison_table,
    counter_lifetime_writes,
    mac_collision,
    storage_overhead_fraction,
    value_check_level,
)


class TestMacLevels:
    def test_collision_rates(self):
        assert mac_collision(4).success_probability == 2.0**-32
        assert mac_collision(8).success_probability == 2.0**-64

    def test_bits_of_security(self):
        assert mac_collision(8).bits_of_security == pytest.approx(64.0)

    def test_invalid_tag(self):
        with pytest.raises(ValueError):
            mac_collision(0)


class TestValueCheckLevel:
    def test_stronger_than_the_8B_mac_it_replaces(self):
        """The paper's central security claim."""
        value = value_check_level()
        mac8 = mac_collision(8)
        assert value.success_probability < mac8.success_probability

    def test_vastly_stronger_than_pssm_4B(self):
        value = value_check_level()
        assert value.bits_of_security > mac_collision(4).bits_of_security + 50


class TestComparisonTable:
    def test_table_ordering(self):
        table = comparison_table()
        assert len(table) == 4
        # Last row (value check) is the strongest.
        assert table[-1].success_probability == min(
            r.success_probability for r in table
        )


class TestCounterLifetime:
    def test_worst_case_writes(self):
        assert counter_lifetime_writes(minor_bits=6, major_bits=64) == pytest.approx(
            2.0**6 * 2.0**64
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            counter_lifetime_writes(minor_bits=0)


class TestStorageOverhead:
    def test_mac_dominates(self):
        """8 B tag per 32 B sector = 25% before counters and tree."""
        overhead = storage_overhead_fraction()
        assert 0.25 < overhead < 0.35

    def test_smaller_tags_smaller_overhead(self):
        assert storage_overhead_fraction(mac_tag_bytes=4) < storage_overhead_fraction(
            mac_tag_bytes=8
        )
