"""Edge-case tests for the simulator's L2 semantics."""

from repro.gpu.config import VOLTA
from repro.gpu.simulator import EventKind, simulate, simulate_l2
from repro.secure.engine import NoSecurityEngine
from repro.workloads.trace import Trace, TraceAccess


def tiny(accesses):
    return Trace(name="edge", accesses=accesses, memory_intensity=0.8)


class TestPartialSectorSemantics:
    def test_write_then_read_of_other_sector_fetches_only_missing(self):
        trace = tiny([
            TraceAccess(0x0, 0b0001, True),    # dirty sector 0
            TraceAccess(0x0, 0b0011, False),   # read sectors 0 and 1
        ])
        log = simulate_l2(trace, VOLTA)
        fills = [e for e in log.events if e.kind is EventKind.FILL]
        assert len(fills) == 1  # only sector 1 missed

    def test_dirty_bit_survives_read_hits(self):
        trace = tiny([
            TraceAccess(0x0, 0b0001, True),
            TraceAccess(0x0, 0b0001, False),
            TraceAccess(0x0, 0b0001, False),
        ])
        log = simulate_l2(trace, VOLTA)
        writebacks = [e for e in log.events if e.kind is EventKind.WRITEBACK]
        assert len(writebacks) == 1  # flushed once, still dirty

    def test_rewrite_updates_writeback_values(self):
        first = b"\x01" * 32
        second = b"\x02" * 32
        trace = tiny([
            TraceAccess(0x0, 0b0001, True, [(0, first)]),
            TraceAccess(0x0, 0b0001, True, [(0, second)]),
        ])
        log = simulate_l2(trace, VOLTA)
        wb = [e for e in log.events if e.kind is EventKind.WRITEBACK][0]
        assert wb.values == second

    def test_mixed_masks_accumulate_dirty(self):
        trace = tiny([
            TraceAccess(0x0, 0b0001, True),
            TraceAccess(0x0, 0b0100, True),
        ])
        log = simulate_l2(trace, VOLTA)
        writebacks = [e for e in log.events if e.kind is EventKind.WRITEBACK]
        assert len(writebacks) == 2


class TestSimulateEquivalence:
    def test_one_shot_matches_two_phase(self, bfs_trace):
        from repro.gpu.simulator import replay_events

        one_shot = simulate(
            bfs_trace, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA
        )
        log = simulate_l2(bfs_trace, VOLTA)
        two_phase = replay_events(
            log, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA
        )
        assert one_shot.traffic.bytes_by_stream == two_phase.traffic.bytes_by_stream


class TestEngineLifecycle:
    def test_finalize_is_idempotent(self):
        from repro.mem.traffic import TrafficCounter
        from repro.secure.pssm import PssmEngine

        traffic = TrafficCounter()
        engine = PssmEngine(0, 1 << 20, traffic)
        engine.on_writeback(3, None)
        engine.finalize()
        after_first = traffic.report().total_bytes
        engine.finalize()
        assert traffic.report().total_bytes == after_first

    def test_nosecurity_warmup_is_a_noop(self):
        from repro.mem.traffic import TrafficCounter

        traffic = TrafficCounter()
        engine = NoSecurityEngine(0, 1 << 20, traffic)
        engine.warm_counters(5)
        assert traffic.report().total_bytes == 0
