"""Eq. 1: the forgery-probability analysis behind value verification.

Paper: with a 256-entry value cache and 28 effective bits, requiring 3
of 4 values per 128-bit unit bounds forgery below Gueron's 2^-56, and
the full-sector check is stronger than the 8-byte MAC it replaces.
"""

from conftest import run_once

from repro.harness.experiments import run_eq1
from repro.harness.report import render_experiment


def test_eq1_forgery(benchmark, ctx):
    result = run_once(benchmark, lambda: run_eq1(ctx))
    print(render_experiment(result))
    at_256 = next(r for r in result.rows if r["cache_entries"] == 256)
    assert at_256["hits_required"] == 3
    assert result.summary["sector_probability_at_256_x3"] < 2.0**-64
    assert all(r["beats_8B_mac"] for r in result.rows)
