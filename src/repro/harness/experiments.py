"""One runner per paper table/figure.

Each ``run_*`` function reproduces one evaluation artifact of the paper
and returns an :class:`ExperimentResult` with per-benchmark rows, a
summary, and the paper's reference numbers for EXPERIMENTS.md. The
module-level :data:`EXPERIMENTS` registry is what the CLI and the bench
suite iterate over.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.resilience import Campaign

from repro.analysis.empirical import run_forgery_experiment
from repro.analysis.forgery import design_space, forgery_probability
from repro.analysis.storage import design_comparison
from repro.analysis.power import EnergyParams, estimate_power, power_overhead
from repro.analysis.summarize import improvement_summary
from repro.gpu.perf_model import normalized_ipc
from repro.harness.runner import DEFAULT_TRACE_LENGTH, ExperimentContext
from repro.workloads.stats import characterize
from repro.workloads.values import study_trace_values


@dataclass
class ExperimentResult:
    """Structured output of one reproduced table/figure."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper_reference: Dict[str, object] = field(default_factory=dict)
    notes: str = ""


def _ipc(ctx: ExperimentContext, benchmark: str, engine: str) -> float:
    return normalized_ipc(
        ctx.run(benchmark, engine), ctx.run(benchmark, "nosec")
    )


def run_fig06(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 6: IPC of the PSSM-secured GPU normalized to no security."""
    result = ExperimentResult(
        "fig06",
        "Performance overhead of secure GPU memory (PSSM vs no security)",
        paper_reference={
            "description": "secured IPC well below 1.0, worst for "
                           "irregular benchmarks"
        },
    )
    ipcs: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        ipc = _ipc(ctx, bench, "pssm")
        ipcs[bench] = ipc
        result.rows.append({"benchmark": bench, "ipc_normalized": ipc})
    result.summary = improvement_summary(ipcs)
    return result


def run_fig07(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 7: DRAM traffic breakdown under PSSM (data/counter/MAC/BMT)."""
    result = ExperimentResult(
        "fig07",
        "Memory traffic breakdown of the PSSM baseline",
        paper_reference={
            "description": ">200% extra bandwidth for irregular patterns"
        },
    )
    overheads: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        report = ctx.run(bench, "pssm").traffic
        row = {"benchmark": bench}
        row.update(report.breakdown())
        row["metadata_overhead"] = report.metadata_overhead
        overheads[bench] = report.metadata_overhead
        result.rows.append(row)
    result.summary = improvement_summary(overheads)
    return result


def run_fig09(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 9: value-reuse fractions under the three study scenarios."""
    result = ExperimentResult(
        "fig09",
        "Sector value reuse (full / two-halves / masked scenarios)",
        paper_reference={
            "description": "large reuse fractions, masked > halves > full"
        },
    )
    masked: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        report = study_trace_values(ctx.trace(bench))
        row = {"benchmark": bench}
        row.update(report)
        masked[bench] = report["masked"]
        result.rows.append(row)
    result.summary = improvement_summary(masked)
    return result


def run_fig10(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 10: read/write request breakdown per benchmark."""
    result = ExperimentResult(
        "fig10",
        "Read vs write memory-request breakdown",
        paper_reference={
            "description": "most benchmarks read-dominated; a few "
                           "write-heavy outliers"
        },
    )
    reads: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        stats = characterize(ctx.trace(bench))
        reads[bench] = stats.read_fraction
        result.rows.append(
            {
                "benchmark": bench,
                "read_fraction": stats.read_fraction,
                "write_fraction": stats.write_fraction,
            }
        )
    result.summary = improvement_summary(reads)
    return result


def run_fig15(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 15: value-based integrity verification alone vs PSSM."""
    result = ExperimentResult(
        "fig15",
        "Value-based integrity verification (speedup over PSSM)",
        paper_reference={"mean": 1.0494, "max": 1.1989},
    )
    speedups: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        ratio = _ipc(ctx, bench, "plutus:value-only") / _ipc(ctx, bench, "pssm")
        speedups[bench] = ratio
        result.rows.append({"benchmark": bench, "speedup_vs_pssm": ratio})
    result.summary = improvement_summary(speedups)
    return result


def run_fig16(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 16: the three metadata-granularity designs vs PSSM."""
    result = ExperimentResult(
        "fig16",
        "Metadata fetch granularity designs (speedup over 128B baseline)",
        paper_reference={
            "mean_32B_all": 1.1057,
            "max_32B_all": 1.7485,
            "ordering": "32B-all >= 32B-leaf >= 128B",
        },
        notes=(
            "The bandwidth-only model reproduces the ordering of the "
            "three designs but compresses the magnitude; cycle-level "
            "effects (MSHR occupancy, fetch latency of 4-sector blocks) "
            "that amplify the win are out of scope."
        ),
    )
    d3: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        base = _ipc(ctx, bench, "gran:128B")
        row = {
            "benchmark": bench,
            "design_128B": 1.0,
            "design_32B_leaf": _ipc(ctx, bench, "gran:32B-leaf") / base,
            "design_32B_all": _ipc(ctx, bench, "gran:32B-all") / base,
        }
        d3[bench] = row["design_32B_all"]
        result.rows.append(row)
    result.summary = improvement_summary(d3)
    return result


def run_fig17(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 17: 2-bit / 3-bit / adaptive compact counters vs PSSM."""
    result = ExperimentResult(
        "fig17",
        "Compact mirrored counter designs (speedup over PSSM)",
        paper_reference={
            "mean_adaptive": 1.0207,
            "max_adaptive": 1.0828,
            "ordering": "adaptive >= 3bit >= 2bit on average",
        },
    )
    adaptive: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        base = _ipc(ctx, bench, "pssm")
        row = {
            "benchmark": bench,
            "compact_2bit": _ipc(ctx, bench, "compact:2bit") / base,
            "compact_3bit": _ipc(ctx, bench, "compact:3bit") / base,
            "compact_adaptive": _ipc(ctx, bench, "compact:adaptive") / base,
        }
        adaptive[bench] = row["compact_adaptive"]
        result.rows.append(row)
    result.summary = improvement_summary(adaptive)
    return result


def run_fig18(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 18: full Plutus vs PSSM and common-counters+PSSM."""
    result = ExperimentResult(
        "fig18",
        "Plutus overall speedup",
        paper_reference={
            "mean_vs_pssm": 1.1686,
            "max_vs_pssm": 1.5838,
            "mean_vs_common_counters": 1.0897,
        },
    )
    vs_pssm: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        pssm = _ipc(ctx, bench, "pssm")
        cc = _ipc(ctx, bench, "common-counters")
        plutus = _ipc(ctx, bench, "plutus")
        vs_pssm[bench] = plutus / pssm
        result.rows.append(
            {
                "benchmark": bench,
                "pssm_ipc": pssm,
                "common_counters_ipc": cc,
                "plutus_ipc": plutus,
                "speedup_vs_pssm": plutus / pssm,
                "speedup_vs_cc": plutus / cc,
            }
        )
    result.summary = improvement_summary(vs_pssm)
    result.summary["mean_vs_cc"] = sum(
        r["speedup_vs_cc"] for r in result.rows
    ) / len(result.rows)
    return result


def run_fig19(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 19: security-metadata traffic reduction of Plutus vs PSSM."""
    result = ExperimentResult(
        "fig19",
        "Security metadata traffic reduction",
        paper_reference={"mean": 0.4814, "max": 0.8030},
    )
    reductions: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        pssm = ctx.run(bench, "pssm").traffic
        plutus = ctx.run(bench, "plutus").traffic
        reduction = plutus.metadata_reduction_vs(pssm)
        reductions[bench] = reduction
        result.rows.append(
            {
                "benchmark": bench,
                "pssm_metadata_bytes": pssm.metadata_bytes,
                "plutus_metadata_bytes": plutus.metadata_bytes,
                "reduction": reduction,
            }
        )
    result.summary = improvement_summary(reductions)
    return result


def run_fig20(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 20: Plutus with integrity-tree traffic eliminated."""
    result = ExperimentResult(
        "fig20",
        "Plutus with tree traffic eliminated (MGX/TNPU-style context)",
        paper_reference={
            "description": "Plutus remains effective when counters/tree "
                           "are optimized away by orthogonal schemes"
        },
    )
    gains: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        base = _ipc(ctx, bench, "pssm:no-tree")
        plutus = _ipc(ctx, bench, "plutus:no-tree")
        gains[bench] = plutus / base
        result.rows.append(
            {
                "benchmark": bench,
                "baseline_no_tree_ipc": base,
                "plutus_no_tree_ipc": plutus,
                "speedup": plutus / base,
            }
        )
    result.summary = improvement_summary(gains)
    return result


def run_fig21(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 21: sensitivity of Plutus to the value-cache size."""
    sizes = (64, 128, 256, 512, 1024)
    result = ExperimentResult(
        "fig21",
        "Value-cache size sensitivity",
        paper_reference={
            "description": "256 entries per partition capture most of "
                           "the repeated values; larger brings little"
        },
    )
    gain_at_256: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        pssm = _ipc(ctx, bench, "pssm")
        row: Dict[str, object] = {"benchmark": bench}
        for entries in sizes:
            row[f"entries_{entries}"] = (
                _ipc(ctx, bench, f"plutus:vcache-{entries}") / pssm
            )
        gain_at_256[bench] = float(row["entries_256"])
        result.rows.append(row)
    result.summary = improvement_summary(gain_at_256)
    return result


def run_fig22(ctx: ExperimentContext) -> ExperimentResult:
    """Fig. 22: average power normalized to a no-security system."""
    result = ExperimentResult(
        "fig22",
        "Power overhead of secure memory",
        paper_reference={"pssm_overhead": 0.369, "plutus_overhead": 0.178},
    )
    params = EnergyParams()
    plutus_overheads: Dict[str, float] = {}
    for bench in ctx.benchmarks:
        nosec = ctx.run(bench, "nosec")
        base_power = estimate_power(nosec, nosec.total_bytes, params)
        row: Dict[str, object] = {"benchmark": bench}
        for engine in ("pssm", "plutus"):
            res = ctx.run(bench, engine)
            est = estimate_power(res, nosec.total_bytes, params)
            row[f"{engine}_power_overhead"] = power_overhead(est, base_power)
        plutus_overheads[bench] = float(row["plutus_power_overhead"])
        result.rows.append(row)
    result.summary = improvement_summary(
        {b: 1.0 + v for b, v in plutus_overheads.items()}
    )
    return result


def run_eq1(ctx: ExperimentContext) -> ExperimentResult:
    """Eq. 1: the forgery-probability design-space table."""
    result = ExperimentResult(
        "eq1",
        "Value-check forgery probability (binomial analysis)",
        paper_reference={
            "hits_required_at_256": 3,
            "bound": "below 8B-MAC collision rate (2^-64) per sector",
        },
    )
    for row in design_space():
        result.rows.append(
            {
                "cache_entries": row.cache_entries,
                "hits_required": row.hits_required,
                "per_unit_probability": row.per_unit_probability,
                "per_sector_probability": row.per_sector_probability,
                "beats_8B_mac": row.beats_8B_mac,
            }
        )
    result.summary = {
        "sector_probability_at_256_x3": forgery_probability(
            256, 28, 4, 3, units_per_access=2
        )
    }
    return result


#: Registry consumed by the CLI and the bench suite.
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": run_fig18,
    "fig19": run_fig19,
    "fig20": run_fig20,
    "fig21": run_fig21,
    "fig22": run_fig22,
    "eq1": run_eq1,
}


def run_ext_storage(ctx: ExperimentContext) -> ExperimentResult:
    """Extension: Section IV-F storage accounting as a table."""
    result = ExperimentResult(
        "ext-storage",
        "Metadata storage by design (Section IV-F)",
        paper_reference={
            "description": "BMT storage grows from ~145 kB-class to "
                           "1.33 MB under 32B granularity; value cache "
                           "~1 kB; compact layer adds 2x2 kB caches"
        },
    )
    for name, report in design_comparison().items():
        row: Dict[str, object] = {"design": name}
        row.update(report.breakdown())
        row["offchip_fraction_of_data"] = report.offchip_fraction_of_data
        row["onchip_sram_bytes"] = (
            report.onchip_metadata_sram_bytes + report.onchip_value_cache_bytes
        )
        result.rows.append(row)
    result.summary = {
        "plutus_bmt_mib": design_comparison()["plutus"].bmt_bytes / 1024**2
    }
    return result


def run_ext_forgery(ctx: ExperimentContext) -> ExperimentResult:
    """Extension: Monte-Carlo attack on the value check (real AES-XTS)."""
    experiment = run_forgery_experiment(trials=1000, seed=2023)
    result = ExperimentResult(
        "ext-forgery",
        "Empirical forgery campaign against the value check",
        rows=[
            {
                "trials": experiment.trials,
                "sector_passes": experiment.sector_passes,
                "unit_passes": experiment.unit_passes,
                "tampered_value_hits": experiment.value_hits,
                "expected_value_hit_rate": experiment.expected_value_hit_rate,
            }
        ],
        summary={"sector_pass_rate": experiment.sector_pass_rate},
        paper_reference={
            "description": "analytical bound ~1.2e-35 per sector: zero "
                           "passes at any feasible trial count"
        },
    )
    return result


EXPERIMENTS["ext-storage"] = run_ext_storage
EXPERIMENTS["ext-forgery"] = run_ext_forgery


def run_all(ctx: ExperimentContext) -> Dict[str, ExperimentResult]:
    """Run the full suite (shares all caches through the context)."""
    return {key: fn(ctx) for key, fn in EXPERIMENTS.items()}


# -- supervised decomposition -------------------------------------------------

def experiments_campaign(
    ctx: ExperimentContext, selected: "List[str]"
) -> "Campaign":
    """One supervised work unit per selected experiment.

    Unit identity covers the experiment key plus the context
    fingerprint, so a resumed run only reuses results computed under
    identical trace parameters.
    """
    from repro.resilience import Campaign, WorkUnit

    context_id = ctx.fingerprint()

    def runner_for(key: str):
        def run() -> Dict[str, object]:
            return asdict(EXPERIMENTS[key](ctx))

        return run

    units = [
        WorkUnit(
            kind="experiment",
            params={"experiment": key, "context": context_id},
            runner=runner_for(key),
            label=key,
        )
        for key in selected
    ]
    return Campaign(name="experiments", units=units)


def experiments_campaign_from_params(
    selected: "List[str]",
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 2023,
    benchmarks: "Optional[List[str]]" = None,
    workers: "Optional[int]" = 1,
    shard_timeout: "Optional[float]" = None,
    cache_dir: "Optional[str]" = None,
) -> "Campaign":
    """JSON-kwargs form of :func:`experiments_campaign`.

    The worker-side campaign factory of distributed runs: everything
    that shapes results is an explicit JSON-able parameter, and the
    execution knobs (workers, shard timeout, cache root) stay outside
    the context fingerprint, so a worker rebuilding with ``workers=1``
    produces the exact campaign the coordinator journaled.
    """
    from repro.workloads.benchmarks import benchmark_names

    ctx = ExperimentContext(
        trace_length=trace_length,
        seed=seed,
        benchmarks=list(benchmarks) if benchmarks else benchmark_names(),
        workers=workers,
        shard_timeout=shard_timeout,
        cache_dir=cache_dir,
    )
    return experiments_campaign(ctx, list(selected))


def result_from_payload(payload: Dict[str, object]) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its journaled form."""
    return ExperimentResult(**payload)
