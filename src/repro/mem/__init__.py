"""Memory substrate: addressing, sectored caches, DRAM model, traffic."""

from repro.mem.address import DEFAULT_ADDRESS_MAP, AddressMap
from repro.mem.backing import BackingStore
from repro.mem.cache import (
    AccessResult,
    CacheConfig,
    CacheStats,
    Eviction,
    SectoredCache,
)
from repro.mem.dram import DEFAULT_DRAM, DramConfig
from repro.mem.traffic import (
    COUNTER_STREAMS,
    METADATA_STREAMS,
    TREE_STREAMS,
    Stream,
    TrafficCounter,
    TrafficReport,
)

__all__ = [
    "AccessResult",
    "AddressMap",
    "BackingStore",
    "CacheConfig",
    "CacheStats",
    "COUNTER_STREAMS",
    "DEFAULT_ADDRESS_MAP",
    "DEFAULT_DRAM",
    "DramConfig",
    "Eviction",
    "METADATA_STREAMS",
    "SectoredCache",
    "Stream",
    "TREE_STREAMS",
    "TrafficCounter",
    "TrafficReport",
]
