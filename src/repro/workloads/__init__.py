"""Synthetic GPU workloads: traces, patterns, value models, benchmarks."""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    PAPER_ROSTER,
    BenchmarkProfile,
    PatternSpec,
    benchmark_names,
    build_all_traces,
    build_trace,
    get_profile,
    scaled_profile,
)
from repro.workloads.patterns import PATTERNS, PatternResult, generate
from repro.workloads.stats import TraceStats, characterize, rw_breakdown
from repro.workloads.trace import Trace, TraceAccess
from repro.workloads.traceio import (
    dump_event_log,
    dump_trace,
    dumps_event_log,
    dumps_trace,
    load_event_log,
    load_trace,
    loads_event_log,
    loads_trace,
    merge_traces,
)
from repro.workloads.values import (
    ValueModel,
    ValueModelConfig,
    ValueReuseStudy,
    study_trace_values,
)

__all__ = [
    "BENCHMARKS",
    "PAPER_ROSTER",
    "BenchmarkProfile",
    "PATTERNS",
    "PatternResult",
    "PatternSpec",
    "Trace",
    "TraceAccess",
    "TraceStats",
    "ValueModel",
    "ValueModelConfig",
    "ValueReuseStudy",
    "benchmark_names",
    "build_all_traces",
    "build_trace",
    "characterize",
    "dump_event_log",
    "dump_trace",
    "dumps_event_log",
    "dumps_trace",
    "load_event_log",
    "load_trace",
    "loads_event_log",
    "loads_trace",
    "merge_traces",
    "generate",
    "get_profile",
    "rw_breakdown",
    "scaled_profile",
    "study_trace_values",
]
