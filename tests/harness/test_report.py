"""Tests for the text report renderer."""

from repro.harness.experiments import ExperimentResult
from repro.harness.report import (
    format_bars,
    format_table,
    render_all,
    render_experiment,
)


class TestFormatTable:
    def test_alignment(self):
        table = format_table([
            {"benchmark": "bfs", "ipc": 0.5},
            {"benchmark": "lbm", "ipc": 0.75},
        ])
        lines = table.splitlines()
        assert lines[0].startswith("benchmark")
        assert len(lines) == 4  # header, rule, two rows

    def test_heterogeneous_rows(self):
        table = format_table([{"a": 1}, {"b": 2}])
        assert "a" in table and "b" in table

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_bool_rendering(self):
        assert "yes" in format_table([{"ok": True}])
        assert "no" in format_table([{"ok": False}])

    def test_tiny_float_uses_scientific(self):
        assert "e-" in format_table([{"p": 1e-35}])


class TestFormatBars:
    def test_bars_scale(self):
        bars = format_bars({"a": 1.0, "b": 2.0})
        lines = bars.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_empty(self):
        assert format_bars({}) == "(no data)"


class TestRenderExperiment:
    def make_result(self):
        return ExperimentResult(
            experiment_id="figXX",
            title="A title",
            rows=[{"benchmark": "bfs", "value": 1.5}],
            summary={"mean": 1.5},
            paper_reference={"mean": 1.17},
            notes="a note",
        )

    def test_contains_all_sections(self):
        text = render_experiment(self.make_result())
        assert "figXX" in text
        assert "A title" in text
        assert "summary:" in text
        assert "paper:" in text
        assert "notes:" in text

    def test_render_all_concatenates(self):
        text = render_all({"x": self.make_result(), "y": self.make_result()})
        assert text.count("A title") == 2
