"""The campaign supervisor: retries, resume, degradation, chaos."""

import json

import pytest

from repro.common.errors import (
    EXIT_OK,
    EXIT_PARTIAL,
    ReproError,
)
from repro.resilience import (
    REASON_WALL_CLOCK,
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    Campaign,
    ChaosConfig,
    ChaosMonkey,
    ResourceBudget,
    RetryPolicy,
    RunJournal,
    Supervisor,
    WorkUnit,
    missing_cell_lines,
    render_outcome,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_supervisor(**kwargs):
    kwargs.setdefault("sleep", lambda _t: None)
    kwargs.setdefault("policy", RetryPolicy(base_delay_s=0.0, jitter=0.0))
    return Supervisor(**kwargs)


def campaign_of(runners, name="test"):
    return Campaign(
        name=name,
        units=[
            WorkUnit(
                kind="cell",
                params={"value": i},
                runner=runner,
                label=f"cell[{i}]",
            )
            for i, runner in enumerate(runners)
        ],
    )


class TestHappyPath:
    def test_all_units_succeed(self):
        campaign = campaign_of([lambda: {"v": 1}, lambda: {"v": 2}])
        outcome = make_supervisor().run(campaign)
        assert outcome.ok and not outcome.partial
        assert outcome.exit_code == EXIT_OK
        assert outcome.count(STATUS_OK) == 2
        assert [o.attempts for o in outcome.outcomes] == [1, 1]
        assert outcome.results == {
            campaign.units[0].unit_id: {"v": 1},
            campaign.units[1].unit_id: {"v": 2},
        }

    def test_results_are_json_normalized(self):
        campaign = campaign_of([lambda: {"axis": (1, 2)}])
        outcome = make_supervisor().run(campaign)
        assert outcome.outcomes[0].result == {"axis": [1, 2]}


class TestRetries:
    def test_flaky_unit_retried_to_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return {"v": 42}

        slept = []
        supervisor = make_supervisor(
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0),
            sleep=slept.append,
        )
        outcome = supervisor.run(campaign_of([flaky]))
        assert outcome.ok
        unit = outcome.outcomes[0]
        assert unit.status == STATUS_OK
        assert unit.attempts == 3
        assert unit.result == {"v": 42}
        # Exponential, zero-jitter schedule: 0.01 then 0.02.
        assert slept == pytest.approx([0.01, 0.02])

    def test_attempts_exhausted_is_failed(self):
        def always():
            raise OSError("still down")

        supervisor = make_supervisor(policy=RetryPolicy(max_attempts=2,
                                                        base_delay_s=0.0))
        outcome = supervisor.run(campaign_of([always, lambda: {"v": 1}]))
        failed, ok = outcome.outcomes
        assert failed.status == STATUS_FAILED
        assert failed.attempts == 2
        assert failed.failure_class == "crash"
        assert "still down" in failed.error
        # Later units still run: a unit failure is not degradation.
        assert ok.status == STATUS_OK
        assert outcome.partial and outcome.degraded is None
        assert outcome.exit_code == EXIT_PARTIAL

    def test_deterministic_failure_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ReproError("bad parameters")

        supervisor = make_supervisor(policy=RetryPolicy(max_attempts=5))
        outcome = supervisor.run(campaign_of([broken]))
        assert len(calls) == 1
        unit = outcome.outcomes[0]
        assert unit.status == STATUS_FAILED
        assert unit.failure_class == "deterministic"


class TestBudgetDegradation:
    def test_wall_clock_exhaustion_cancels_remaining(self):
        clock = FakeClock()

        def slow():
            clock.advance(6.0)
            return {"v": 1}

        supervisor = make_supervisor(
            budget=ResourceBudget(wall_clock_s=10.0), clock=clock
        )
        campaign = campaign_of([slow, slow, lambda: {"v": 3}])
        outcome = supervisor.run(campaign)
        statuses = [o.status for o in outcome.outcomes]
        assert statuses == [STATUS_OK, STATUS_OK, STATUS_CANCELLED]
        assert outcome.degraded == REASON_WALL_CLOCK
        assert outcome.outcomes[2].error == REASON_WALL_CLOCK
        assert outcome.exit_code == EXIT_PARTIAL
        assert outcome.wall_s == pytest.approx(12.0)

    def test_exhaustion_between_retries_surfaces_budget(self, tmp_path):
        clock = FakeClock()

        def failing():
            clock.advance(11.0)
            raise OSError("transient")

        campaign = campaign_of([failing])
        journal = RunJournal.open(tmp_path, "run1", campaign)
        supervisor = make_supervisor(
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            budget=ResourceBudget(wall_clock_s=10.0),
            clock=clock,
            journal=journal,
        )
        outcome = supervisor.run(campaign)
        unit = outcome.outcomes[0]
        assert unit.status == STATUS_FAILED
        assert unit.attempts == 1  # no budget left for attempt 2
        assert unit.failure_class == "budget"
        assert unit.error == REASON_WALL_CLOCK
        # Budget failures stay out of the journal so a resume retries
        # the unit instead of trusting a verdict it never reached.
        assert journal.unit_record_count() == 0

    def test_missing_cells_are_stable_text(self):
        clock = FakeClock()

        def slow():
            clock.advance(11.0)
            return {"v": 1}

        supervisor = make_supervisor(
            budget=ResourceBudget(wall_clock_s=10.0), clock=clock
        )
        outcome = supervisor.run(campaign_of([slow, lambda: {"v": 2}]))
        assert missing_cell_lines(outcome) == [
            f"MISSING cell[1]: cancelled ({REASON_WALL_CLOCK})"
        ]


class TestJournalResume:
    def test_resume_skips_completed_units_byte_identically(self, tmp_path):
        runners = [lambda: {"zeta": 1, "alpha": 2}, lambda: {"v": 2}]
        campaign = campaign_of(runners)
        journal = RunJournal.open(tmp_path, "run1", campaign)
        first = make_supervisor(journal=journal).run(campaign)
        records_after_first = journal.unit_record_count()

        campaign2 = campaign_of(runners)
        journal2 = RunJournal.open(tmp_path, "run1", campaign2,
                                   require_existing=True)
        second = make_supervisor(journal=journal2).run(campaign2)

        assert [o.status for o in second.outcomes] == [STATUS_SKIPPED] * 2
        assert second.ok and second.exit_code == EXIT_OK
        # No unit re-executed: the journal grew no new unit records.
        assert journal2.unit_record_count() == records_after_first == 2
        # Byte-identical payloads, key order included.
        assert json.dumps(second.results) == json.dumps(first.results)

    def test_failed_units_are_retried_on_resume(self, tmp_path):
        attempts = []

        def flaky_once():
            attempts.append(1)
            if len(attempts) == 1:
                raise OSError("first run dies")
            return {"v": 7}

        runners = [lambda: {"v": 1}, flaky_once]
        campaign = campaign_of(runners)
        journal = RunJournal.open(tmp_path, "run1", campaign)
        first = make_supervisor(
            journal=journal, policy=RetryPolicy(max_attempts=1)
        ).run(campaign)
        assert first.partial

        campaign2 = campaign_of(runners)
        journal2 = RunJournal.open(tmp_path, "run1", campaign2)
        second = make_supervisor(journal=journal2).run(campaign2)
        assert [o.status for o in second.outcomes] == [
            STATUS_SKIPPED, STATUS_OK,
        ]
        assert second.ok
        assert second.results[campaign2.units[1].unit_id] == {"v": 7}

    def test_outcome_carries_run_id(self, tmp_path):
        campaign = campaign_of([lambda: {"v": 1}])
        journal = RunJournal.open(tmp_path, "rid", campaign)
        outcome = make_supervisor(journal=journal).run(campaign)
        assert outcome.run_id == "rid"
        assert journal.records()[-1]["status"] == "complete"


class TestChaos:
    def test_kill_every_attempt_fails_the_unit(self):
        monkey = ChaosMonkey(ChaosConfig(kill_prob=1.0), sleep=lambda _t: None)
        supervisor = make_supervisor(
            chaos=monkey, policy=RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        outcome = supervisor.run(campaign_of([lambda: {"v": 1}]))
        unit = outcome.outcomes[0]
        assert unit.status == STATUS_FAILED
        assert unit.failure_class == "crash"
        assert monkey.kills == 3

    def test_killed_attempt_can_succeed_on_retry(self):
        # Find a seed whose first strike kills and second passes for
        # this unit id — deterministic, so the search is stable too.
        campaign = campaign_of([lambda: {"v": 1}])
        unit_id = campaign.units[0].unit_id
        chosen = None
        for seed in range(200):
            probe = ChaosMonkey(
                ChaosConfig(seed=seed, kill_prob=0.5, delay_prob=0.0,
                            oom_prob=0.0),
                sleep=lambda _t: None,
            )
            first = second = None
            try:
                probe.strike(unit_id, 1)
                first = "pass"
            except Exception:
                first = "kill"
            try:
                probe.strike(unit_id, 2)
                second = "pass"
            except Exception:
                second = "kill"
            if first == "kill" and second == "pass":
                chosen = seed
                break
        assert chosen is not None
        monkey = ChaosMonkey(
            ChaosConfig(seed=chosen, kill_prob=0.5, delay_prob=0.0,
                        oom_prob=0.0),
            sleep=lambda _t: None,
        )
        outcome = make_supervisor(chaos=monkey).run(campaign)
        unit = outcome.outcomes[0]
        assert unit.status == STATUS_OK
        assert unit.attempts == 2

    @pytest.mark.slow
    def test_chaos_stress_campaign_survives(self, tmp_path):
        # A wide campaign under heavy, seeded sabotage: with enough
        # attempts per unit the supervisor must still finish clean.
        runners = [lambda i=i: {"v": i} for i in range(40)]
        campaign = campaign_of(runners, name="stress")
        journal = RunJournal.open(tmp_path, "stress", campaign)
        monkey = ChaosMonkey(
            ChaosConfig(seed=3, kill_prob=0.3, delay_prob=0.3, oom_prob=0.1,
                        max_delay_s=0.001),
            sleep=lambda _t: None,
        )
        supervisor = make_supervisor(
            chaos=monkey,
            policy=RetryPolicy(max_attempts=10, base_delay_s=0.0),
            journal=journal,
        )
        outcome = supervisor.run(campaign)
        assert outcome.ok
        assert outcome.count(STATUS_OK) == 40
        assert monkey.strikes > 0
        assert journal.unit_record_count() == 40


class TestRendering:
    def test_render_outcome_counts_and_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("transient")
            return {"v": 1}

        outcome = make_supervisor().run(campaign_of([flaky, lambda: {"v": 2}]))
        text = render_outcome(outcome)
        assert "== campaign test: COMPLETE ==" in text
        assert "2 total, 2 ok, 0 resumed, 0 failed, 0 cancelled" in text
        assert "retries: 1" in text

    def test_render_outcome_partial_names_reason(self):
        clock = FakeClock()

        def slow():
            clock.advance(99.0)
            return {"v": 1}

        supervisor = make_supervisor(
            budget=ResourceBudget(wall_clock_s=10.0), clock=clock
        )
        outcome = supervisor.run(campaign_of([slow, lambda: {"v": 2}]))
        text = render_outcome(outcome)
        assert "PARTIAL" in text
        assert f"degraded: {REASON_WALL_CLOCK}" in text
        assert "MISSING cell[1]" in text
