"""The lease-based work queue: claims, steals, speculation, done markers."""

import os
import time

import pytest

from repro.common.errors import ResilienceError
from repro.resilience import DEFAULT_LEASE_TTL_S, WorkQueue, queue_progress


@pytest.fixture
def queue(tmp_path):
    q = WorkQueue(tmp_path / "queue", default_ttl_s=5.0)
    q.create()
    return q


def backdate(path, seconds):
    """Age a lease by pushing its mtime into the past."""
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestPopulate:
    def test_pending_units_preserve_campaign_order(self, queue):
        ids = [f"unit-{i:02d}-{'ab' * 20}"[:40] for i in range(12)]
        queue.populate(ids)
        assert queue.pending_units() == ids

    def test_repopulate_keeps_ok_markers_for_listed_units(self, queue):
        queue.populate(["u1", "u2"])
        queue.mark_done("u1", "w0", "ok")
        queue.populate(["u1", "u2"])
        assert queue.is_done("u1")
        assert not queue.is_done("u2")

    def test_repopulate_drops_markers_of_unlisted_units(self, queue):
        queue.populate(["u1"])
        queue.mark_done("u1", "w0", "ok")
        queue.populate(["u2"])  # u1 completed; journal owns it now
        assert not queue.is_done("u1")

    def test_repopulate_drops_failed_markers(self, queue):
        queue.populate(["u1"])
        queue.mark_done("u1", "w0", "failed")
        queue.populate(["u1"])  # a resume retries failed units
        assert not queue.is_done("u1")

    def test_repopulate_clears_leases_and_speculation(self, queue):
        queue.populate(["u1"])
        lease = queue.claim("u1", "w0")
        queue.request_speculation("u1", lease.gen)
        queue.populate(["u1"])
        assert queue.current_gen("u1") == 0
        assert queue.speculation_count() == 0

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ResilienceError):
            WorkQueue(tmp_path / "q", default_ttl_s=0.0)


class TestClaims:
    def test_first_claim_wins_exclusively(self, queue):
        lease = queue.claim("u1", "w0")
        assert lease is not None
        assert (lease.gen, lease.worker, lease.speculative) == (1, "w0", False)
        assert queue.claim("u1", "w1") is None

    def test_fresh_heartbeat_prevents_stealing(self, queue):
        lease = queue.claim("u1", "w0")
        backdate(lease.path, 60.0)
        queue.heartbeat(lease)  # holder is alive; mtime refreshed
        assert queue.claim("u1", "w1") is None

    def test_stale_lease_is_stolen_at_next_generation(self, queue):
        lease = queue.claim("u1", "w0")
        backdate(lease.path, lease.ttl_s + 1.0)
        stolen = queue.claim("u1", "w1")
        assert stolen is not None
        assert (stolen.gen, stolen.worker) == (2, "w1")
        assert stolen.speculative is False

    def test_steal_never_unlinks_the_old_generation(self, queue):
        lease = queue.claim("u1", "w0")
        backdate(lease.path, 60.0)
        queue.claim("u1", "w1")
        assert lease.path.exists()  # gen 1 stays; gen 2 supersedes it

    def test_racing_stealers_resolve_to_one_winner(self, queue):
        lease = queue.claim("u1", "w0")
        backdate(lease.path, 60.0)
        winners = [
            queue.claim("u1", worker) for worker in ("w1", "w2", "w3")
        ]
        held = [w for w in winners if w is not None]
        assert len(held) == 1
        assert held[0].gen == 2

    def test_done_unit_is_never_claimed(self, queue):
        queue.mark_done("u1", "w0", "ok")
        assert queue.claim("u1", "w1") is None

    def test_torn_lease_file_is_stealable_not_immortal(self, queue):
        # kill -9 between O_EXCL create and the JSON write leaves an
        # empty lease file advertising no TTL; the default applies.
        path = queue.leases_dir / "u1.g1"
        path.touch()
        backdate(path, queue.default_ttl_s + 1.0)
        stolen = queue.claim("u1", "w1")
        assert stolen is not None and stolen.gen == 2

    def test_release_drops_the_lease_file(self, queue):
        lease = queue.claim("u1", "w0")
        queue.release(lease)
        assert not lease.path.exists()


class TestSpeculation:
    def test_request_permits_exactly_one_duplicate(self, queue):
        lease = queue.claim("u1", "w0")
        assert queue.claim("u1", "w1") is None  # fresh, no request
        assert queue.request_speculation("u1", lease.gen) is True
        dup = queue.claim("u1", "w1")
        assert dup is not None
        assert (dup.gen, dup.speculative) == (2, True)
        # The request named gen 1; gen 2 now holds, so no third copy.
        assert queue.claim("u1", "w2") is None

    def test_request_is_idempotent(self, queue):
        lease = queue.claim("u1", "w0")
        assert queue.request_speculation("u1", lease.gen) is True
        assert queue.request_speculation("u1", lease.gen) is False

    def test_first_completion_wins_arbitration(self, queue):
        lease = queue.claim("u1", "w0")
        queue.request_speculation("u1", lease.gen)
        dup = queue.claim("u1", "w1")
        assert queue.mark_done("u1", dup.worker, "ok", gen=dup.gen) is True
        assert queue.mark_done("u1", "w0", "ok", gen=lease.gen) is False
        assert queue.done_info("u1")["worker"] == "w1"


class TestDoneMarkers:
    def test_marker_records_verdict_and_generation(self, queue):
        queue.mark_done("u1", "w2", "ok", elapsed_s=1.25, gen=3)
        info = queue.done_info("u1")
        assert info["status"] == "ok"
        assert info["worker"] == "w2"
        assert info["gen"] == 3
        assert info["elapsed_s"] == pytest.approx(1.25)

    def test_progress_counts_done_over_listed(self, queue):
        queue.populate(["u1", "u2", "u3"])
        queue.mark_done("u2", "w0", "ok")
        assert queue_progress(queue, ["u1", "u2", "u3"]) == (1, 3)
        assert not queue.all_done(["u1", "u2", "u3"])
        assert queue.all_done(["u2"])


class TestLiveLeases:
    def test_lists_current_generation_holders(self, queue):
        queue.claim("u1", "w0")
        lease = queue.claim("u2", "w1")
        backdate(lease.path, 60.0)
        queue.claim("u2", "w2")  # steal -> gen 2 is current
        live = {entry["unit_id"]: entry for entry in queue.live_leases()}
        assert live["u1"]["worker"] == "w0"
        assert live["u2"]["worker"] == "w2"
        assert live["u2"]["gen"] == 2

    def test_done_units_are_omitted(self, queue):
        queue.claim("u1", "w0")
        queue.mark_done("u1", "w0", "ok")
        assert queue.live_leases() == []


def test_default_ttl_constant_matches_cli_default():
    assert DEFAULT_LEASE_TTL_S == 5.0
