"""Tests for the trace-driven simulator (L2 pass + engine replay)."""

import pytest

from repro.gpu.config import VOLTA
from repro.gpu.simulator import (
    EventKind,
    replay_events,
    simulate,
    simulate_l2,
)
from repro.mem.traffic import Stream
from repro.secure.engine import NoSecurityEngine
from repro.secure.pssm import PssmEngine
from repro.workloads.trace import Trace, TraceAccess


def tiny_trace(accesses):
    return Trace(name="tiny", accesses=accesses, memory_intensity=0.8)


class TestL2Pass:
    def test_read_miss_emits_fill(self):
        trace = tiny_trace([TraceAccess(0x0, 0b0001, False)])
        log = simulate_l2(trace, VOLTA)
        assert log.fill_sectors == 1
        assert log.events[0].kind is EventKind.FILL

    def test_read_hit_emits_nothing(self):
        trace = tiny_trace(
            [TraceAccess(0x0, 0b0001, False), TraceAccess(0x0, 0b0001, False)]
        )
        log = simulate_l2(trace, VOLTA)
        assert log.fill_sectors == 1  # only the cold miss

    def test_write_allocates_without_fetch(self):
        trace = tiny_trace([TraceAccess(0x0, 0b1111, True)])
        log = simulate_l2(trace, VOLTA)
        assert log.fill_sectors == 0
        assert log.writeback_sectors == 4  # flushed at kernel end

    def test_dirty_data_flushed_at_end(self):
        trace = tiny_trace([TraceAccess(0x0, 0b0011, True)])
        log = simulate_l2(trace, VOLTA)
        writebacks = [e for e in log.events if e.kind is EventKind.WRITEBACK]
        assert len(writebacks) == 2

    def test_writeback_carries_written_values(self):
        image = bytes(range(32))
        trace = tiny_trace([TraceAccess(0x0, 0b0001, True, [(0, image)])])
        log = simulate_l2(trace, VOLTA)
        wb = [e for e in log.events if e.kind is EventKind.WRITEBACK][0]
        assert wb.values == image

    def test_fill_carries_read_values(self):
        image = bytes(range(32))
        trace = tiny_trace([TraceAccess(0x80, 0b0001, False, [(0, image)])])
        log = simulate_l2(trace, VOLTA)
        assert log.events[0].values == image

    def test_read_after_write_hits_in_l2(self):
        trace = tiny_trace(
            [TraceAccess(0x0, 0b0001, True), TraceAccess(0x0, 0b0001, False)]
        )
        log = simulate_l2(trace, VOLTA)
        assert log.fill_sectors == 0

    def test_partitions_route_by_address_map(self):
        accesses = [TraceAccess(i * 128, 0b0001, False) for i in range(64)]
        log = simulate_l2(tiny_trace(accesses), VOLTA)
        partitions = {e.partition for e in log.events}
        assert len(partitions) > 8  # spread across many partitions

    def test_metadata_carried_from_trace(self):
        trace = Trace(
            name="x", accesses=[TraceAccess(0, 1, False)],
            memory_intensity=0.5, instructions=777,
            counter_warmup_passes=9,
        )
        log = simulate_l2(trace, VOLTA)
        assert log.memory_intensity == 0.5
        assert log.instructions == 777
        assert log.counter_warmup_passes == 9


class TestReplay:
    def test_data_traffic_matches_events(self):
        trace = tiny_trace(
            [TraceAccess(0x0, 0b1111, False), TraceAccess(0x100, 0b0011, True)]
        )
        log = simulate_l2(trace, VOLTA)
        result = replay_events(log, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA)
        assert result.traffic.bytes_by_stream[Stream.DATA_READ] == 4 * 32
        assert result.traffic.bytes_by_stream[Stream.DATA_WRITE] == 2 * 32

    def test_one_log_serves_many_engines(self, bfs_log):
        nosec = replay_events(bfs_log, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA)
        pssm = replay_events(bfs_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA)
        assert nosec.traffic.data_bytes == pssm.traffic.data_bytes
        assert pssm.metadata_bytes > 0
        assert nosec.metadata_bytes == 0

    def test_replay_is_deterministic(self, bfs_log):
        a = replay_events(bfs_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA)
        b = replay_events(bfs_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA)
        assert a.traffic.bytes_by_stream == b.traffic.bytes_by_stream

    def test_warmup_changes_counter_state_not_data(self, lbm_log):
        cold = replay_events(
            lbm_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA,
            counter_warmup_passes=0,
        )
        warm = replay_events(
            lbm_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA,
            counter_warmup_passes=5,
        )
        assert cold.traffic.data_bytes == warm.traffic.data_bytes

    def test_negative_warmup_rejected(self, bfs_log):
        with pytest.raises(ValueError):
            replay_events(
                bfs_log, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA,
                counter_warmup_passes=-1,
            )

    def test_engine_stats_merged_across_partitions(self, bfs_log):
        result = replay_events(bfs_log, lambda p, s, t: PssmEngine(p, s, t), VOLTA)
        assert result.engine_stats.fills == bfs_log.fill_sectors
        assert result.engine_stats.writebacks == bfs_log.writeback_sectors


class TestOneShot:
    def test_simulate_composes(self, bfs_trace):
        result = simulate(bfs_trace, lambda p, s, t: NoSecurityEngine(p, s, t), VOLTA)
        assert result.trace_name == "bfs"
        assert result.total_bytes > 0
