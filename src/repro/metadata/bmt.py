"""Bonsai Merkle Tree geometry and cached traversal.

The BMT protects the freshness of the encryption counters: its leaves
are counter blocks, every tree node is a block of 8-byte hashes of its
children, and the root stays on-chip. Two concerns are separated here:

* :class:`BmtGeometry` — pure arithmetic: level sizes, parent/child
  indices, node addresses in a flat metadata space, total storage. This
  is where the paper's granularity trade-off lives: shrinking the node
  from 128 B to 32 B quarters the arity, which grows the tree taller and
  larger (145.125 kB -> 1.33 MB per GPU in the paper's Section IV-F) but
  makes every fetch a single 32 B transaction.
* :class:`BmtTraversal` — the cached walk: verification climbs from the
  leaf's parent until the first cache hit (a hit is trusted, as if it
  were the root); updates follow the *lazy* scheme, dirtying the lowest
  node and propagating hashes upward only when dirty nodes are evicted.
  An eager variant is provided for the ablation study.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from typing import List, Tuple

from repro.common.errors import ConfigurationError
from repro.mem.cache import SectoredCache
from repro.mem.traffic import Stream, TrafficCounter
from repro.obs.session import active as _obs_active


@dataclass(frozen=True)
class BmtGeometry:
    """Shape of one partition's integrity tree."""

    num_leaves: int
    arity: int = 16
    node_bytes: int = 128
    hash_bytes: int = 8

    def __post_init__(self) -> None:
        if self.num_leaves <= 0:
            raise ConfigurationError("tree needs at least one leaf")
        if self.arity < 2:
            raise ConfigurationError("arity must be at least 2")
        if self.node_bytes < self.arity * self.hash_bytes:
            raise ConfigurationError(
                f"{self.node_bytes} B node cannot hold {self.arity} "
                f"hashes of {self.hash_bytes} B"
            )

    # Geometry is immutable, and the traversal consults these on every
    # cache access, so the derived shapes are memoized (cached_property
    # writes the instance __dict__ directly, which a frozen dataclass
    # permits).

    @cached_property
    def level_sizes(self) -> Tuple[int, ...]:
        """Node counts for levels 1..root (level 0 = leaves, excluded).

        Level h has ceil(leaves / arity^h) nodes; the list ends at the
        first level with a single node, the on-chip root.
        """
        sizes: List[int] = []
        count = self.num_leaves
        while count > 1:
            count = (count + self.arity - 1) // self.arity
            sizes.append(count)
        if not sizes:
            sizes.append(1)  # degenerate single-leaf tree: root only
        return tuple(sizes)

    @cached_property
    def height(self) -> int:
        """Number of tree levels above the leaves (root included)."""
        return len(self.level_sizes)

    @cached_property
    def root_level(self) -> int:
        """1-based level index of the root."""
        return self.height

    @cached_property
    def total_nodes(self) -> int:
        return sum(self.level_sizes)

    @cached_property
    def _level_bases(self) -> Tuple[int, ...]:
        """Byte offset of each level's first node (index 0 = level 1)."""
        bases: List[int] = []
        offset = 0
        for size in self.level_sizes:
            bases.append(offset)
            offset += size * self.node_bytes
        return tuple(bases)

    @property
    def storage_bytes(self) -> int:
        """Off-chip storage of the tree (the root is counted too; it is
        one node and keeping it simplifies the comparison with the
        paper's storage figures)."""
        return self.total_nodes * self.node_bytes

    def node_index(self, leaf_index: int, level: int) -> int:
        """Ancestor node index of *leaf_index* at 1-based *level*."""
        if not 0 <= leaf_index < self.num_leaves:
            raise ValueError(f"leaf {leaf_index} out of range")
        if not 1 <= level <= self.root_level:
            raise ValueError(f"level {level} out of range")
        return leaf_index // (self.arity**level)

    def level_base_bytes(self, level: int) -> int:
        """Byte offset of a level's first node in the flat BMT space."""
        bases = self._level_bases
        if not 1 <= level <= len(bases):
            raise ValueError(f"level {level} out of range")
        return bases[level - 1]

    def node_address(self, leaf_index: int, level: int) -> int:
        """Byte address of the ancestor node in the flat BMT space."""
        return (
            self.level_base_bytes(level)
            + self.node_index(leaf_index, level) * self.node_bytes
        )

    def locate(self, byte_offset: int) -> Tuple[int, int]:
        """Inverse of :meth:`node_address`: (level, node_index)."""
        bases = self._level_bases
        level = bisect_right(bases, byte_offset)
        node = (byte_offset - bases[level - 1]) // self.node_bytes
        if node >= self.level_sizes[level - 1]:
            raise ValueError(f"offset {byte_offset:#x} beyond tree storage")
        return level, node


class BmtTraversal:
    """Cache-filtered verification and (lazy or eager) update walks.

    The traversal owns a sectored cache of tree nodes and a reference to
    the partition's traffic counter. Because a node is the hashing unit
    of its parent, a node miss fetches ``node_bytes`` — whole 128 B lines
    in the classic design, single 32 B sectors in Plutus's fine-grained
    design. That asymmetry is the entire Fig. 16 experiment.
    """

    def __init__(
        self,
        geometry: BmtGeometry,
        cache: SectoredCache,
        traffic: TrafficCounter,
        read_stream: Stream = Stream.BMT_READ,
        write_stream: Stream = Stream.BMT_WRITE,
        lazy_update: bool = True,
    ) -> None:
        line = cache.config.line_bytes
        if geometry.node_bytes % cache.config.sector_bytes and (
            geometry.node_bytes < cache.config.sector_bytes
        ):
            raise ConfigurationError("node size incompatible with cache sectors")
        if geometry.node_bytes > line:
            raise ConfigurationError("node larger than a cache line")
        self.geometry = geometry
        self.cache = cache
        self.traffic = traffic
        self.read_stream = read_stream
        self.write_stream = write_stream
        self.lazy_update = lazy_update
        #: Number of verification walks that reached the root.
        self.root_verifications = 0
        # Observability: histogram of fetched-levels per verification
        # walk, keyed by tree family (original "bmt" vs compact mirror
        # "compact_bmt") so the profile dashboard can show how deep
        # walks actually go before hitting a cached node.
        obs = _obs_active()
        self._family = (
            "compact_bmt"
            if read_stream is Stream.COMPACT_BMT_READ
            else "bmt"
        )
        if obs.config.metrics_active:
            self._h_verify_depth = obs.registry.histogram(
                f"{self._family}.verify_depth",
                bounds=tuple(range(0, max(2, geometry.root_level) + 1)),
            )
        else:
            self._h_verify_depth = None
        # Per-walk spans only under span_detail profiling (a clock pair
        # per traversal); None keeps the hot path at one attribute check.
        self._prof = (
            obs.profiler if obs.config.span_detail_active else None
        )

    # -- address helpers -------------------------------------------------

    def _line_and_mask(self, byte_addr: int) -> Tuple[int, int]:
        """Cache line address and sector mask covering one tree node."""
        cfg = self.cache.config
        line_addr = byte_addr - (byte_addr % cfg.line_bytes)
        first_sector = (byte_addr % cfg.line_bytes) // cfg.sector_bytes
        sectors = max(1, self.geometry.node_bytes // cfg.sector_bytes)
        mask = ((1 << sectors) - 1) << first_sector
        return line_addr, mask

    # -- eviction propagation --------------------------------------------

    def _writeback(self, evictions) -> None:
        """Lazy update: a dirty node leaving the cache updates its parent."""
        for ev in evictions:
            self.traffic.record(
                self.write_stream,
                ev.dirty_sector_count * self.cache.config.sector_bytes,
                transactions=ev.dirty_sector_count,
            )
            if not self.lazy_update:
                continue  # eager mode already updated ancestors on write
            # Identify which node(s) the dirty sectors belong to and
            # propagate dirtiness to each parent still below the root.
            cfg = self.cache.config
            sectors = max(1, self.geometry.node_bytes // cfg.sector_bytes)
            seen_offsets = set()
            for s in range(cfg.sectors_per_line):
                if not (ev.dirty_mask >> s) & 1:
                    continue
                byte_addr = ev.line_addr + s * cfg.sector_bytes
                node_base = byte_addr - (byte_addr % self.geometry.node_bytes) \
                    if self.geometry.node_bytes >= cfg.sector_bytes else byte_addr
                if node_base in seen_offsets:
                    continue
                seen_offsets.add(node_base)
                try:
                    level, node = self.geometry.locate(node_base)
                except ValueError:
                    continue
                if level + 1 >= self.geometry.root_level:
                    continue  # parent is the on-chip root: updated in place
                parent_leaf = node * (self.geometry.arity**level)
                self._touch_node(parent_leaf, level + 1, dirty=True)
            del sectors  # geometry bookkeeping only

    def _touch_node(self, leaf_index: int, level: int, dirty: bool) -> None:
        """Bring one ancestor node into the cache, optionally dirtying it."""
        addr = self.geometry.node_address(leaf_index, level)
        line, mask = self._line_and_mask(addr)
        result = self.cache.access(line, mask, write=dirty)
        if result.miss_mask:
            self.traffic.record(
                self.read_stream,
                result.miss_sector_count * self.cache.config.sector_bytes,
                transactions=result.miss_sector_count,
            )
        self._writeback(result.evictions)

    # -- public walks ------------------------------------------------------

    def verify_leaf(self, leaf_index: int) -> int:
        """Verify a freshly fetched leaf (counter block).

        Climbs from the leaf's parent toward the root, stopping at the
        first cached (already-verified) node. Returns the number of tree
        levels that had to be fetched from memory.
        """
        if self._prof is None:
            return self._verify_leaf(leaf_index)
        with self._prof.span(f"{self._family}.verify"):
            fetched = self._verify_leaf(leaf_index)
            self._prof.add("levels_fetched", fetched)
            return fetched

    def _verify_leaf(self, leaf_index: int) -> int:
        fetched = 0
        for level in range(1, self.geometry.root_level + 1):
            if level == self.geometry.root_level:
                self.root_verifications += 1
                break
            addr = self.geometry.node_address(leaf_index, level)
            line, mask = self._line_and_mask(addr)
            result = self.cache.access(line, mask, write=False)
            if result.miss_mask:
                fetched += 1
                self.traffic.record(
                    self.read_stream,
                    result.miss_sector_count * self.cache.config.sector_bytes,
                    transactions=result.miss_sector_count,
                )
                self._writeback(result.evictions)
                continue  # fetched node must itself be verified: go up
            # Full hit: node already verified earlier; chain is trusted.
            self._writeback(result.evictions)
            break
        if self._h_verify_depth is not None:
            self._h_verify_depth.record(fetched)
        return fetched

    def update_leaf(self, leaf_index: int) -> None:
        """Register a counter-block modification in the tree.

        Lazy mode dirties only the leaf's parent (after verifying the
        path needed to load it); hashes flow upward at eviction time.
        Eager mode rewrites the whole path to the root immediately.
        """
        if self._prof is None:
            self._update_leaf(leaf_index)
        else:
            with self._prof.span(f"{self._family}.update"):
                self._update_leaf(leaf_index)

    def _update_leaf(self, leaf_index: int) -> None:
        if self.geometry.root_level == 1:
            return  # parent is the root itself; nothing stored off-chip
        if self.lazy_update:
            self.verify_leaf(leaf_index)
            self._touch_node(leaf_index, 1, dirty=True)
            return
        for level in range(1, self.geometry.root_level):
            self._touch_node(leaf_index, level, dirty=True)
            addr = self.geometry.node_address(leaf_index, level)
            line, _ = self._line_and_mask(addr)
            # Eager: the node is written through to memory immediately.
            sectors = max(1, self.geometry.node_bytes // self.cache.config.sector_bytes)
            self.traffic.record(
                self.write_stream,
                sectors * self.cache.config.sector_bytes,
                transactions=sectors,
            )
            del line

    def update_leaves(self, leaf_indices) -> None:
        """Lazy-update a run of leaves, coalescing shared ancestors.

        Consecutive leaves under the same level-1 parent repeat the same
        walk: once the parent is resident and dirty, every further
        update in the run is one full-hit verify (depth 0) plus one
        full-hit dirty touch. Those pairs are replayed as two direct
        cache accesses — state-, traffic-, and stats-identical to
        :meth:`update_leaf`, which is why the eviction drains can route
        through here unconditionally. A probe guards the compressed
        form: if an interleaved eviction pushed the parent out, the
        full walk runs again.
        """
        if self._prof is not None or not self.lazy_update:
            # Span-detail profiling wants one span per update; eager
            # mode rewrites whole paths and gains nothing from
            # coalescing. Both take the plain loop.
            for leaf_index in leaf_indices:
                self.update_leaf(leaf_index)
            return
        if self.geometry.root_level == 1:
            return  # every update_leaf is a no-op
        cache_access = self.cache.access
        prev_line = -1
        prev_mask = 0
        for leaf_index in leaf_indices:
            addr = self.geometry.node_address(leaf_index, 1)
            line, mask = self._line_and_mask(addr)
            if line == prev_line and mask == prev_mask:
                _hit, miss = self.cache.probe(line, mask)
                if not miss:
                    # Parent fully resident: the verify is a single
                    # full-hit access that evicts nothing, then the
                    # dirty touch hits the same line.
                    cache_access(line, mask, write=False)
                    if self._h_verify_depth is not None:
                        self._h_verify_depth.record(0)
                    cache_access(line, mask, write=True)
                    continue
            self._update_leaf(leaf_index)
            prev_line = line
            prev_mask = mask

    def flush(self) -> None:
        """Drain dirty nodes (end of kernel), accounting their writes.

        Lazy propagation re-dirties parents while draining, so iterate
        until the cache comes back clean; each round moves strictly up
        the tree, so the loop terminates within ``height`` rounds.
        """
        while True:
            dirty = self.cache.flush()
            if not dirty:
                break
            self._writeback(dirty)
