"""Campaign orchestration: plans × engines → detection matrix.

A campaign replays a victim workload against each engine variant,
mounts every :class:`~repro.faults.plan.InjectionPlan` from a seeded
generator, probes the attacked address, and classifies the result:

* ``DETECTED`` — the expected exception class was raised naming the
  attacked address;
* ``BENIGN`` — no exception, but the *correct* data came back (only
  acceptable for kinds in :data:`~repro.faults.plan.BENIGN_OK_KINDS`,
  e.g. MAC-region tampering bypassed by a legitimate value match of the
  genuine plaintext);
* ``FALSE_ACCEPT`` — tampered/garbage data was returned silently.
  Forbidden outright except for :data:`~repro.faults.plan.QUANTIFIED_KINDS`,
  where the paper's argument is probabilistic: the measured rate must
  stay at or below the MAC collision-rate bound
  (:func:`mac_collision_rate`, 2^-64 for 8-byte tags);
* ``MISSED`` — wrong exception class, or the wrong address blamed.

State forking keeps cost linear in the workload: the op prefix is
replayed once per engine, a deepcopy checkpoint is taken at each
distinct trigger index, and every trial forks from its checkpoint.
"""

from __future__ import annotations

import hashlib
from copy import deepcopy
from dataclasses import dataclass, field
from enum import Enum
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    FaultInjectionError,
    IntegrityError,
    ReplayError,
)
from repro.common.rng import RngStream
from repro.faults.hooks import apply_fault
from repro.faults.plan import (
    BENIGN_OK_KINDS,
    ENGINE_VARIANTS,
    QUANTIFIED_KINDS,
    SECTOR_BYTES,
    FaultKind,
    InjectionPlan,
)
from repro.faults.workload import Op, synthetic_ops, value_sweep_ops
from repro.metadata.split_counter import SplitCounterConfig
from repro.obs import active
from repro.secure.functional import SecureMemory
from repro.secure.value_cache import ValueCacheConfig

#: The exception class each fault kind must be caught with.
EXPECTED_EXCEPTION = {
    FaultKind.BITFLIP: IntegrityError,
    FaultKind.SPLICE: IntegrityError,
    FaultKind.MAC_CORRUPT: IntegrityError,
    FaultKind.DROPPED_WRITE: IntegrityError,
    FaultKind.REPLAY: ReplayError,
    FaultKind.COUNTER_CORRUPT: ReplayError,
    FaultKind.BMT_NODE: ReplayError,
}


def mac_collision_rate(tag_bytes: int = 8) -> float:
    """The paper's bound on silent acceptance: 2^-(8·tag_bytes)."""
    return 2.0 ** (-8 * tag_bytes)


def value_cache_false_accept_rate(
    config: ValueCacheConfig, resident_keys: int
) -> float:
    """Analytic false-accept probability of one tampered sector.

    A tampered AES block decrypts to uniform values; each of the unit's
    ``values_per_unit`` values hits a cache holding ``resident_keys``
    distinct keys with probability ``resident_keys / 2^effective_bits``,
    the unit passes when ``hits_required`` of them hit, and every unit
    of the sector must pass (paper Section IV-C, Eq. 1).
    """
    space = 2 ** config.effective_value_bits
    p = min(1.0, resident_keys / space)
    n = config.values_per_unit
    per_unit = sum(
        comb(n, k) * p**k * (1.0 - p) ** (n - k)
        for k in range(config.hits_required, n + 1)
    )
    units = SECTOR_BYTES * 8 // (config.value_bits * n)
    return per_unit**units


class Outcome(Enum):
    """Classification of one injection trial.

    The first four classify adversarial tampering; the last two classify
    crash-point trials (:mod:`repro.faults.crashpoints`): ``RECOVERED``
    means post-crash recovery plus replay reproduced the uncrashed
    state byte-for-byte, ``TORN`` means the crash left a state the
    engine *detected* as unrecoverable (a
    :class:`~repro.common.errors.RecoveryError` or downstream security
    violation). Silent corruption after a crash is classified as
    ``FALSE_ACCEPT`` — the one hard failure of the crash taxonomy.
    """

    DETECTED = "detected"
    BENIGN = "benign"
    FALSE_ACCEPT = "false_accept"
    MISSED = "missed"
    RECOVERED = "recovered"
    TORN = "torn"


@dataclass(frozen=True)
class CampaignSpec:
    """A fully seeded, reproducible campaign definition."""

    name: str
    seed: int = 7
    size_bytes: int = 4096
    #: Victim ops replayed before the latest trigger point.
    warmup_ops: int = 48
    trials_per_kind: int = 2
    kinds: Tuple[FaultKind, ...] = tuple(FaultKind)
    engines: Tuple[str, ...] = ENGINE_VARIANTS
    #: ``"synthetic"`` (seeded mixed reads/writes) or ``"value-sweep"``
    #: (key-saturating writes for the value-stress regime).
    workload: str = "synthetic"
    #: Value-cache geometry for the plutus engine; ``None`` = paper
    #: defaults. The value-stress campaign weakens this on purpose.
    value_cache_config: Optional[ValueCacheConfig] = None
    mac_tag_bytes: int = 8
    #: Enforced ceiling on quantified false-accept rates
    #: (:func:`mac_collision_rate` of the tag width); ``None`` turns
    #: enforcement off and the rate is report-only.
    fa_bound: Optional[float] = 2.0**-64

    def __post_init__(self) -> None:
        if self.workload not in ("synthetic", "value-sweep"):
            raise FaultInjectionError(
                f"unknown workload kind {self.workload!r}"
            )
        unknown = set(self.engines) - set(ENGINE_VARIANTS)
        if unknown:
            raise FaultInjectionError(
                f"unknown engine variants: {sorted(unknown)}"
            )
        if self.trials_per_kind <= 0:
            raise FaultInjectionError("trials_per_kind must be positive")


#: Built-in campaigns. ``quick`` is the CI smoke; ``full`` adds trials,
#: a taller tree (two corruptible stored levels), and a bigger footprint;
#: ``value-stress`` deliberately weakens the value cache (8 effective
#: bits) under a key-saturating workload so false accepts become
#: frequent enough to *measure* and compare against the analytic model.
CAMPAIGNS: Dict[str, CampaignSpec] = {
    "quick": CampaignSpec(name="quick", seed=7, size_bytes=4096,
                          warmup_ops=48, trials_per_kind=2),
    "full": CampaignSpec(name="full", seed=11, size_bytes=32768,
                         warmup_ops=120, trials_per_kind=4),
    "value-stress": CampaignSpec(
        name="value-stress",
        seed=13,
        size_bytes=4096,
        workload="value-sweep",
        kinds=(FaultKind.BITFLIP, FaultKind.DROPPED_WRITE),
        engines=("plutus",),
        trials_per_kind=48,
        value_cache_config=ValueCacheConfig(mask_bits=24),
        fa_bound=None,
    ),
}


def campaign_spec(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise FaultInjectionError(
            f"unknown campaign {name!r} (known: {known})"
        ) from None


def build_engine(variant: str, spec: CampaignSpec) -> SecureMemory:
    """Instantiate one engine variant under the campaign's geometry."""
    vcc = (
        spec.value_cache_config
        if spec.value_cache_config is not None
        else ValueCacheConfig()
    )
    if variant == "plutus":
        return SecureMemory(
            spec.size_bytes, mode="plutus", value_cache_config=vcc,
            mac_tag_bytes=spec.mac_tag_bytes, label="plutus",
        )
    if variant == "pssm":
        return SecureMemory(
            spec.size_bytes, mode="pssm",
            mac_tag_bytes=spec.mac_tag_bytes, label="pssm",
        )
    if variant == "functional":
        return SecureMemory(
            spec.size_bytes, mode="plutus", value_cache_config=None,
            mac_tag_bytes=spec.mac_tag_bytes, label="functional",
        )
    if variant == "recoverable":
        from repro.secure.recoverable import RecoverableSecureMemory

        # The crash-recoverable engine under adversarial (not crash)
        # injection: its volatile attack surfaces are the same as the
        # functional reference, so every covered fault must be detected.
        return RecoverableSecureMemory(
            spec.size_bytes, mac_tag_bytes=spec.mac_tag_bytes,
        )
    raise FaultInjectionError(f"unknown engine variant {variant!r}")


def _default_ops(spec: CampaignSpec) -> List[Op]:
    if spec.workload == "value-sweep":
        return value_sweep_ops(spec.size_bytes)
    return synthetic_ops(spec.seed, spec.warmup_ops, spec.size_bytes)


def _tree_level_sizes(num_groups: int, arity: int) -> List[int]:
    sizes = [num_groups]
    while sizes[-1] > 1:
        sizes.append(-(-sizes[-1] // arity))
    return sizes


def _viable_tree_levels(num_groups: int, arity: int, group: int) -> List[int]:
    """Stored levels at which *group*'s verification path has a sibling."""
    sizes = _tree_level_sizes(num_groups, arity)
    viable = []
    child = group
    for level in range(len(sizes) - 1):
        parent = child // arity
        start = parent * arity
        end = min(start + arity, sizes[level])
        if end - start > 1:
            viable.append(level)
        child = parent
    return viable


def build_plans(spec: CampaignSpec, ops: Sequence[Op]) -> List[InjectionPlan]:
    """Seeded plan generation over the workload's written footprint.

    Targets are drawn from addresses the workload has written by the
    trigger point (unwritten memory reads as zeros and is verified by
    nothing, so faults there would be vacuous).
    """
    if not ops:
        raise FaultInjectionError("campaign workload is empty")
    rng = RngStream(spec.seed, name=f"faults:{spec.name}")
    max_trigger = len(ops)
    candidates = sorted({max_trigger, max(2, (max_trigger * 2) // 3)})

    first_write: Dict[int, int] = {}
    for i, op in enumerate(ops):
        if op.write and op.address not in first_write:
            first_write[op.address] = i
    written_at = {
        t: sorted(a for a, i in first_write.items() if i < t)
        for t in candidates
    }
    for t, pool in written_at.items():
        if not pool:
            raise FaultInjectionError(
                f"no written addresses before trigger {t}"
            )

    cfg = SplitCounterConfig()
    num_groups = -(-(spec.size_bytes // SECTOR_BYTES) // cfg.sectors_per_group)

    plans: List[InjectionPlan] = []
    for kind in spec.kinds:
        for trial in range(spec.trials_per_kind):
            trigger = candidates[int(rng.integers(0, len(candidates)))]
            pool = written_at[trigger]
            address = int(rng.choice(pool))
            kwargs: Dict[str, object] = {}
            if kind is FaultKind.BITFLIP:
                kwargs["bit"] = int(rng.integers(0, SECTOR_BYTES * 8))
            elif kind is FaultKind.SPLICE:
                others = [a for a in pool if a != address]
                if not others:
                    raise FaultInjectionError(
                        "splice needs two distinct written addresses"
                    )
                kwargs["src_address"] = int(rng.choice(others))
            elif kind is FaultKind.COUNTER_CORRUPT:
                kwargs["bit"] = int(rng.integers(0, cfg.group_bytes * 8))
            elif kind is FaultKind.MAC_CORRUPT:
                kwargs["bit"] = int(rng.integers(0, spec.mac_tag_bytes * 8))
            elif kind is FaultKind.BMT_NODE:
                group = (address // SECTOR_BYTES) // cfg.sectors_per_group
                levels = _viable_tree_levels(num_groups, 16, group)
                if not levels:
                    raise FaultInjectionError(
                        "memory too small for a BMT sibling attack "
                        f"({num_groups} counter groups)"
                    )
                kwargs["tree_level"] = int(rng.choice(levels))
            elif kind is FaultKind.DROPPED_WRITE:
                kwargs["stream"] = "data" if trial % 2 == 0 else "mac"
            plans.append(
                InjectionPlan(kind=kind, address=address,
                              trigger_index=trigger, **kwargs)
            )
    return plans


def _fresh_payload(spec: CampaignSpec, plan: InjectionPlan) -> bytes:
    """Deterministic advancing payload for temporal kinds."""
    return hashlib.sha256(
        f"fresh:{spec.seed}:{plan.kind.value}:{plan.address:#x}:"
        f"{plan.trigger_index}".encode("ascii")
    ).digest()


@dataclass(frozen=True)
class TrialRecord:
    """One (engine, plan) injection and its classified result."""

    engine: str
    plan: InjectionPlan
    outcome: Outcome
    #: Exception class name raised by the probe (``None`` if accepted).
    exception: Optional[str]
    detail: str


@dataclass
class MatrixCell:
    """Aggregated outcomes of one (engine, fault kind) cell."""

    trials: int = 0
    detected: int = 0
    benign: int = 0
    false_accepts: int = 0
    missed: int = 0
    recovered: int = 0
    torn: int = 0

    @property
    def false_accept_rate(self) -> float:
        return self.false_accepts / self.trials if self.trials else 0.0

    def absorb(self, outcome: Outcome) -> None:
        self.trials += 1
        if outcome is Outcome.DETECTED:
            self.detected += 1
        elif outcome is Outcome.BENIGN:
            self.benign += 1
        elif outcome is Outcome.FALSE_ACCEPT:
            self.false_accepts += 1
        elif outcome is Outcome.RECOVERED:
            self.recovered += 1
        elif outcome is Outcome.TORN:
            self.torn += 1
        else:
            self.missed += 1


@dataclass
class CampaignReport:
    """Everything a campaign learned, plus the pass/fail verdict."""

    spec: CampaignSpec
    records: List[TrialRecord] = field(default_factory=list)
    #: (engine, kind) -> aggregated cell.
    matrix: Dict[Tuple[str, FaultKind], MatrixCell] = field(
        default_factory=dict
    )
    #: The supervised :class:`~repro.resilience.CampaignOutcome` when
    #: the campaign ran under a supervisor (``None`` for direct runs).
    #: A partial outcome means some engines never reported: ``ok`` then
    #: speaks only for the engines that did.
    supervision: Optional[object] = None

    @property
    def missed(self) -> List[TrialRecord]:
        return [r for r in self.records if r.outcome is Outcome.MISSED]

    @property
    def disallowed_benign(self) -> List[TrialRecord]:
        """BENIGN results for kinds where silence is never acceptable."""
        return [
            r for r in self.records
            if r.outcome is Outcome.BENIGN
            and r.plan.kind not in BENIGN_OK_KINDS
        ]

    @property
    def disallowed_false_accepts(self) -> List[TrialRecord]:
        """FALSE_ACCEPT results outside the quantified kinds."""
        return [
            r for r in self.records
            if r.outcome is Outcome.FALSE_ACCEPT
            and r.plan.kind not in QUANTIFIED_KINDS
        ]

    def false_accept_rate(self, engine: Optional[str] = None) -> float:
        """Measured rate over quantified-kind trials (optionally per engine)."""
        trials = accepts = 0
        for (eng, kind), cell in self.matrix.items():
            if kind not in QUANTIFIED_KINDS:
                continue
            if engine is not None and eng != engine:
                continue
            trials += cell.trials
            accepts += cell.false_accepts
        return accepts / trials if trials else 0.0

    @property
    def violated_cells(self) -> List[Tuple[str, FaultKind]]:
        """Quantified cells whose measured rate exceeds the bound."""
        if self.spec.fa_bound is None:
            return []
        return [
            key
            for key, cell in self.matrix.items()
            if key[1] in QUANTIFIED_KINDS
            and cell.false_accept_rate > self.spec.fa_bound
        ]

    @property
    def ok(self) -> bool:
        return not (
            self.missed
            or self.disallowed_benign
            or self.disallowed_false_accepts
            or self.violated_cells
        )


def _replay_op(mem: SecureMemory, shadow: Dict[int, bytes], op: Op) -> None:
    if op.write:
        mem.write(op.address, op.data)
        shadow[op.address] = op.data
    else:
        mem.read(op.address, SECTOR_BYTES)


def _run_trial(
    engine_name: str,
    mem: SecureMemory,
    shadow: Dict[int, bytes],
    plan: InjectionPlan,
    spec: CampaignSpec,
) -> TrialRecord:
    fresh: Optional[bytes] = None
    honest = shadow.get(plan.address)
    if plan.kind in (FaultKind.REPLAY, FaultKind.DROPPED_WRITE):
        fresh = _fresh_payload(spec, plan)
        honest = fresh
    apply_fault(mem, plan, fresh_data=fresh)
    try:
        got = mem.read(plan.address, SECTOR_BYTES)
    except (IntegrityError, ReplayError) as exc:
        expected = EXPECTED_EXCEPTION[plan.kind]
        if isinstance(exc, expected) and exc.address == plan.address:
            outcome = Outcome.DETECTED
            detail = str(exc)
        else:
            outcome = Outcome.MISSED
            where = hex(exc.address) if exc.address is not None else "?"
            detail = (
                f"wrong detection: {type(exc).__name__} at {where} "
                f"(expected {expected.__name__} at {plan.address:#x}): {exc}"
            )
        exception = type(exc).__name__
    else:
        exception = None
        if honest is not None and got == honest:
            outcome = Outcome.BENIGN
            detail = "correct data returned despite tampering"
        else:
            outcome = Outcome.FALSE_ACCEPT
            detail = "tampered data accepted silently"
    return TrialRecord(
        engine=engine_name, plan=plan, outcome=outcome,
        exception=exception, detail=detail,
    )


def _run_engine(
    engine_name: str,
    spec: CampaignSpec,
    ops: Sequence[Op],
    plans: Sequence[InjectionPlan],
) -> List[TrialRecord]:
    mem = build_engine(engine_name, spec)
    shadow: Dict[int, bytes] = {}
    triggers = sorted({p.trigger_index for p in plans})
    checkpoints: Dict[int, Tuple[SecureMemory, Dict[int, bytes]]] = {}
    op_i = 0
    for trigger in triggers:
        while op_i < trigger:
            _replay_op(mem, shadow, ops[op_i])
            op_i += 1
        checkpoints[trigger] = (deepcopy(mem), dict(shadow))
    records = []
    for plan in plans:
        base_mem, base_shadow = checkpoints[plan.trigger_index]
        records.append(
            _run_trial(engine_name, deepcopy(base_mem), dict(base_shadow),
                       plan, spec)
        )
    return records


def _plan_payload(plan: InjectionPlan) -> Dict[str, object]:
    return {
        "kind": plan.kind.value,
        "address": plan.address,
        "trigger_index": plan.trigger_index,
        "bit": plan.bit,
        "src_address": plan.src_address,
        "tree_level": plan.tree_level,
        "stream": plan.stream,
    }


def _plan_from_payload(payload: Dict[str, object]) -> InjectionPlan:
    return InjectionPlan(
        kind=FaultKind(payload["kind"]),
        address=payload["address"],
        trigger_index=payload["trigger_index"],
        bit=payload["bit"],
        src_address=payload["src_address"],
        tree_level=payload["tree_level"],
        stream=payload["stream"],
    )


def _record_payload(record: TrialRecord) -> Dict[str, object]:
    return {
        "engine": record.engine,
        "plan": _plan_payload(record.plan),
        "outcome": record.outcome.value,
        "exception": record.exception,
        "detail": record.detail,
    }


def _record_from_payload(payload: Dict[str, object]) -> TrialRecord:
    return TrialRecord(
        engine=payload["engine"],
        plan=_plan_from_payload(payload["plan"]),
        outcome=Outcome(payload["outcome"]),
        exception=payload["exception"],
        detail=payload["detail"],
    )


def engine_campaign(
    spec: CampaignSpec, ops: Sequence[Op], plans: Sequence[InjectionPlan]
):
    """Decompose one fault campaign into per-engine work units.

    The engine is the natural unit: state forking amortizes the op
    prefix within one engine, while engines share nothing. Identity
    covers the campaign spec plus digests of the concrete ops and
    plans, so a journaled engine result is only reused against the
    exact same attack.
    """
    from repro.common.digest import content_digest
    from repro.resilience import Campaign, WorkUnit

    ops_id = content_digest("fault-ops", *(repr(op) for op in ops))
    plans_id = content_digest("fault-plans", *(repr(p) for p in plans))

    def runner_for(engine_name: str):
        def run() -> List[Dict[str, object]]:
            return [
                _record_payload(r)
                for r in _run_engine(engine_name, spec, ops, plans)
            ]

        return run

    units = [
        WorkUnit(
            kind="fault-engine",
            params={
                "campaign": spec.name,
                "seed": spec.seed,
                "engine": engine_name,
                "ops": ops_id,
                "plans": plans_id,
            },
            runner=runner_for(engine_name),
            label=f"{spec.name}:{engine_name}",
        )
        for engine_name in spec.engines
    ]
    return Campaign(name=f"faults:{spec.name}", units=units)


def run_campaign(
    spec: CampaignSpec,
    ops: Optional[Sequence[Op]] = None,
    supervisor=None,
) -> CampaignReport:
    """Mount *spec* (optionally over caller-supplied victim ops).

    With a :class:`~repro.resilience.Supervisor`, each engine runs as
    one supervised work unit: transient failures are retried, budgets
    degrade gracefully (missing engines are reported, not silently
    absent), and the outcome rides along as ``report.supervision``.
    """
    registry = active().registry
    if ops is None:
        ops = _default_ops(spec)
    plans = build_plans(spec, ops)
    report = CampaignReport(spec=spec)
    if supervisor is None:
        for engine_name in spec.engines:
            report.records.extend(_run_engine(engine_name, spec, ops, plans))
    else:
        campaign = engine_campaign(spec, ops, plans)
        outcome = supervisor.run(campaign)
        report.supervision = outcome
        results = outcome.results
        for unit in campaign.units:
            for payload in results.get(unit.unit_id) or ():
                report.records.append(_record_from_payload(payload))
    for record in report.records:
        key = (record.engine, record.plan.kind)
        cell = report.matrix.get(key)
        if cell is None:
            cell = report.matrix[key] = MatrixCell()
        cell.absorb(record.outcome)
        registry.counter("faults.injected").inc()
        registry.counter(f"faults.{record.outcome.value}").inc()
    return report
