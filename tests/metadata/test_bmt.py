"""Tests for BMT geometry and cached traversal."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.cache import CacheConfig, SectoredCache
from repro.mem.traffic import Stream, TrafficCounter
from repro.metadata.bmt import BmtGeometry, BmtTraversal


def make_traversal(geometry, cache_bytes=2048, lazy=True):
    traffic = TrafficCounter()
    cache = SectoredCache(CacheConfig(name="bmt", size_bytes=cache_bytes))
    return BmtTraversal(geometry, cache, traffic, lazy_update=lazy), traffic


class TestGeometry:
    def test_paper_example_heights(self):
        """Paper Section IV-E: 8-ary trees with 128 and 512 leaves both
        have height 4 (128-16-2-1 and 512-64-8-1)."""
        assert BmtGeometry(128, arity=8).level_sizes == (16, 2, 1)
        assert BmtGeometry(512, arity=8).level_sizes == (64, 8, 1)

    def test_16ary_vs_4ary_depth(self):
        """Shrinking nodes from 128B (16-ary) to 32B (4-ary) grows the
        tree taller — the Fig. 14 trade-off."""
        coarse = BmtGeometry(32768, arity=16, node_bytes=128)
        fine = BmtGeometry(131072, arity=4, node_bytes=32)
        assert fine.height > coarse.height

    def test_storage_growth_matches_paper(self):
        """Section IV-F: fine granularity takes BMT storage to ~1.33 MB
        per partition-set (we verify the same order of magnitude)."""
        fine = BmtGeometry(131072, arity=4, node_bytes=32)
        assert fine.storage_bytes == pytest.approx(1.33 * 1024**2, rel=0.05)

    def test_node_must_hold_arity_hashes(self):
        with pytest.raises(ConfigurationError):
            BmtGeometry(64, arity=16, node_bytes=32)  # 16 x 8B > 32B

    def test_degenerate_single_leaf(self):
        assert BmtGeometry(1, arity=4, node_bytes=32).level_sizes == (1,)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            BmtGeometry(0)
        with pytest.raises(ConfigurationError):
            BmtGeometry(8, arity=1)


class TestNodeAddressing:
    def test_ancestor_indices(self):
        geometry = BmtGeometry(64, arity=4, node_bytes=32)
        assert geometry.node_index(17, 1) == 4
        assert geometry.node_index(17, 2) == 1
        assert geometry.node_index(17, 3) == 0

    def test_addresses_are_level_packed(self):
        geometry = BmtGeometry(64, arity=4, node_bytes=32)
        assert geometry.node_address(0, 1) == 0
        assert geometry.node_address(4, 1) == 32
        # Level 2 starts after the 16 level-1 nodes.
        assert geometry.node_address(0, 2) == 16 * 32

    def test_locate_inverts_node_address(self):
        geometry = BmtGeometry(256, arity=4, node_bytes=32)
        for leaf, level in [(0, 1), (100, 1), (255, 2), (9, 3)]:
            addr = geometry.node_address(leaf, level)
            found_level, found_node = geometry.locate(addr)
            assert found_level == level
            assert found_node == geometry.node_index(leaf, level)

    def test_locate_rejects_out_of_tree(self):
        geometry = BmtGeometry(16, arity=4, node_bytes=32)
        with pytest.raises(ValueError):
            geometry.locate(geometry.storage_bytes + 64)

    def test_bounds_checked(self):
        geometry = BmtGeometry(16, arity=4)
        with pytest.raises(ValueError):
            geometry.node_index(16, 1)
        with pytest.raises(ValueError):
            geometry.node_index(0, 99)


class TestVerificationWalk:
    def test_cold_walk_fetches_to_root(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        fetched = traversal.verify_leaf(0)
        assert fetched == 2  # levels 1 and 2; root is on-chip
        assert traffic.bytes_for(Stream.BMT_READ) == 2 * 128

    def test_warm_walk_stops_at_first_hit(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        traversal.verify_leaf(0)
        before = traffic.bytes_for(Stream.BMT_READ)
        assert traversal.verify_leaf(0) == 0
        assert traffic.bytes_for(Stream.BMT_READ) == before

    def test_sibling_leaf_shares_parent(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, _ = make_traversal(geometry)
        traversal.verify_leaf(0)
        assert traversal.verify_leaf(1) == 0  # same level-1 node

    def test_distant_leaf_shares_only_upper_levels(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, _ = make_traversal(geometry)
        traversal.verify_leaf(0)
        # Leaf 64: different L1 node (64//8=8 vs 0), different L2 node
        # (8//8=1 vs 0) -> both fetched; root on-chip.
        assert traversal.verify_leaf(64) == 2

    def test_root_only_tree_never_fetches(self):
        geometry = BmtGeometry(4, arity=4, node_bytes=32)
        traversal, traffic = make_traversal(geometry)
        assert traversal.verify_leaf(3) == 0
        assert traffic.bytes_for(Stream.BMT_READ) == 0
        assert traversal.root_verifications == 1


class TestLazyUpdate:
    def test_update_dirties_without_immediate_write(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        traversal.update_leaf(0)
        assert traffic.bytes_for(Stream.BMT_WRITE) == 0  # lazy: in cache

    def test_flush_writes_dirty_path(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        traversal.update_leaf(0)
        traversal.flush()
        # Level-1 node written; propagation dirties and writes level 2.
        assert traffic.bytes_for(Stream.BMT_WRITE) == 2 * 128

    def test_flush_is_idempotent(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        traversal.update_leaf(5)
        traversal.flush()
        first = traffic.bytes_for(Stream.BMT_WRITE)
        traversal.flush()
        assert traffic.bytes_for(Stream.BMT_WRITE) == first

    def test_eager_update_writes_immediately(self):
        geometry = BmtGeometry(128, arity=8, node_bytes=128)
        traversal, traffic = make_traversal(geometry, lazy=False)
        traversal.update_leaf(0)
        assert traffic.bytes_for(Stream.BMT_WRITE) > 0

    def test_lazy_beats_eager_on_repeated_updates(self):
        """The rationale for the lazy scheme: repeated updates to the
        same leaf coalesce in the cache."""
        geometry = BmtGeometry(512, arity=8, node_bytes=128)
        lazy, lazy_traffic = make_traversal(geometry, lazy=True)
        eager, eager_traffic = make_traversal(geometry, lazy=False)
        for _ in range(50):
            lazy.update_leaf(7)
            eager.update_leaf(7)
        lazy.flush()
        lazy_bytes = lazy_traffic.bytes_for(Stream.BMT_WRITE)
        eager_bytes = eager_traffic.bytes_for(Stream.BMT_WRITE)
        assert lazy_bytes < eager_bytes


class TestFineGranularityFetch:
    def test_32B_nodes_fetch_single_sectors(self):
        geometry = BmtGeometry(1024, arity=4, node_bytes=32)
        traversal, traffic = make_traversal(geometry)
        traversal.verify_leaf(0)
        reads = traffic.bytes_for(Stream.BMT_READ)
        transactions = traffic.transactions_for(Stream.BMT_READ)
        assert reads == transactions * 32  # every fetch one sector

    def test_128B_nodes_fetch_whole_lines(self):
        geometry = BmtGeometry(1024, arity=16, node_bytes=128)
        traversal, traffic = make_traversal(geometry)
        fetched = traversal.verify_leaf(0)
        assert traffic.bytes_for(Stream.BMT_READ) == fetched * 128
