"""Property tests (hypothesis): the columnar core is exactly lossless.

Three identities the refactor rests on:

* ``from_columns(to_columns(log))`` reproduces any event log exactly;
* the vectorized ``split_event_log`` produces the same shards as the
  scalar object-path grouping it replaced;
* the lazy ``events`` view is element-wise equal to a materialized
  list of the same events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.columnar import EventKind, EventView, MemoryEvent
from repro.gpu.simulator import MemoryEventLog, split_event_log


@st.composite
def memory_events(draw):
    kind = draw(st.sampled_from((EventKind.FILL, EventKind.WRITEBACK)))
    partition = draw(st.integers(min_value=0, max_value=7))
    sector = draw(st.integers(min_value=0, max_value=2**40))
    values = draw(
        st.none() | st.binary(min_size=32, max_size=32)
        | st.binary(min_size=1, max_size=48)
    )
    return MemoryEvent(kind, partition, sector, values)


event_lists = st.lists(memory_events(), min_size=0, max_size=60)


def _log(events):
    return MemoryEventLog(
        trace_name="prop",
        memory_intensity=0.5,
        instructions=1,
        events=list(events),
        fill_sectors=sum(e.kind is EventKind.FILL for e in events),
        writeback_sectors=sum(
            e.kind is EventKind.WRITEBACK for e in events
        ),
    )


@settings(max_examples=60, deadline=None)
@given(events=event_lists)
def test_columns_roundtrip_is_exact(events):
    log = _log(events)
    rebuilt = MemoryEventLog.from_columns(
        log.to_columns(),
        trace_name=log.trace_name,
        memory_intensity=log.memory_intensity,
        instructions=log.instructions,
        counter_warmup_passes=log.counter_warmup_passes,
    )
    assert list(rebuilt.events) == events
    assert rebuilt.events == log.events
    assert rebuilt.fill_sectors == log.fill_sectors
    assert rebuilt.writeback_sectors == log.writeback_sectors


@settings(max_examples=60, deadline=None)
@given(events=event_lists)
def test_columnar_split_matches_object_path_grouping(events):
    log = _log(events)
    shards = split_event_log(log)
    # The scalar grouping the vectorized path replaced.
    reference = {}
    for event in events:
        reference.setdefault(event.partition, []).append(event)
    assert set(shards) == set(reference)
    for partition, shard in shards.items():
        expected = reference[partition]
        assert list(shard.events) == expected
        assert shard.fill_sectors == sum(
            e.kind is EventKind.FILL for e in expected
        )
        assert shard.writeback_sectors == sum(
            e.kind is EventKind.WRITEBACK for e in expected
        )
        assert shard.trace_name == log.trace_name
    assert sum(len(s.events) for s in shards.values()) == len(events)


@settings(max_examples=60, deadline=None)
@given(events=event_lists)
def test_lazy_view_equals_materialized_list(events):
    view = EventView()
    view.extend(events)
    materialized = list(view)
    assert len(materialized) == len(events)
    assert all(a == b for a, b in zip(materialized, events))
    assert view == events
    assert view[:] == events
    for index in range(len(events)):
        assert view[index] == events[index]
