"""Fig. 22: average power normalized to a no-security system.

Paper: the 8B-MAC PSSM scheme costs +36.9% power; Plutus reduces the
security power overhead to +17.8%.
"""

from conftest import run_once

from repro.harness.experiments import run_fig22
from repro.harness.report import render_experiment


def test_fig22_power(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig22(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    rows = result.rows
    mean = lambda key: sum(r[key] for r in rows) / len(rows)
    pssm = mean("pssm_power_overhead")
    plutus = mean("plutus_power_overhead")
    # Shape: PSSM in the tens of percent; Plutus substantially lower.
    assert 0.15 < pssm < 0.60
    assert plutus < pssm * 0.80
    assert plutus > 0.0
