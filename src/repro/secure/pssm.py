"""PSSM baseline engine (Yuan et al. [36]), the paper's comparison point.

Partitioned, sectored security metadata with counter-mode encryption:
every L2 read miss fetches and verifies the sector's split counter
(BMT-protected) and its MAC; every dirty writeback advances the counter,
recomputes the MAC, and lazily maintains the tree. Metadata blocks are
128 bytes — the coarse granularity whose over-fetch Plutus attacks.

The paper upgrades PSSM's 4-byte MACs to 8 bytes for a fair security
level ("8B-MAC-PSSM"); that is the default here, with ``mac_tag_bytes``
exposed for the 4-byte variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mem.traffic import TrafficCounter
from repro.metadata.layout import GranularityDesign
from repro.secure.engine import MetadataCacheConfig, MetadataEngine


class PssmEngine(MetadataEngine):
    """The state-of-the-art sectored-metadata baseline."""

    name = "pssm"

    def __init__(
        self,
        partition_id: int,
        data_sectors: int,
        traffic: TrafficCounter,
        mac_tag_bytes: int = 8,
        design: GranularityDesign = GranularityDesign.BLOCK_128,
        cache_config: MetadataCacheConfig = MetadataCacheConfig(),
        lazy_update: bool = True,
        counter_config=None,
    ) -> None:
        from repro.metadata.split_counter import SplitCounterConfig

        super().__init__(
            partition_id,
            data_sectors,
            traffic,
            design=design,
            mac_tag_bytes=mac_tag_bytes,
            cache_config=cache_config,
            lazy_update=lazy_update,
            counter_config=counter_config or SplitCounterConfig(),
        )

    def on_fill(self, sector_index: int, values: Optional[bytes]) -> None:
        """Read miss: verified counter for the decrypt pad, MAC check."""
        self.stats.fills += 1
        self.counter_read(sector_index)
        self.mac_read(sector_index)

    def on_writeback(self, sector_index: int, values: Optional[bytes]) -> None:
        """Dirty eviction: counter bump, fresh MAC, lazy tree update."""
        self.stats.writebacks += 1
        self.counter_write(sector_index)
        self.mac_write(sector_index)

    # -- batch hooks (columnar path) --------------------------------------
    #
    # PSSM touches two disjoint metadata structures per event, so a run
    # splits into a counter phase and a MAC phase; each phase is the
    # shared vectorized replay from MetadataEngine. Values never matter
    # to this design, so the lazy value columns stay unmaterialized.

    batch_native = True

    def on_fill_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        self.stats.fills += int(sectors.size)
        self._batch_counter_reads(sectors)
        self._batch_mac_reads(sectors)

    def on_writeback_batch(self, sector_indices, values) -> None:
        sectors = np.asarray(sector_indices, dtype=np.int64)
        self.stats.writebacks += int(sectors.size)
        self._batch_counter_writes(sectors)
        self._batch_mac_writes(sectors)
