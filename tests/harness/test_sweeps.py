"""Tests for the sensitivity sweeps."""

import pytest

from repro.harness.runner import ExperimentContext
from repro.harness.sweeps import (
    sweep_memory_intensity,
    sweep_metadata_cache,
    sweep_partitions,
    sweep_seeds,
    sweep_trace_length,
)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(trace_length=1200, benchmarks=["bfs"])


class TestSeeds:
    def test_rows_per_seed(self):
        rows = sweep_seeds("bfs", seeds=(1, 2), trace_length=1200)
        assert [r["seed"] for r in rows] == [1, 2]
        assert all(r["speedup"] > 0 for r in rows)

    def test_speedup_consistent_across_seeds(self):
        rows = sweep_seeds("bfs", seeds=(1, 2, 3), trace_length=1500)
        speedups = [r["speedup"] for r in rows]
        assert max(speedups) - min(speedups) < 0.25


class TestLength:
    def test_rows_per_length(self):
        rows = sweep_trace_length("lbm", lengths=(600, 1200))
        assert [r["length"] for r in rows] == [600, 1200]


class TestMetadataCache:
    def test_bigger_caches_do_not_hurt_pssm(self):
        rows = sweep_metadata_cache("bfs", sizes=(1024, 4096),
                                    trace_length=1500)
        by_size = {r["cache_bytes"]: r for r in rows}
        assert by_size[4096]["pssm_ipc"] >= by_size[1024]["pssm_ipc"] - 1e-9


class TestIntensity:
    def test_zero_intensity_is_indifferent(self, ctx):
        rows = sweep_memory_intensity(ctx, "bfs", intensities=(0.0, 1.0))
        assert rows[0]["speedup"] == pytest.approx(1.0)

    def test_speedup_monotone_in_intensity(self, ctx):
        rows = sweep_memory_intensity(
            ctx, "bfs", intensities=(0.0, 0.5, 1.0)
        )
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups)


class TestPartitions:
    def test_win_persists_across_partition_counts(self):
        rows = sweep_partitions("bfs", partition_counts=(8, 32),
                                trace_length=1200)
        assert all(r["speedup"] > 1.0 for r in rows)
