"""Shared CLI plumbing for supervised (resilient) runs.

Every subcommand that can run under the campaign supervisor uses the
same flag vocabulary:

* ``--retries`` / ``--backoff`` — the per-unit retry policy;
* ``--budget`` / ``--unit-timeout`` / ``--max-rss-mb`` — resource
  budgets; exhaustion cancels remaining units and exits with the
  partial code (3);
* ``--chaos`` / ``--chaos-seed`` — the seeded chaos monkey;
* ``--run-dir`` / ``--run-id`` / ``--resume`` — the journal: where run
  directories live, which run this is, and whether to continue an
  existing one instead of starting fresh;
* ``--workers N`` (with ``N >= 2`` and journaling enabled) — the
  distributed executor: N worker subprocesses pull units from a shared
  lease-based work queue, with ``--lease-ttl`` bounding dead-worker
  detection, ``--speculate`` duplicating stragglers, and
  ``--chaos-workers`` sabotaging the worker *processes* themselves
  (kill -9, freezes) rather than unit attempts.

:func:`build_supervisor` turns parsed args (plus the concrete campaign,
when journaling applies) into a ready :class:`Supervisor` — or a
:class:`~repro.resilience.DistributedSupervisor` when the subcommand
supplied a campaign factory spec and the flags ask for one.
"""

from __future__ import annotations

import argparse
from typing import Dict, Optional

from repro.common.errors import ResilienceError

from repro.resilience import (
    Campaign,
    ChaosConfig,
    ChaosMonkey,
    DistributedConfig,
    DistributedSupervisor,
    ResourceBudget,
    RetryPolicy,
    RunJournal,
    Supervisor,
    WorkerChaosConfig,
)

#: Default root for run journals (mirrors the ``.cache`` convention).
DEFAULT_RUN_DIR = ".runs"


def _positive_float(value: str) -> float:
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value!r}"
        ) from None
    if parsed <= 0:
        raise argparse.ArgumentTypeError("expected a positive number")
    return parsed


def add_resilience_flags(
    parser: argparse.ArgumentParser,
    journal: bool = True,
    workers: bool = False,
) -> None:
    """Install the shared supervisor flags on *parser*.

    ``journal=False`` omits the run-journal flags for subcommands whose
    campaigns are cheap enough that resume has nothing to save.
    ``workers=True`` adds a distributed ``--workers`` flag for
    subcommands that do not already own one via the execution flags.
    """
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="attempts per work unit before it counts as failed "
             "(default 3; transient crashes and timeouts are retried, "
             "deterministic errors never are)",
    )
    group.add_argument(
        "--backoff", type=_positive_float, default=0.05, metavar="SECONDS",
        help="base delay of the exponential retry backoff (default 0.05; "
             "jitter is seeded, so schedules reproduce)",
    )
    group.add_argument(
        "--budget", type=_positive_float, default=None, metavar="SECONDS",
        help="campaign wall-clock budget; on exhaustion remaining units "
             "are cancelled, missing cells are marked, and the exit "
             "status is 3 (partial)",
    )
    group.add_argument(
        "--unit-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="wall-clock bound per work unit (SIGALRM preemption on the "
             "Unix main thread; advisory elsewhere); timeouts are "
             "retried like crashes",
    )
    group.add_argument(
        "--max-rss-mb", type=_positive_float, default=None, metavar="MB",
        help="peak RSS ceiling for the whole process; crossing it "
             "degrades the campaign like an exhausted --budget",
    )
    group.add_argument(
        "--chaos", action="store_true",
        help="sabotage the campaign runtime itself: seeded random kills, "
             "delays, and simulated OOMs around unit attempts",
    )
    group.add_argument(
        "--chaos-seed", type=int, default=7, metavar="N",
        help="chaos strike seed (default 7); strikes are a pure function "
             "of (seed, unit, attempt)",
    )
    group.add_argument(
        "--chaos-workers", action="store_true",
        help="distributed runs only: sabotage the worker processes "
             "themselves — seeded kill -9s (exercising lease stealing "
             "and respawn) and heartbeat-alive freezes (exercising "
             "straggler speculation)",
    )
    if workers:
        group.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="run the campaign on N worker subprocesses pulling "
                 "from a shared lease-based work queue (requires "
                 "journaling; N >= 2)",
        )
    if journal:
        group.add_argument(
            "--lease-ttl", type=_positive_float, default=5.0,
            metavar="SECONDS",
            help="distributed runs: heartbeat TTL of a unit lease "
                 "(default 5); a lease untouched for this long is "
                 "presumed dead and any peer may steal the unit",
        )
        group.add_argument(
            "--speculate", action="store_true",
            help="distributed runs: speculatively duplicate straggler "
                 "units (in flight longer than 3x the running median); "
                 "first completion wins, the loser is recorded",
        )
        group.add_argument(
            "--run-dir", default=DEFAULT_RUN_DIR, metavar="PATH",
            help=f"root for run journals (default {DEFAULT_RUN_DIR}; "
                 "pass '' to disable journaling and resume)",
        )
        group.add_argument(
            "--run-id", default=None, metavar="ID",
            help="name this run's journal directory (default: the "
                 "campaign fingerprint prefix)",
        )
        group.add_argument(
            "--resume", default=None, metavar="RUN_ID",
            help="continue an existing run: completed units are loaded "
                 "from its journal and not re-executed",
        )


def supervision_requested(args: argparse.Namespace) -> bool:
    """Whether any flag asked for the supervised execution path."""
    return bool(
        getattr(args, "supervise", False)
        or getattr(args, "resume", None)
        or getattr(args, "run_id", None)
        or distributed_requested(args)
        or args.chaos
        or getattr(args, "chaos_workers", False)
        or args.budget is not None
        or args.unit_timeout is not None
        or args.max_rss_mb is not None
    )


def distributed_requested(args: argparse.Namespace) -> bool:
    """Whether the flags ask for the multi-process executor.

    An *explicit* ``--workers N`` with ``N >= 2`` plus enabled
    journaling (the lease queue and per-worker journals live in the
    run directory). ``--workers auto`` (``None``) keeps the in-process
    sharded-replay pool, and ``--workers 1`` is the serial path.
    """
    workers = getattr(args, "workers", None)
    return (
        isinstance(workers, int)
        and workers >= 2
        and bool(getattr(args, "run_dir", ""))
    )


def build_supervisor(
    args: argparse.Namespace,
    campaign: Optional[Campaign] = None,
    factory_spec: Optional[Dict[str, object]] = None,
) -> Supervisor:
    """Construct the supervisor the parsed *args* describe.

    With a *campaign* (and journaling flags present and enabled), the
    run journal is opened against it — creating a fresh journal, or
    validating and continuing an existing one under ``--resume``.
    Raises :class:`~repro.common.errors.JournalError` for resume
    mismatches, which callers surface as a usage error.

    With *factory_spec* (a JSON-able ``{"factory": "module:function",
    "kwargs": ...}`` reference that rebuilds *campaign* in another
    process) and distributed flags, the result is a
    :class:`~repro.resilience.DistributedSupervisor` instead.
    """
    policy = RetryPolicy(
        max_attempts=max(1, args.retries), base_delay_s=args.backoff
    )
    budget = ResourceBudget(
        wall_clock_s=args.budget,
        unit_timeout_s=args.unit_timeout,
        max_rss_mb=args.max_rss_mb,
    )
    chaos = (
        ChaosMonkey(ChaosConfig(seed=args.chaos_seed)) if args.chaos else None
    )
    journal = None
    run_dir = getattr(args, "run_dir", "")
    if campaign is not None and run_dir:
        resume = getattr(args, "resume", None)
        run_id = (
            resume
            or getattr(args, "run_id", None)
            or campaign.default_run_id
        )
        # Record the budget in the run header so the live `status`
        # monitor can report consumption without access to the args.
        budget_meta = {
            key: value
            for key, value in (
                ("wall_clock_s", budget.wall_clock_s),
                ("unit_timeout_s", budget.unit_timeout_s),
                ("max_rss_mb", budget.max_rss_mb),
            )
            if value is not None
        }
        journal = RunJournal.open(
            run_dir,
            run_id,
            campaign,
            require_existing=resume is not None,
            meta={"budget": budget_meta} if budget_meta else None,
        )
    if factory_spec is not None and distributed_requested(args):
        if journal is None:
            raise ResilienceError(
                "--workers needs a run journal; do not combine it "
                "with --run-dir ''"
            )
        worker_chaos = (
            WorkerChaosConfig(seed=args.chaos_seed)
            if getattr(args, "chaos_workers", False)
            else None
        )
        config = DistributedConfig(
            workers=args.workers,
            lease_ttl_s=getattr(args, "lease_ttl", 5.0),
            speculate=getattr(args, "speculate", False),
            chaos_seed=args.chaos_seed if args.chaos else None,
            worker_chaos=worker_chaos,
        )
        return DistributedSupervisor(
            config,
            factory_spec,
            journal,
            policy=policy,
            budget=budget,
            cache_dir=getattr(args, "cache_dir", None),
        )
    return Supervisor(
        policy=policy, budget=budget, chaos=chaos, journal=journal
    )
