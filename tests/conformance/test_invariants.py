"""Oracle tests: clean runs pass, doctored runs name the invariant."""

from repro.conformance.fuzzer import rebuild_log
from repro.conformance.invariants import INVARIANTS, check_run
from repro.conformance.matrix import MatrixRun, run_matrix
from repro.gpu.config import VOLTA
from repro.gpu.simulator import (
    EventKind,
    L2Stats,
    MemoryEvent,
    MemoryEventLog,
    SimulationResult,
)
from repro.mem.traffic import Stream, TrafficCounter
from repro.secure.engine import EngineStats


def _log(partitions=(0, 1), sectors=3, rounds=4):
    base = MemoryEventLog(
        trace_name="inv", memory_intensity=0.5, instructions=1
    )
    value = bytes(range(32))
    events = []
    for r in range(rounds):
        for p in partitions:
            for s in range(sectors):
                kind = EventKind.FILL if r % 2 else EventKind.WRITEBACK
                events.append(MemoryEvent(kind, p, s, value))
    return rebuild_log(base, events)


def _result(name, stats, **streams):
    counter = TrafficCounter()
    for key, (nbytes, ntx) in streams.items():
        counter.record(Stream(key), nbytes, transactions=ntx)
    return SimulationResult(
        engine_name=name,
        trace_name="inv",
        memory_intensity=0.5,
        instructions=1,
        traffic=counter.report(),
        engine_stats=stats,
        l2_stats=L2Stats(),
    )


def _consistent_result(name, log, metadata_bytes=0):
    stats = EngineStats(
        fills=log.fill_sectors, writebacks=log.writeback_sectors
    )
    streams = {
        "data_read": (32 * log.fill_sectors, log.fill_sectors),
        "data_write": (32 * log.writeback_sectors, log.writeback_sectors),
    }
    if metadata_bytes:
        streams["counter_read"] = (metadata_bytes, metadata_bytes // 32)
    return _result(name, stats, **streams)


def _names(violations):
    return {v.invariant for v in violations}


class TestCleanRun:
    def test_real_matrix_run_is_clean(self):
        run = run_matrix(
            _log(),
            engines=("nosec", "pssm", "plutus"),
            functional_events=24,
        )
        assert check_run(run) == []

    def test_synthetic_consistent_run_is_clean(self):
        log = _log()
        run = MatrixRun(
            log=log,
            config=VOLTA,
            results={
                "nosec": _consistent_result("nosec", log),
                "pssm": _consistent_result("pssm", log, metadata_bytes=320),
            },
        )
        assert check_run(run) == []


class TestDoctoredRuns:
    def test_stream_quantum_violation_detected(self):
        log = _log()
        bad = _consistent_result("nosec", log)
        # Shave one byte off a stream without touching transactions.
        counter = TrafficCounter()
        counter.record(
            Stream.DATA_READ, 32 * log.fill_sectors - 1,
            transactions=log.fill_sectors,
        )
        counter.record(
            Stream.DATA_WRITE, 32 * log.writeback_sectors,
            transactions=log.writeback_sectors,
        )
        bad = SimulationResult(
            engine_name="nosec", trace_name="inv", memory_intensity=0.5,
            instructions=1, traffic=counter.report(),
            engine_stats=bad.engine_stats, l2_stats=L2Stats(),
        )
        run = MatrixRun(log=log, config=VOLTA, results={"nosec": bad})
        assert "stream-quantum" in _names(check_run(run))

    def test_data_accounting_violation_detected(self):
        log = _log()
        stats = EngineStats(fills=log.fill_sectors + 1,
                            writebacks=log.writeback_sectors)
        bad = _result(
            "pssm", stats,
            data_read=(32 * log.fill_sectors, log.fill_sectors),
            data_write=(32 * log.writeback_sectors, log.writeback_sectors),
        )
        run = MatrixRun(log=log, config=VOLTA, results={"pssm": bad})
        assert "data-accounting" in _names(check_run(run))

    def test_data_identity_violation_detected(self):
        log = _log()
        drifted = _result(
            "pssm",
            EngineStats(fills=log.fill_sectors,
                        writebacks=log.writeback_sectors),
            data_read=(32 * (log.fill_sectors + 2), log.fill_sectors + 2),
            data_write=(32 * log.writeback_sectors, log.writeback_sectors),
        )
        run = MatrixRun(
            log=log, config=VOLTA,
            results={
                "nosec": _consistent_result("nosec", log),
                "pssm": drifted,
            },
        )
        assert "data-identity" in _names(check_run(run))

    def test_nosec_metadata_violation_detected(self):
        log = _log()
        run = MatrixRun(
            log=log, config=VOLTA,
            results={
                "nosec": _consistent_result("nosec", log, metadata_bytes=32),
            },
        )
        assert "nosec-floor" in _names(check_run(run))

    def test_serial_parallel_divergence_detected(self):
        log = _log()
        serial = _consistent_result("plutus", log, metadata_bytes=64)
        diverged = _consistent_result("plutus", log, metadata_bytes=96)
        run = MatrixRun(
            log=log, config=VOLTA,
            results={"plutus": serial},
            parallel=("plutus", diverged),
        )
        assert "serial-parallel" in _names(check_run(run))

    def test_roundtrip_divergence_detected(self):
        log = _log()
        run = MatrixRun(
            log=log, config=VOLTA,
            results={"plutus": _consistent_result("plutus", log,
                                                  metadata_bytes=64)},
            roundtrip=("plutus", _consistent_result("plutus", log,
                                                    metadata_bytes=32)),
        )
        assert "io-roundtrip" in _names(check_run(run))

    def test_columnar_object_divergence_detected(self):
        log = _log()
        run = MatrixRun(
            log=log, config=VOLTA,
            results={"plutus": _consistent_result("plutus", log,
                                                  metadata_bytes=64)},
            object_path={"plutus": _consistent_result("plutus", log,
                                                      metadata_bytes=96)},
        )
        violations = check_run(run)
        assert "columnar-object-identity" in _names(violations)
        [message] = [
            str(v) for v in violations
            if v.invariant == "columnar-object-identity"
        ]
        assert "columnar vs object replay" in message

    def test_columnar_object_identity_passes_when_equal(self):
        log = _log()
        same = _consistent_result("plutus", log, metadata_bytes=64)
        run = MatrixRun(
            log=log, config=VOLTA,
            results={"plutus": same},
            object_path={"plutus": same},
        )
        assert check_run(run) == []


class TestClaimScoping:
    def _ordering_violation_run(self, claims_apply):
        log = _log()
        return MatrixRun(
            log=log, config=VOLTA,
            results={
                "pssm": _consistent_result("pssm", log, metadata_bytes=64),
                "plutus": _consistent_result("plutus", log,
                                             metadata_bytes=128),
            },
            claims_apply=claims_apply,
        )

    def test_claim_invariants_skipped_without_flag(self):
        run = self._ordering_violation_run(claims_apply=False)
        assert "plutus-leq-pssm" not in _names(check_run(run))

    def test_claim_invariants_enforced_with_flag(self):
        run = self._ordering_violation_run(claims_apply=True)
        assert "plutus-leq-pssm" in _names(check_run(run))

    def test_secure_metadata_presence_is_claim_scoped(self):
        log = _log()
        run = MatrixRun(
            log=log, config=VOLTA,
            results={"pssm": _consistent_result("pssm", log)},
            claims_apply=True,
        )
        assert "secure-metadata-present" in _names(check_run(run))


class TestRegistry:
    def test_invariant_names_unique(self):
        names = [inv.name for inv in INVARIANTS]
        assert len(names) == len(set(names))

    def test_universal_and_claim_invariants_both_declared(self):
        scopes = {inv.universal for inv in INVARIANTS}
        assert scopes == {True, False}
