"""Experiment execution context with caching.

All figure reproductions share the same expensive artifacts: benchmark
traces, their L2 event logs (one pass per trace regardless of how many
engines are compared), and per-engine simulation results. The
:class:`ExperimentContext` memoizes traces and logs twice — in memory
for the lifetime of one context, and content-hashed on disk (see
:mod:`repro.harness.diskcache`) so repeated sweeps across processes
skip trace generation and ``simulate_l2`` entirely. Replay results stay
in-memory only: they are cheap relative to the L2 pass and depend on
the engine design under study.

Engine design points are addressed by *keys* (e.g. ``"plutus"``,
``"pssm"``, ``"plutus:gran32"``) so experiments stay declarative and
results cache across figures. Every named factory is an
:class:`EngineSpec` — a picklable (class, kwargs) pair — so the same
key drives serial replay and the partition-sharded process pool
(``workers >= 2``) interchangeably.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.simulator import (
    EngineFactory,
    MemoryEventLog,
    SimulationResult,
    replay_events,
    simulate_l2,
)
from repro.harness.diskcache import DiskCache, content_digest
from repro.mem.traffic import TrafficCounter
from repro.metadata.compact import (
    DESIGN_2BIT,
    DESIGN_3BIT,
    DESIGN_3BIT_ADAPTIVE,
)
from repro.metadata.layout import GranularityDesign
from repro.obs import ObsConfig, ObsSession, activate
from repro.secure.common_counters import CommonCountersEngine
from repro.secure.engine import NoSecurityEngine, PartitionEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine
from repro.secure.recoverable import RecoverableEngine
from repro.secure.value_cache import ValueCacheConfig
from repro.workloads.benchmarks import benchmark_names, build_trace
from repro.workloads.trace import Trace

#: Default trace length; override with the REPRO_TRACE_LEN environment
#: variable (tests use small values, full runs larger ones).
DEFAULT_TRACE_LENGTH = int(os.environ.get("REPRO_TRACE_LEN", "30000"))


class EngineSpec:
    """A picklable engine factory: a design class plus constructor kwargs.

    Parallel replay ships factories into worker processes; lambdas
    cannot cross that boundary, specs can. Calling a spec builds one
    partition's engine exactly like the closures it replaces.
    """

    __slots__ = ("engine_cls", "kwargs")

    def __init__(self, engine_cls: Type[PartitionEngine], **kwargs) -> None:
        self.engine_cls = engine_cls
        self.kwargs = kwargs

    def __call__(
        self,
        partition_id: int,
        data_sectors: int,
        traffic: TrafficCounter,
    ) -> PartitionEngine:
        return self.engine_cls(
            partition_id, data_sectors, traffic, **self.kwargs
        )

    def __repr__(self) -> str:
        kwargs = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.kwargs.items())
        )
        suffix = f", {kwargs}" if kwargs else ""
        return f"EngineSpec({self.engine_cls.__name__}{suffix})"


def engine_factories() -> Dict[str, EngineFactory]:
    """The named design points every experiment draws from."""

    def plutus_variant(**kwargs) -> EngineSpec:
        return EngineSpec(PlutusEngine, **kwargs)

    factories: Dict[str, EngineFactory] = {
        "nosec": EngineSpec(NoSecurityEngine),
        "pssm": EngineSpec(PssmEngine),
        "pssm:4B-mac": EngineSpec(PssmEngine, mac_tag_bytes=4),
        "common-counters": EngineSpec(CommonCountersEngine),
        "plutus": plutus_variant(),
        # Fig. 15: value verification alone on the PSSM organization.
        "plutus:value-only": plutus_variant(
            design=GranularityDesign.BLOCK_128, compact_config=None
        ),
        # Fig. 16: the three granularity designs, nothing else enabled.
        "gran:128B": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=None,
        ),
        "gran:32B-leaf": plutus_variant(
            design=GranularityDesign.LEAF_32_TREE_128,
            value_cache_config=None,
            compact_config=None,
        ),
        "gran:32B-all": plutus_variant(
            design=GranularityDesign.ALL_32,
            value_cache_config=None,
            compact_config=None,
        ),
        # Fig. 17: the three compact-counter designs on PSSM granularity.
        "compact:2bit": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_2BIT,
        ),
        "compact:3bit": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_3BIT,
        ),
        "compact:adaptive": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=DESIGN_3BIT_ADAPTIVE,
        ),
        # Fig. 20: integrity-tree traffic eliminated (MGX/TNPU-style).
        "plutus:no-tree": plutus_variant(eliminate_tree=True),
        "pssm:no-tree": plutus_variant(
            design=GranularityDesign.BLOCK_128,
            value_cache_config=None,
            compact_config=None,
            eliminate_tree=True,
        ),
        # Ablations.
        "pssm:eager": EngineSpec(PssmEngine, lazy_update=False),
        # Crash-recoverable variant: PSSM traffic plus the persisted
        # metadata-log stream (see repro.secure.recoverable).
        "recoverable": EngineSpec(RecoverableEngine),
    }
    for entries in (64, 128, 256, 512, 1024):
        factories[f"plutus:vcache-{entries}"] = plutus_variant(
            value_cache_config=ValueCacheConfig(entries=entries)
        )
    for fraction in (0.0, 0.125, 0.25, 0.5):
        factories[f"plutus:pinned-{fraction}"] = plutus_variant(
            value_cache_config=ValueCacheConfig(pinned_fraction=fraction)
        )
    return factories


#: Backwards-compatible alias for the pre-observability private name.
_engine_factories = engine_factories


@dataclass
class ExperimentContext:
    """Caching runner shared by every experiment.

    When an enabled :class:`~repro.obs.ObsConfig` is supplied, every
    trace build, L2 pass, and engine replay executed through the context
    runs under one :class:`~repro.obs.ObsSession`, whose registry and
    tracer accumulate across runs (the ``profile`` subcommand drives a
    single run and exports them). The default config is disabled and
    changes nothing.

    ``workers`` selects the replay strategy (1 = serial reference path,
    ``None`` = one worker per core, >= 2 = partition-sharded process
    pool); results are byte-identical either way. ``shard_timeout``
    bounds each parallel shard's wall-clock seconds — a shard that
    exceeds it is retried serially in-process rather than hanging the
    sweep. ``cache_dir`` names the disk-cache root (``None`` = resolve
    from ``REPRO_CACHE_DIR``, default ``.cache``; empty string disables
    disk caching).
    """

    config: GpuConfig = VOLTA
    trace_length: int = DEFAULT_TRACE_LENGTH
    seed: int = 2023
    benchmarks: List[str] = field(default_factory=benchmark_names)
    obs: ObsConfig = field(default_factory=ObsConfig)
    workers: Optional[int] = 1
    shard_timeout: Optional[float] = None
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self._traces: Dict[str, Trace] = {}
        self._logs: Dict[str, MemoryEventLog] = {}
        self._results: Dict[str, SimulationResult] = {}
        self.factories = engine_factories()
        self.obs_session = ObsSession(self.obs)
        self.disk_cache = DiskCache.from_spec(self.cache_dir)

    def fingerprint(self) -> str:
        """Content hash of everything that shapes this context's results.

        Execution knobs (workers, shard timeout, cache location) are
        deliberately excluded: they change *how* results are computed,
        never *what* they are, so a journaled run may resume under a
        different worker count and still merge byte-identically.
        """
        return content_digest(
            "experiment-context",
            repr(self.config),
            str(self.trace_length),
            str(self.seed),
            ",".join(self.benchmarks),
        )

    def trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            trace = None
            key = None
            if self.disk_cache is not None:
                key = DiskCache.trace_key(
                    benchmark, self.trace_length, self.seed
                )
                trace = self.disk_cache.load_trace(key)
            if trace is None:
                with self.obs_session.phase("build_trace", benchmark=benchmark):
                    trace = build_trace(
                        benchmark, length=self.trace_length, seed=self.seed
                    )
                if self.disk_cache is not None and key is not None:
                    self.disk_cache.store_trace(key, trace)
            else:
                # A disk-cache hit skips trace generation; emit the phase
                # (near-zero, tagged cached) so metrics stay complete.
                with self.obs_session.phase(
                    "build_trace", benchmark=benchmark, cached=True
                ):
                    pass
            self._traces[benchmark] = trace
        return self._traces[benchmark]

    def event_log(self, benchmark: str) -> MemoryEventLog:
        if benchmark not in self._logs:
            trace = self.trace(benchmark)
            log = None
            key = None
            if self.disk_cache is not None:
                key = DiskCache.event_log_key(trace, self.config)
                log = self.disk_cache.load_event_log(key)
            if log is None:
                with activate(self.obs_session):
                    log = simulate_l2(trace, self.config)
                if self.disk_cache is not None and key is not None:
                    self.disk_cache.store_event_log(key, log)
            else:
                # A cache hit skips simulate_l2, so restore the phase span
                # and gauges the live pass would have set for the profile
                # dashboard.
                with self.obs_session.phase(
                    "simulate_l2", trace=trace.name, cached=True
                ):
                    pass
                if self.obs.metrics_active:
                    registry = self.obs_session.registry
                    registry.gauge("l2.sector_hit_rate").set(
                        log.l2_stats.sector_hit_rate
                    )
                    registry.gauge("l2.dram_events").set(len(log.events))
            self._logs[benchmark] = log
        return self._logs[benchmark]

    def run(self, benchmark: str, engine_key: str) -> SimulationResult:
        """Simulate one (benchmark, engine) pair, memoized."""
        cache_key = f"{benchmark}|{engine_key}"
        if cache_key not in self._results:
            factory = self.factories.get(engine_key)
            if factory is None:
                raise KeyError(
                    f"unknown engine {engine_key!r}; known: "
                    f"{sorted(self.factories)}"
                )
            log = self.event_log(benchmark)
            with activate(self.obs_session):
                self._results[cache_key] = replay_events(
                    log,
                    factory,
                    self.config,
                    workers=self.workers,
                    shard_timeout=self.shard_timeout,
                )
        return self._results[cache_key]

    def run_custom(
        self,
        benchmark: str,
        key: str,
        factory: EngineFactory,
    ) -> SimulationResult:
        """Simulate with an ad-hoc engine factory, memoized under *key*."""
        cache_key = f"{benchmark}|{key}"
        if cache_key not in self._results:
            log = self.event_log(benchmark)
            with activate(self.obs_session):
                self._results[cache_key] = replay_events(
                    log,
                    factory,
                    self.config,
                    workers=self.workers,
                    shard_timeout=self.shard_timeout,
                )
        return self._results[cache_key]
