"""Tests for deterministic RNG streams."""

import numpy as np
import pytest

from repro.common.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngStream(42).integers(0, 1000, size=32)
        b = RngStream(42).integers(0, 1000, size=32)
        assert np.array_equal(a, b)

    def test_different_seed_different_draws(self):
        a = RngStream(42).integers(0, 10**9, size=32)
        b = RngStream(43).integers(0, 10**9, size=32)
        assert not np.array_equal(a, b)

    def test_bytes_deterministic(self):
        assert RngStream(9).bytes(64) == RngStream(9).bytes(64)


class TestChildStreams:
    def test_children_are_independent_of_sibling_consumption(self):
        root_a = RngStream(7)
        draws_before = root_a.child("b").integers(0, 100, size=8)

        root_b = RngStream(7)
        root_b.child("a").integers(0, 100, size=1000)  # heavy sibling use
        draws_after = root_b.child("b").integers(0, 100, size=8)
        assert np.array_equal(draws_before, draws_after)

    def test_children_with_different_names_differ(self):
        root = RngStream(7)
        a = root.child("a").integers(0, 10**9, size=16)
        b = root.child("b").integers(0, 10**9, size=16)
        assert not np.array_equal(a, b)

    def test_nested_children_are_stable(self):
        x = RngStream(5).child("p").child("q").random(4)
        y = RngStream(5).child("p").child("q").random(4)
        assert np.array_equal(x, y)


class TestDistributions:
    def test_integers_range(self):
        draws = RngStream(1).integers(10, 20, size=1000)
        assert draws.min() >= 10 and draws.max() < 20

    def test_random_unit_interval(self):
        draws = RngStream(1).random(1000)
        assert draws.min() >= 0.0 and draws.max() < 1.0

    def test_zipf_bounded_range_and_skew(self):
        draws = RngStream(1).zipf_bounded(1.2, 1000, size=20000)
        assert draws.min() >= 0 and draws.max() < 1000
        # Rank 0 must be the most popular under a Zipf law.
        counts = np.bincount(draws, minlength=1000)
        assert counts[0] == counts.max()
        assert counts[0] > 5 * max(counts[500], 1)

    def test_zipf_bounded_rejects_empty_support(self):
        with pytest.raises(ValueError):
            RngStream(1).zipf_bounded(1.0, 0, size=10)

    def test_shuffle_permutes_in_place(self):
        array = np.arange(100)
        RngStream(1).shuffle(array)
        assert sorted(array.tolist()) == list(range(100))
        assert not np.array_equal(array, np.arange(100))
