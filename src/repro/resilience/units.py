"""Content-addressed work units and campaigns.

A *work unit* is the supervisor's atom of progress: a pure-ish callable
(the runner) plus the JSON-able parameters that define its identity.
The unit id is a content hash over kind and canonicalized parameters —
the same :func:`~repro.common.digest.content_digest` primitive the
disk cache keys artifacts with — so that a resumed run recognizes
exactly the units of the original run, regardless of process, order,
or machine.

A *campaign* is an ordered unit list with a fingerprint hashed over
the campaign name and every unit id. The journal records the
fingerprint at run start; ``--resume`` refuses a journal whose
fingerprint differs, which is what keeps "resume" from silently
merging results of a differently parameterized run.

Runner return values must be JSON round-trippable: the supervisor
normalizes every result through ``json.dumps``/``json.loads`` so a
value read back from the journal is *identical* to one computed fresh
— the property behind byte-identical resumed reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.digest import content_digest
from repro.common.errors import ResilienceError


def canonical_params(params: Dict[str, object]) -> str:
    """Key-sorted, whitespace-free JSON naming a unit's identity."""
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ResilienceError(
            f"work-unit params are not JSON-able: {exc}"
        ) from None


def json_roundtrip(payload: object) -> object:
    """Normalize a runner result through JSON.

    Raises :class:`ResilienceError` for non-JSON-able payloads (the
    journal could not persist them). Dict key *order* is preserved —
    canonicalization is for identity, results keep their shape.
    """
    try:
        return json.loads(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise ResilienceError(
            f"work-unit result is not JSON-able: {exc}"
        ) from None


@dataclass
class WorkUnit:
    """One supervised unit: identity params plus the runner callable.

    ``params`` define the unit id; the runner does not (two campaigns
    computing the same cell share completed work through the journal).
    ``label`` is the human name used in reports and trace events.
    """

    kind: str
    params: Dict[str, object]
    runner: Optional[Callable[[], object]] = None
    label: str = ""
    unit_id: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.kind
        self.unit_id = content_digest(
            "unit", self.kind, canonical_params(self.params)
        )

    def execute(self) -> object:
        """Run the unit and return its JSON-normalized result payload."""
        if self.runner is None:
            raise ResilienceError(
                f"work unit {self.label!r} has no runner attached"
            )
        return json_roundtrip(self.runner())


def campaign_fingerprint(name: str, units: "List[WorkUnit]") -> str:
    """Content hash over the campaign name and every unit id, in order."""
    return content_digest("campaign", name, *(u.unit_id for u in units))


@dataclass
class Campaign:
    """An ordered, fingerprinted unit list for one supervised run."""

    name: str
    units: List[WorkUnit]
    fingerprint: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.units:
            raise ResilienceError(f"campaign {self.name!r} has no units")
        seen: Dict[str, str] = {}
        for unit in self.units:
            other = seen.get(unit.unit_id)
            if other is not None:
                raise ResilienceError(
                    f"campaign {self.name!r} has duplicate unit id for "
                    f"{unit.label!r} and {other!r}"
                )
            seen[unit.unit_id] = unit.label
        self.fingerprint = campaign_fingerprint(self.name, self.units)

    @property
    def default_run_id(self) -> str:
        """The content-addressed run id used when none is given."""
        return self.fingerprint[:12]
