"""Verification-latency accounting and the TLP-tolerance argument.

The paper repeatedly leans on one architectural claim: GPUs tolerate
*latency* (thread-level parallelism hides it) but not *bandwidth*, so
Plutus may serialize value verification after decryption (Section IV-C
"Although this could introduce some serialization ... GPUs can hide such
latency") and even use direct AES-XTS instead of latency-hiding
counter mode. This module quantifies both sides:

* per-fill verification latency under each design — counter fetch +
  tree walk + AES + MAC-or-value-check, using the Table II unit
  latencies and the measured per-fill metadata fetch counts;
* the warp-parallelism needed to hide that latency (Little's law:
  concurrency = latency x throughput), compared with what 80 SMs of
  resident warps actually provide.

The punchline the numbers show: even Plutus's serialized check needs
only a few hundred in-flight warps to hide — far below the tens of
thousands a Volta-class GPU keeps resident — while the *bandwidth* cost
it removes cannot be hidden by any amount of parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.simulator import SimulationResult
from repro.mem.traffic import Stream


@dataclass(frozen=True)
class LatencyParams:
    """Unit latencies in core cycles (Table II plus DRAM access)."""

    dram_access_cycles: int = 350
    mac_cycles: int = 40
    aes_cycles: int = 40          # pipelined: full depth on first block
    value_check_cycles: int = 4   # 8 parallel CAM probes + vote
    metadata_cache_cycles: int = 2


@dataclass(frozen=True)
class LatencyEstimate:
    """Average added verification latency per data fill, by component."""

    engine_name: str
    counter_cycles: float
    tree_cycles: float
    decrypt_cycles: float
    integrity_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.counter_cycles
            + self.tree_cycles
            + self.decrypt_cycles
            + self.integrity_cycles
        )

    def warps_to_hide(self, issue_width: int = 1) -> float:
        """Little's law: concurrent warps needed to keep issue busy.

        One extra warp of work hides one access worth of latency; a
        latency of L cycles at an issue rate of ``issue_width`` per
        cycle needs ~L x issue_width independent warps in flight.
        """
        return self.total_cycles * issue_width


def estimate_fill_latency(
    result: SimulationResult,
    params: LatencyParams = LatencyParams(),
) -> LatencyEstimate:
    """Average added latency per fill from the measured fetch counts.

    Counter and tree latencies are charged only for the fills that
    actually missed on-chip metadata (the measured miss counts); AES is
    charged always (data must be decrypted); the integrity step is a
    MAC for conventional fills and the value check for value-verified
    ones.
    """
    stats = result.engine_stats
    fills = max(stats.fills, 1)

    # Each counter fetch costs one DRAM access; cached counters cost an
    # SRAM lookup. Compact double accesses pay twice.
    counter_fetches = stats.counter_fetches
    counter = (
        counter_fetches * params.dram_access_cycles
        + stats.compact_double_accesses * params.dram_access_cycles
        + fills * params.metadata_cache_cycles
    ) / fills

    # Tree-node fetches from the traffic report (32 B per transaction).
    tree_transactions = result.traffic.transactions_by_stream.get(
        Stream.BMT_READ, 0
    ) + result.traffic.transactions_by_stream.get(Stream.COMPACT_BMT_READ, 0)
    tree = tree_transactions * params.dram_access_cycles / fills

    decrypt = float(params.aes_cycles)

    value_checked = stats.value_verified_fills + stats.value_check_failures
    mac_checked = fills - stats.mac_fetches_avoided
    integrity = (
        value_checked * params.value_check_cycles
        + mac_checked * params.mac_cycles
    ) / fills

    return LatencyEstimate(
        engine_name=result.engine_name,
        counter_cycles=counter,
        tree_cycles=tree,
        decrypt_cycles=decrypt,
        integrity_cycles=integrity,
    )


def resident_warps(config: GpuConfig = VOLTA, warps_per_sm: int = 64) -> int:
    """Warps a Volta-class GPU keeps resident (64 per SM x 80 SMs)."""
    return config.num_sms * warps_per_sm


def latency_is_hidden(
    estimate: LatencyEstimate, config: GpuConfig = VOLTA
) -> bool:
    """The paper's tolerance claim, as a checkable predicate."""
    return estimate.warps_to_hide() < resident_warps(config)
