"""Tests for the harness CLI (python -m repro.harness)."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_runs_selected_experiment(self, capsys):
        rc = main(["eq1", "--length", "500", "--benchmarks", "bfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "eq1" in out
        assert "hits_required" in out

    def test_runs_multiple_experiments(self, capsys):
        rc = main(["fig10", "eq1", "--length", "500", "--benchmarks", "bfs"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "eq1" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["eq1", "--benchmarks", "doom"])

    def test_benchmark_restriction_applies(self, capsys):
        rc = main(["fig10", "--length", "400", "--benchmarks", "lbm"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lbm" in out
        assert "bfs" not in out
