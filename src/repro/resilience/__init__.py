"""Resilient campaign execution: journaled resume, retries, budgets, chaos.

The subsystem decomposes any multi-unit run — parameter sweeps, paper
experiments, fault campaigns, conformance fuzzing — into
content-addressed :class:`WorkUnit` s and executes them under a
:class:`Supervisor` that retries transient failures, journals every
outcome durably, honors resource budgets by degrading gracefully, and
can sabotage itself on demand (:mod:`repro.resilience.chaos`) to prove
all of the above works.

Distributed execution (:mod:`repro.resilience.distributed`) scales the
same contract across worker subprocesses: a shared lease-based
:class:`WorkQueue` (:mod:`repro.resilience.queue`), per-worker
journals merged deterministically back into the campaign journal, dead
workers detected by heartbeat and their units stolen, stragglers
speculatively duplicated.
"""

from repro.resilience.budget import (
    REASON_RSS,
    REASON_TRACEMALLOC,
    REASON_WALL_CLOCK,
    BudgetGuard,
    ResourceBudget,
    current_rss_mb,
)
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosKill,
    ChaosMonkey,
    WorkerChaos,
    WorkerChaosConfig,
)
from repro.resilience.distributed import (
    DistributedConfig,
    DistributedSupervisor,
    build_campaign,
    demo_campaign,
    factory_spec,
    merge_records,
    read_worker_journals,
)
from repro.resilience.journal import JOURNAL_SCHEMA, RunJournal, journal_path
from repro.resilience.queue import (
    DEFAULT_LEASE_TTL_S,
    LEASE_SCHEMA,
    Lease,
    WorkQueue,
    queue_progress,
)
from repro.resilience.policy import (
    RETRYABLE,
    FailureClass,
    RetryPolicy,
    classify_failure,
)
from repro.resilience.report import missing_cell_lines, render_outcome
from repro.resilience.telemetry import (
    UnitTelemetry,
    render_campaign_telemetry,
    rollup,
)
from repro.resilience.supervisor import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CampaignOutcome,
    Supervisor,
    UnitOutcome,
)
from repro.resilience.units import (
    Campaign,
    WorkUnit,
    campaign_fingerprint,
    canonical_params,
    json_roundtrip,
)

__all__ = [
    "BudgetGuard",
    "Campaign",
    "CampaignOutcome",
    "ChaosConfig",
    "ChaosKill",
    "ChaosMonkey",
    "DEFAULT_LEASE_TTL_S",
    "DistributedConfig",
    "DistributedSupervisor",
    "FailureClass",
    "JOURNAL_SCHEMA",
    "LEASE_SCHEMA",
    "Lease",
    "REASON_RSS",
    "REASON_TRACEMALLOC",
    "REASON_WALL_CLOCK",
    "RETRYABLE",
    "ResourceBudget",
    "RetryPolicy",
    "RunJournal",
    "STATUS_CANCELLED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "Supervisor",
    "UnitOutcome",
    "UnitTelemetry",
    "WorkQueue",
    "WorkUnit",
    "WorkerChaos",
    "WorkerChaosConfig",
    "build_campaign",
    "render_campaign_telemetry",
    "rollup",
    "campaign_fingerprint",
    "canonical_params",
    "classify_failure",
    "current_rss_mb",
    "demo_campaign",
    "factory_spec",
    "journal_path",
    "json_roundtrip",
    "merge_records",
    "missing_cell_lines",
    "queue_progress",
    "read_worker_journals",
    "render_outcome",
]
