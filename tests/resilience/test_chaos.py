"""Seeded chaos mode: deterministic sabotage of unit attempts."""

import pytest

from repro.common.errors import ResilienceError
from repro.resilience import ChaosConfig, ChaosKill, ChaosMonkey


def outcome_of(monkey, unit_id, attempt):
    """What one strike did: 'kill', 'oom', or 'pass' (maybe delayed)."""
    try:
        monkey.strike(unit_id, attempt)
    except ChaosKill:
        return "kill"
    except MemoryError:
        return "oom"
    return "pass"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_prob": 1.5},
            {"delay_prob": -0.1},
            {"oom_prob": 2.0},
            {"max_delay_s": -1.0},
            {"oom_bytes": -1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            ChaosConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_strike_sequence(self):
        config = ChaosConfig(seed=7, kill_prob=0.4, oom_prob=0.2,
                             delay_prob=0.0)
        a = ChaosMonkey(config, sleep=lambda _t: None)
        b = ChaosMonkey(config, sleep=lambda _t: None)
        plan = [(f"unit-{i}", attempt) for i in range(20) for attempt in (1, 2)]
        seq_a = [outcome_of(a, uid, att) for uid, att in plan]
        seq_b = [outcome_of(b, uid, att) for uid, att in plan]
        assert seq_a == seq_b
        assert (a.kills, a.delays, a.ooms) == (b.kills, b.delays, b.ooms)

    def test_attempt_number_changes_the_draw(self):
        # A killed attempt can legitimately succeed on retry: the
        # attempt index is part of the RNG stream key.
        config = ChaosConfig(seed=7, kill_prob=0.5, delay_prob=0.0,
                             oom_prob=0.0)
        monkey = ChaosMonkey(config)
        outcomes = {
            outcome_of(monkey, "unit-x", attempt) for attempt in range(1, 30)
        }
        assert outcomes == {"kill", "pass"}

    def test_seed_changes_the_sequence(self):
        plan = [(f"unit-{i}", 1) for i in range(40)]
        seq = {}
        for seed in (1, 2):
            monkey = ChaosMonkey(
                ChaosConfig(seed=seed, kill_prob=0.5, delay_prob=0.0,
                            oom_prob=0.0)
            )
            seq[seed] = [outcome_of(monkey, uid, att) for uid, att in plan]
        assert seq[1] != seq[2]


class TestStrikes:
    def test_certain_kill(self):
        monkey = ChaosMonkey(ChaosConfig(kill_prob=1.0))
        with pytest.raises(ChaosKill):
            monkey.strike("unit", 1)
        assert monkey.kills == 1
        assert monkey.strikes == 1

    def test_certain_oom(self):
        monkey = ChaosMonkey(
            ChaosConfig(kill_prob=0.0, delay_prob=0.0, oom_prob=1.0,
                        oom_bytes=1 << 16)
        )
        with pytest.raises(MemoryError, match="chaos: simulated OOM"):
            monkey.strike("unit", 1)
        assert monkey.ooms == 1

    def test_certain_delay_uses_injected_sleep(self):
        slept = []
        monkey = ChaosMonkey(
            ChaosConfig(kill_prob=0.0, delay_prob=1.0, oom_prob=0.0,
                        max_delay_s=0.5),
            sleep=slept.append,
        )
        monkey.strike("unit", 1)
        assert monkey.delays == 1
        assert len(slept) == 1
        assert 0.0 <= slept[0] <= 0.5

    def test_zero_probabilities_never_strike(self):
        monkey = ChaosMonkey(
            ChaosConfig(kill_prob=0.0, delay_prob=0.0, oom_prob=0.0)
        )
        for i in range(50):
            monkey.strike(f"unit-{i}", 1)
        assert monkey.strikes == 0


class TestWorkerChaos:
    def make(self, kills, sleeps, seed=7, incarnation=0, **cfg):
        from repro.resilience import WorkerChaos, WorkerChaosConfig

        cfg.setdefault("kill_prob", 0.5)
        cfg.setdefault("freeze_prob", 0.5)
        return WorkerChaos(
            WorkerChaosConfig(seed=seed, **cfg),
            worker_id="w0",
            incarnation=incarnation,
            sleep=sleeps.append,
            kill=lambda: kills.append(True),
        )

    def test_config_rejects_bad_probabilities(self):
        from repro.resilience import WorkerChaosConfig

        with pytest.raises(ResilienceError):
            WorkerChaosConfig(kill_prob=1.5)
        with pytest.raises(ResilienceError):
            WorkerChaosConfig(freeze_prob=-0.1)

    def test_draws_are_pure_over_seed_worker_incarnation_unit(self):
        kills, sleeps = [], []
        chaos = self.make(kills, sleeps)
        schedule = [chaos.draws(f"unit-{i}") for i in range(64)]
        again = self.make([], [])
        assert [again.draws(f"unit-{i}") for i in range(64)] == schedule
        assert any(kill for kill, _freeze in schedule)
        assert any(freeze for _kill, freeze in schedule)

    def test_incarnation_reshuffles_the_schedule(self):
        # A respawned worker must not deterministically die at the
        # same unit forever: bumping the incarnation changes draws.
        base = self.make([], [])
        respawned = self.make([], [], incarnation=1)
        units = [f"unit-{i}" for i in range(64)]
        assert [base.draws(u) for u in units] != [
            respawned.draws(u) for u in units
        ]

    def test_strike_uses_injected_kill_and_sleep(self):
        kills, sleeps = [], []
        chaos = self.make(kills, sleeps, freeze_s=1.25)
        unit_kill = next(
            f"unit-{i}" for i in range(256)
            if chaos.draws(f"unit-{i}") == (True, False)
        )
        unit_freeze = next(
            f"unit-{i}" for i in range(256)
            if chaos.draws(f"unit-{i}") == (False, True)
        )
        unit_calm = next(
            f"unit-{i}" for i in range(256)
            if chaos.draws(f"unit-{i}") == (False, False)
        )
        chaos.strike(unit_calm)
        assert (kills, sleeps) == ([], [])
        chaos.strike(unit_kill)
        assert kills == [True]
        chaos.strike(unit_freeze)
        assert sleeps == [1.25]
        assert chaos.freezes == 1
