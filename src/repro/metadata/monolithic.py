"""Monolithic encryption counters (SGX-style).

The contrast case to split counters: one wide counter per protected
block, grouped eight to a cache line (Intel SGX uses 56-bit counters over
64-byte blocks). Kept in the library for the counter-organization
comparison tests and the storage-overhead analysis; neither PSSM nor
Plutus uses it in the headline experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigurationError, CounterOverflowError


@dataclass(frozen=True)
class MonolithicCounterConfig:
    """Geometry of the monolithic organization."""

    counter_bits: int = 56
    counters_per_block: int = 8

    def __post_init__(self) -> None:
        if self.counter_bits <= 0 or self.counters_per_block <= 0:
            raise ConfigurationError("counter geometry must be positive")

    @property
    def block_bytes(self) -> int:
        """Storage of one counter block (counters padded to bytes)."""
        bits = self.counter_bits * self.counters_per_block
        return (bits + 7) // 8

    @property
    def limit(self) -> int:
        return 1 << self.counter_bits


class MonolithicCounterStore:
    """Sparse per-sector monolithic counters."""

    def __init__(
        self, config: MonolithicCounterConfig = MonolithicCounterConfig()
    ) -> None:
        self.config = config
        self._counters: Dict[int, int] = {}

    def value(self, sector_index: int) -> int:
        if sector_index < 0:
            raise ValueError("sector index must be non-negative")
        return self._counters.get(sector_index, 0)

    def combined(self, sector_index: int) -> int:
        """Tweak value; identical to :meth:`value` for monolithic counters."""
        return self.value(sector_index)

    def increment(self, sector_index: int) -> int:
        """Advance a sector's counter, raising when the width is exhausted."""
        value = self.value(sector_index) + 1
        if value >= self.config.limit:
            raise CounterOverflowError(
                f"monolithic counter exhausted for sector {sector_index}"
            )
        self._counters[sector_index] = value
        return value

    def block_of(self, sector_index: int) -> int:
        """Counter-block number holding this sector's counter."""
        return sector_index // self.config.counters_per_block

    def storage_bytes_for(self, num_sectors: int) -> int:
        """Total counter storage needed to cover *num_sectors*."""
        blocks = (num_sectors + self.config.counters_per_block - 1) // (
            self.config.counters_per_block
        )
        return blocks * self.config.block_bytes
