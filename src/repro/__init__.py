"""Plutus: bandwidth-efficient memory security for GPUs (HPCA 2023).

A full reproduction of the paper's system and evaluation:

* :mod:`repro.crypto` — from-scratch AES/XTS/CME/SHA-256/MACs;
* :mod:`repro.mem` — sectored caches, address map, DRAM, traffic;
* :mod:`repro.metadata` — split/compact counters, BMT, ToC, layouts;
* :mod:`repro.core` (= :mod:`repro.secure`) — PSSM / common-counters /
  Plutus engines plus a functional (really-encrypted, attackable)
  secure memory;
* :mod:`repro.gpu` — trace-driven simulator and performance model;
* :mod:`repro.workloads` — calibrated synthetic benchmark suite;
* :mod:`repro.analysis` — Eq. 1 forgery analysis, security, power;
* :mod:`repro.harness` — one runner per paper table/figure.

Quick start::

    from repro import quick_comparison
    print(quick_comparison("bfs"))
"""

from repro.gpu.config import VOLTA, GpuConfig
from repro.gpu.perf_model import normalized_ipc
from repro.gpu.simulator import replay_events, simulate, simulate_l2
from repro.secure.functional import SecureMemory
from repro.workloads.benchmarks import benchmark_names, build_trace

__version__ = "1.0.0"


def quick_comparison(benchmark: str = "bfs", length: int = 20000) -> str:
    """One-call demo: PSSM vs Plutus on one benchmark.

    Returns a small text report with normalized IPC and metadata-traffic
    reduction — the paper's two headline metrics.
    """
    from repro.harness.runner import ExperimentContext

    ctx = ExperimentContext(trace_length=length, benchmarks=[benchmark])
    base = ctx.run(benchmark, "nosec")
    pssm = ctx.run(benchmark, "pssm")
    plutus = ctx.run(benchmark, "plutus")
    ipc_pssm = normalized_ipc(pssm, base)
    ipc_plutus = normalized_ipc(plutus, base)
    reduction = plutus.traffic.metadata_reduction_vs(pssm.traffic)
    return (
        f"{benchmark}: IPC (vs no security) PSSM={ipc_pssm:.3f} "
        f"Plutus={ipc_plutus:.3f} "
        f"(+{(ipc_plutus / ipc_pssm - 1) * 100:.1f}%), "
        f"metadata traffic -{reduction * 100:.1f}%"
    )


__all__ = [
    "GpuConfig",
    "SecureMemory",
    "VOLTA",
    "benchmark_names",
    "build_trace",
    "normalized_ipc",
    "quick_comparison",
    "replay_events",
    "simulate",
    "simulate_l2",
    "__version__",
]
