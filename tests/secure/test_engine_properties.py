"""Property-based tests over the security engines (hypothesis).

Random fill/writeback streams through every engine design must never
crash, must account traffic consistently, and must preserve the
cross-engine invariants the experiment methodology depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.traffic import Stream, TrafficCounter
from repro.metadata.layout import GranularityDesign
from repro.secure.common_counters import CommonCountersEngine
from repro.secure.engine import NoSecurityEngine
from repro.secure.plutus import PlutusEngine
from repro.secure.pssm import PssmEngine

SECTORS = 1 << 18

ENGINE_FACTORIES = [
    lambda t: NoSecurityEngine(0, SECTORS, t),
    lambda t: PssmEngine(0, SECTORS, t),
    lambda t: CommonCountersEngine(0, SECTORS, t),
    lambda t: PlutusEngine(0, SECTORS, t),
    lambda t: PlutusEngine(0, SECTORS, t, design=GranularityDesign.BLOCK_128,
                           compact_config=None),
]

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SECTORS - 1),  # sector
        st.booleans(),                                    # is writeback
        st.one_of(st.none(), st.binary(min_size=32, max_size=32)),
    ),
    min_size=1,
    max_size=120,
)


def run_stream(factory, stream):
    traffic = TrafficCounter()
    engine = factory(traffic)
    for sector, is_writeback, values in stream:
        if is_writeback:
            engine.on_writeback(sector, values)
        else:
            engine.on_fill(sector, values)
    engine.finalize()
    return engine, traffic.report()


@settings(max_examples=25, deadline=None)
@given(stream=events, index=st.integers(min_value=0,
                                        max_value=len(ENGINE_FACTORIES) - 1))
def test_any_stream_runs_to_completion(stream, index):
    engine, report = run_stream(ENGINE_FACTORIES[index], stream)
    fills = sum(1 for _s, w, _v in stream if not w)
    writebacks = len(stream) - fills
    assert engine.stats.fills == fills
    assert engine.stats.writebacks == writebacks
    assert report.total_bytes >= 0


@settings(max_examples=25, deadline=None)
@given(stream=events)
def test_bytes_always_match_transactions(stream):
    """Every stream's bytes are exactly 32 B per transaction."""
    for factory in ENGINE_FACTORIES:
        _engine, report = run_stream(factory, stream)
        for s in Stream:
            assert report.bytes_by_stream[s] == (
                32 * report.transactions_by_stream[s]
            ), s


@settings(max_examples=25, deadline=None)
@given(stream=events)
def test_engines_are_deterministic(stream):
    for factory in ENGINE_FACTORIES:
        _a, report_a = run_stream(factory, stream)
        _b, report_b = run_stream(factory, stream)
        assert report_a.bytes_by_stream == report_b.bytes_by_stream


@settings(max_examples=25, deadline=None)
@given(stream=events)
def test_plutus_metadata_never_exceeds_pssm_by_much(stream):
    """Plutus may add mirror-layer traffic on pathological streams, but
    it must never blow up unboundedly relative to the baseline."""
    _p, pssm = run_stream(lambda t: PssmEngine(0, SECTORS, t), stream)
    _q, plutus = run_stream(lambda t: PlutusEngine(0, SECTORS, t), stream)
    assert plutus.metadata_bytes <= 2 * pssm.metadata_bytes + 4096


@settings(max_examples=25, deadline=None)
@given(stream=events)
def test_value_rich_streams_cut_mac_traffic(stream):
    """If every event carries the same hot sector image, Plutus must
    avoid at least as many MAC fetches as PSSM performs for them."""
    hot = b"\x42\x00\x00\x10" * 8
    hot_stream = [(s, w, hot) for s, w, _v in stream]
    _p, pssm = run_stream(lambda t: PssmEngine(0, SECTORS, t), hot_stream)
    _q, plutus = run_stream(lambda t: PlutusEngine(0, SECTORS, t), hot_stream)
    assert plutus.mac_bytes <= pssm.mac_bytes
