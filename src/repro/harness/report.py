"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper's figures plot, as
aligned ASCII tables plus simple horizontal bars for the headline series
— good enough to eyeball who wins and by what factor, with no plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.harness.experiments import ExperimentResult

_BAR_WIDTH = 40


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render records as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered))
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered
    )
    return "\n".join([header, rule, body])


def format_bars(series: Mapping[str, float], reference: float = 1.0) -> str:
    """Horizontal bars for a keyed series (e.g. speedup per benchmark)."""
    if not series:
        return "(no data)"
    peak = max(max(series.values()), reference, 1e-9)
    lines = []
    label_width = max(len(k) for k in series)
    for key, value in series.items():
        bar = "#" * max(1, int(round(_BAR_WIDTH * value / peak)))
        lines.append(f"{key.ljust(label_width)}  {value:7.4f}  {bar}")
    return "\n".join(lines)


def render_experiment(result: ExperimentResult) -> str:
    """Full text report for one experiment."""
    parts = [
        f"== {result.experiment_id}: {result.title} ==",
        format_table(result.rows),
    ]
    if result.summary:
        summary = ", ".join(
            f"{k}={_format_value(v)}" for k, v in result.summary.items()
        )
        parts.append(f"summary: {summary}")
    if result.paper_reference:
        reference = ", ".join(
            f"{k}={_format_value(v)}" for k, v in result.paper_reference.items()
        )
        parts.append(f"paper:   {reference}")
    if result.notes:
        parts.append(f"notes:   {result.notes}")
    return "\n".join(parts) + "\n"


def render_all(results: Dict[str, ExperimentResult]) -> str:
    """Concatenate the reports of a full experiment suite."""
    return "\n".join(render_experiment(r) for r in results.values())
