"""Fig. 10: read/write memory-request breakdown per benchmark.

Paper shape: most GPU benchmarks are read-dominated; LBM is the
write-heavy outlier.
"""

from conftest import run_once

from repro.harness.experiments import run_fig10
from repro.harness.report import render_experiment


def test_fig10_rw_breakdown(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig10(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    reads = {r["benchmark"]: r["read_fraction"] for r in result.rows}
    assert sum(1 for v in reads.values() if v > 0.66) >= 10
    assert reads["lbm"] == min(reads.values())
