"""Functional MAC storage for protected sectors.

Holds the truncated per-sector tags the functional engines compare
against, playing the role of the MAC region in DRAM. Like
:class:`repro.mem.backing.BackingStore` it is untrusted: the attack
harness can overwrite tags to emulate splicing, and the engine is
expected to catch the mismatch.
"""

from __future__ import annotations

from typing import Dict

from repro.crypto.mac import MacAlgorithm


class MacStore:
    """Sparse map of sector index -> stored truncated tag."""

    def __init__(self, algorithm: MacAlgorithm) -> None:
        self.algorithm = algorithm
        self._tags: Dict[int, bytes] = {}

    def update(self, sector_index: int, data: bytes, address: int, counter: int) -> bytes:
        """Recompute and store the tag for freshly written sector data."""
        tag = self.algorithm.compute(data, address=address, counter=counter)
        self._tags[sector_index] = tag
        return tag

    def stored_tag(self, sector_index: int) -> bytes:
        """Stored tag (all-zero for never-written sectors)."""
        return self._tags.get(sector_index, b"\x00" * self.algorithm.tag_bytes)

    def verify(
        self, sector_index: int, data: bytes, address: int, counter: int
    ) -> bool:
        """Check sector data against the stored tag."""
        return self.algorithm.verify(
            data, self.stored_tag(sector_index), address=address, counter=counter
        )

    def corrupt(self, sector_index: int, tag: bytes) -> None:
        """Attacker primitive: replace a stored tag."""
        if len(tag) != self.algorithm.tag_bytes:
            raise ValueError("tag length mismatch")
        self._tags[sector_index] = tag

    def splice(self, dst_sector: int, src_sector: int) -> None:
        """Attacker primitive: move a valid tag to a different sector."""
        self._tags[dst_sector] = self.stored_tag(src_sector)

    @property
    def stored_count(self) -> int:
        return len(self._tags)
