"""Trace records: the interface between workloads and the simulator.

A trace is a sequence of coalesced L2 accesses. Each access names a
128-byte line, a mask of touched 32-byte sectors, a direction, and — for
the sectors it touches — the 32-byte value images the access observes
(reads) or produces (writes). Values are what drive Plutus's value
cache; traces without values (``values=None``) still exercise every
non-value mechanism.

Records use ``__slots__`` because traces run to hundreds of thousands of
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.common.bitops import popcount
from repro.common.errors import TraceError

#: Per-sector payload: (sector slot within the line, 32-byte image).
SectorValues = Tuple[int, bytes]


class TraceAccess:
    """One coalesced memory access issued to the L2."""

    __slots__ = ("line_addr", "sector_mask", "write", "values")

    def __init__(
        self,
        line_addr: int,
        sector_mask: int,
        write: bool,
        values: Optional[Sequence[SectorValues]] = None,
    ) -> None:
        if line_addr < 0 or line_addr % 128 != 0:
            raise TraceError(f"line address {line_addr:#x} not 128B aligned")
        if not 0 < sector_mask < 16:
            raise TraceError(f"sector mask {sector_mask:#06b} out of range")
        if values is not None:
            for slot, image in values:
                if not (sector_mask >> slot) & 1:
                    raise TraceError(f"values given for unselected sector {slot}")
                if len(image) != 32:
                    raise TraceError("sector image must be 32 bytes")
        self.line_addr = line_addr
        self.sector_mask = sector_mask
        self.write = bool(write)
        self.values = tuple(values) if values is not None else None

    @property
    def sector_count(self) -> int:
        return popcount(self.sector_mask)

    def sectors(self) -> Iterable[int]:
        """Yield the selected sector slots (0..3)."""
        for slot in range(4):
            if (self.sector_mask >> slot) & 1:
                yield slot

    def value_for(self, slot: int) -> Optional[bytes]:
        if self.values is None:
            return None
        for s, image in self.values:
            if s == slot:
                return image
        return None

    def __repr__(self) -> str:
        kind = "W" if self.write else "R"
        return (
            f"TraceAccess({kind} {self.line_addr:#x} "
            f"mask={self.sector_mask:04b})"
        )


@dataclass
class Trace:
    """A named access stream with the profile facts the model needs."""

    name: str
    accesses: List[TraceAccess] = field(default_factory=list)
    #: Fraction of runtime that is memory-bound (drives the perf model's
    #: traffic -> IPC mapping; the paper's high/medium intensity classes).
    memory_intensity: float = 0.8
    #: Total dynamic instructions the trace stands for (perf/power model).
    instructions: int = 0
    #: Pre-window write history depth (see BenchmarkProfile).
    counter_warmup_passes: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise TraceError("memory intensity must be within [0, 1]")
        if self.instructions <= 0:
            # Default: a memory-intensive kernel retires a handful of
            # instructions per L2 access.
            self.instructions = max(1, 20 * len(self.accesses))

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self):
        return iter(self.accesses)

    @property
    def read_accesses(self) -> int:
        return sum(1 for a in self.accesses if not a.write)

    @property
    def write_accesses(self) -> int:
        return sum(1 for a in self.accesses if a.write)

    @property
    def read_fraction(self) -> float:
        return self.read_accesses / len(self.accesses) if self.accesses else 0.0

    @property
    def touched_lines(self) -> int:
        return len({a.line_addr for a in self.accesses})

    @property
    def footprint_bytes(self) -> int:
        return self.touched_lines * 128
