"""End-to-end tests of the functional secure memory (real crypto)."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    IntegrityError,
    ReplayError,
)
from repro.secure.functional import SECTOR_BYTES, SecureMemory
from repro.secure.value_cache import ValueCacheConfig


@pytest.fixture(params=["plutus", "pssm"])
def memory(request):
    return SecureMemory(256 * 1024, mode=request.param)


class TestHonestOperation:
    def test_roundtrip(self, memory):
        data = bytes(range(32))
        memory.write(0x100, data)
        assert memory.read(0x100, 32) == data

    def test_multi_sector_roundtrip(self, memory):
        data = bytes(i % 256 for i in range(128))
        memory.write(0x0, data)
        assert memory.read(0x0, 128) == data

    def test_overwrite(self, memory):
        memory.write(0x40, b"A" * 32)
        memory.write(0x40, b"B" * 32)
        assert memory.read(0x40, 32) == b"B" * 32

    def test_unwritten_reads_zero(self, memory):
        assert memory.read(0x2000, 32) == b"\x00" * 32

    def test_neighbouring_sectors_independent(self, memory):
        memory.write(0x0, b"A" * 32)
        memory.write(0x20, b"B" * 32)
        assert memory.read(0x0, 32) == b"A" * 32
        assert memory.read(0x20, 32) == b"B" * 32

    def test_ciphertext_actually_differs_from_plaintext(self, memory):
        data = b"plaintext should not be visible!"
        memory.write(0x80, data)
        assert memory.dram.read(0x80, 32) != data

    def test_same_data_different_addresses_different_ciphertext(self, memory):
        memory.write(0x0, b"\xaa" * 32)
        memory.write(0x20, b"\xaa" * 32)
        assert memory.dram.read(0x0, 32) != memory.dram.read(0x20, 32)

    def test_same_data_rewritten_changes_ciphertext(self, memory):
        """Temporal uniqueness via counters."""
        memory.write(0x0, b"\xaa" * 32)
        first = memory.dram.read(0x0, 32)
        memory.write(0x0, b"\xbb" * 32)
        memory.write(0x0, b"\xaa" * 32)
        assert memory.dram.read(0x0, 32) != first


class TestValidation:
    def test_unaligned_address_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.write(0x11, b"\x00" * 32)

    def test_ragged_length_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.write(0x0, b"\x00" * 33)
        with pytest.raises(ValueError):
            memory.read(0x0, 31)

    def test_out_of_range_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read(memory.size_bytes, 32)

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SecureMemory(1024, mode="enclave")

    def test_unaligned_size_rejected(self):
        with pytest.raises(ConfigurationError):
            SecureMemory(1000)


class TestSpoofing:
    def test_ciphertext_overwrite_detected(self, memory):
        memory.write(0x0, b"honest data here is 32 bytes ok!")
        memory.dram.write(0x0, b"\x13" * 32)
        with pytest.raises(IntegrityError):
            memory.read(0x0, 32)

    def test_single_bit_flip_detected(self, memory):
        memory.write(0x0, b"honest data here is 32 bytes ok!")
        memory.tamper_data(0x0, b"\x01" + b"\x00" * 31)
        with pytest.raises(IntegrityError):
            memory.read(0x0, 32)

    def test_tamper_in_second_cipher_block_detected(self, memory):
        memory.write(0x0, b"honest data here is 32 bytes ok!")
        memory.tamper_data(0x0, b"\x00" * 16 + b"\x80" + b"\x00" * 15)
        with pytest.raises(IntegrityError):
            memory.read(0x0, 32)


class TestSplicing:
    def test_ciphertext_move_detected(self, memory):
        memory.write(0x0, b"S" * 32)
        memory.write(0x20, b"T" * 32)
        memory.dram.splice(dst=0x20, src=0x0, length=32)
        with pytest.raises(IntegrityError):
            memory.read(0x20, 32)

    def test_ciphertext_and_mac_move_detected(self, memory):
        """Even moving the matching tag fails: MACs bind the address."""
        memory.write(0x0, b"S" * 32)
        memory.write(0x20, b"T" * 32)
        memory.dram.splice(dst=0x20, src=0x0, length=32)
        memory.mac_store.splice(dst_sector=1, src_sector=0)
        with pytest.raises(IntegrityError):
            memory.read(0x20, 32)


class TestViolationContext:
    """Security exceptions name the engine, op index, and stream."""

    def test_integrity_error_names_engine_and_op(self):
        mem = SecureMemory(4096, mode="pssm", label="pssm")
        mem.write(0x0, b"A" * 32)
        mem.tamper_data(0x0, b"\x01" + b"\x00" * 31)
        with pytest.raises(IntegrityError) as info:
            mem.read(0x0, 32)
        assert info.value.address == 0x0
        assert info.value.stream == "mac"
        assert "engine=pssm" in str(info.value)
        assert "op=" in str(info.value)

    def test_replay_error_names_engine_and_op(self):
        mem = SecureMemory(4096, mode="pssm", label="victim")
        mem.write(0x20, b"B" * 32)
        snapshot = mem.snapshot_sector(0x20)
        mem.write(0x20, b"C" * 32)
        mem.replay_sector(0x20, *snapshot)
        with pytest.raises(ReplayError) as info:
            mem.read(0x20, 32)
        assert info.value.address == 0x20
        assert info.value.stream == "counter"
        assert "engine=victim" in str(info.value)

    def test_label_defaults_to_mode(self):
        assert SecureMemory(4096, mode="pssm").label == "pssm"


class TestReplay:
    def test_full_snapshot_replay_detected(self, memory):
        memory.write(0x0, b"V1" * 16)
        snapshot = memory.snapshot_sector(0x0)
        memory.write(0x0, b"V2" * 16)
        memory.replay_sector(0x0, *snapshot)
        with pytest.raises(ReplayError):
            memory.read(0x0, 32)

    def test_data_only_replay_detected(self, memory):
        """Replaying ciphertext without the counter blob decrypts to
        garbage under the advanced counter."""
        memory.write(0x0, b"V1" * 16)
        old_ct = memory.dram.read(0x0, 32)
        memory.write(0x0, b"V2" * 16)
        memory.dram.write(0x0, old_ct)
        with pytest.raises(IntegrityError):
            memory.read(0x0, 32)


class TestPlutusValueFlow:
    def test_hot_values_skip_mac(self):
        memory = SecureMemory(
            64 * 1024,
            mode="plutus",
            value_cache_config=ValueCacheConfig(pin_threshold=2),
        )
        hot = b"\x11\x22\x33\x44" * 8
        for i in range(10):
            memory.write(i * 32, hot)
            memory.read(i * 32, 32)
        memory.read(0, 32)
        assert memory.last_flow.value_verified
        assert memory.last_flow.mac_avoided
        assert memory.mac_checks_avoided > 0

    def test_cold_values_fall_back_to_mac(self):
        memory = SecureMemory(64 * 1024, mode="plutus")
        unique = bytes(range(32))
        memory.write(0, unique)
        # Flood the value cache with distinct (post-masking) values so
        # the first write's values are long evicted.
        for i in range(1, 300):
            filler = ((i * 0x9E3779B1) & 0xFFFFFFF0).to_bytes(4, "little")
            memory.write(32 * i, filler * 8)
        memory.read(0, 32)
        assert memory.last_flow.mac_verified

    def test_pssm_mode_always_uses_mac(self):
        memory = SecureMemory(64 * 1024, mode="pssm")
        memory.write(0, b"\x11" * 32)
        memory.read(0, 32)
        assert memory.last_flow.mac_verified
        assert memory.mac_checks_avoided == 0


class TestCounterOverflowReencryption:
    def test_group_survives_minor_overflow(self):
        from repro.metadata.split_counter import SplitCounterConfig

        memory = SecureMemory(
            4 * 1024,
            mode="plutus",
            counter_config=SplitCounterConfig(minor_bits=2, sectors_per_group=4),
        )
        # Populate the whole group, then hammer one sector through the
        # minor overflow; neighbours must stay readable.
        for sector in range(4):
            memory.write(sector * SECTOR_BYTES, bytes([sector]) * 32)
        for _ in range(10):
            memory.write(0, b"\x7f" * 32)
        for sector in range(1, 4):
            assert memory.read(sector * SECTOR_BYTES, 32) == bytes([sector]) * 32
        assert memory.read(0, 32) == b"\x7f" * 32
