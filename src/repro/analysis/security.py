"""Security-level accounting across the design space.

Collects the quantitative security claims scattered through the paper —
MAC collision rates by tag size (PSSM's 4 B vs Plutus's 8 B vs SGX's
56-bit), the value-check forgery bound, and counter-lifetime estimates —
into one comparable place, used by the security tests and the
MAC-size ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.forgery import forgery_probability


@dataclass(frozen=True)
class SecurityLevel:
    """Forgery/collision probability of one integrity mechanism."""

    mechanism: str
    success_probability: float

    @property
    def bits_of_security(self) -> float:
        """-log2 of the success probability."""
        from math import log2

        if self.success_probability <= 0:
            return float("inf")
        return -log2(self.success_probability)


def mac_collision(tag_bytes: int) -> SecurityLevel:
    """Random-forgery success against a truncated tag."""
    if tag_bytes <= 0:
        raise ValueError("tag must have bytes")
    return SecurityLevel(
        mechanism=f"{tag_bytes}B MAC",
        success_probability=2.0 ** (-8 * tag_bytes),
    )


def value_check_level(
    cache_entries: int = 256,
    effective_bits: int = 28,
    hits_required: int = 3,
    units_per_access: int = 2,
) -> SecurityLevel:
    """Forgery success against the Plutus value check (per access)."""
    return SecurityLevel(
        mechanism=(
            f"value check (K={cache_entries}, x={hits_required}, "
            f"{units_per_access} units)"
        ),
        success_probability=forgery_probability(
            cache_entries=cache_entries,
            effective_bits=effective_bits,
            hits_required=hits_required,
            units_per_access=units_per_access,
        ),
    )


def comparison_table() -> List[SecurityLevel]:
    """The paper's central security comparison (Section IV-C).

    The value check with the production parameters is stronger than the
    8-byte MAC it replaces — and vastly stronger than PSSM's 4-byte tag.
    """
    return [
        mac_collision(4),
        mac_collision(7),  # SGX's 56-bit
        mac_collision(8),
        value_check_level(),
    ]


def counter_lifetime_writes(minor_bits: int = 6, major_bits: int = 64,
                            sectors_per_group: int = 32) -> float:
    """Worst-case writes a split-counter group absorbs before the major
    counter exhausts (each minor overflow costs one major increment and
    a group re-encryption)."""
    if minor_bits <= 0 or major_bits <= 0:
        raise ValueError("counter widths must be positive")
    minors = float(2**minor_bits)
    majors = float(2**major_bits)
    # Worst case: a single hot sector overflows its minor repeatedly.
    return minors * majors


def storage_overhead_fraction(
    mac_tag_bytes: int = 8,
    sector_bytes: int = 32,
    counter_bytes_per_sector: float = 1.0,
    bmt_fraction_of_counters: float = 1.0 / 3.0,
) -> float:
    """Metadata storage per data byte for a PSSM-style layout.

    Defaults: one 8 B tag per 32 B sector (25%), one byte of split
    counter per sector (~3%), and a tree roughly a third of counter
    storage for the 4-ary fine-grained design.
    """
    mac = mac_tag_bytes / sector_bytes
    counters = counter_bytes_per_sector / sector_bytes
    tree = counters * bmt_fraction_of_counters
    return mac + counters + tree
