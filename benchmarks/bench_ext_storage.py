"""Extension: metadata storage accounting (paper Section IV-F)."""

from conftest import run_once

from repro.harness.experiments import EXPERIMENTS
from repro.harness.report import render_experiment


def test_ext_storage(benchmark, ctx):
    result = run_once(benchmark, lambda: EXPERIMENTS["ext-storage"](ctx))
    print(render_experiment(result))
    # The paper's 1.33 MB fine-granularity BMT, exactly.
    assert abs(result.summary["plutus_bmt_mib"] - 1.33) < 0.01
    rows = {r["design"]: r for r in result.rows}
    # Plutus trades storage for bandwidth: strictly more off-chip bytes.
    assert rows["plutus"]["bmt"] > rows["pssm"]["bmt"]
    assert rows["plutus"]["onchip_sram_bytes"] > rows["pssm"]["onchip_sram_bytes"]
