"""Property-based tests for the sectored cache (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheConfig, SectoredCache

lines = st.integers(min_value=0, max_value=63).map(lambda i: i * 128)
masks = st.integers(min_value=1, max_value=15)
ops = st.lists(
    st.tuples(lines, masks, st.booleans()), min_size=1, max_size=200
)


def run_ops(cache, operations):
    for line, mask, write in operations:
        cache.access(line, mask, write=write)


@settings(max_examples=50, deadline=None)
@given(operations=ops)
def test_capacity_never_exceeded(operations):
    cache = SectoredCache(CacheConfig(name="p", size_bytes=1024, ways=2))
    run_ops(cache, operations)
    assert len(cache.resident_lines()) <= cache.config.num_lines


@settings(max_examples=50, deadline=None)
@given(operations=ops)
def test_immediate_reaccess_always_hits(operations):
    cache = SectoredCache(CacheConfig(name="p", size_bytes=1024, ways=2))
    for line, mask, write in operations:
        cache.access(line, mask, write=write)
        again = cache.access(line, mask, write=False)
        assert again.is_full_hit


@settings(max_examples=50, deadline=None)
@given(operations=ops)
def test_hit_plus_miss_equals_request(operations):
    cache = SectoredCache(CacheConfig(name="p", size_bytes=1024, ways=2))
    for line, mask, write in operations:
        result = cache.access(line, mask, write=write)
        assert result.hit_mask | result.miss_mask == mask
        assert result.hit_mask & result.miss_mask == 0


@settings(max_examples=50, deadline=None)
@given(operations=ops)
def test_dirty_sectors_are_conserved(operations):
    """Every sector dirtied is eventually either re-dirtied in place or
    written back exactly once: flush + evictions account for all."""
    cache = SectoredCache(CacheConfig(name="p", size_bytes=512, ways=2))
    dirtied = set()
    written_back = set()
    for line, mask, write in operations:
        result = cache.access(line, mask, write=write)
        for ev in result.evictions:
            for s in range(4):
                if (ev.dirty_mask >> s) & 1:
                    written_back.add((ev.line_addr, s))
        if write:
            for s in range(4):
                if (mask >> s) & 1:
                    dirtied.add((line, s))
    for ev in cache.flush():
        for s in range(4):
            if (ev.dirty_mask >> s) & 1:
                written_back.add((ev.line_addr, s))
    assert dirtied == written_back


@settings(max_examples=50, deadline=None)
@given(operations=ops)
def test_stats_balance(operations):
    cache = SectoredCache(CacheConfig(name="p", size_bytes=1024, ways=2))
    total_sectors = 0
    for line, mask, write in operations:
        total_sectors += bin(mask).count("1")
        cache.access(line, mask, write=write)
    assert cache.stats.sector_hits + cache.stats.sector_misses == total_sectors
    assert cache.stats.accesses == len(operations)
