"""Fig. 9: sector value-reuse fractions under the three study scenarios.

Paper shape: substantial reuse across the roster, with the masked
two-halves scenario the most permissive and whole-sector matching the
least.
"""

from conftest import run_once

from repro.harness.experiments import run_fig09
from repro.harness.report import render_experiment


def test_fig09_value_reuse(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig09(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    for row in result.rows:
        assert row["masked"] >= row["halves"] >= row["full"]
    # The roster averages significant reuse (the paper's headline).
    assert result.summary["mean"] > 0.35
    # Value-locality outliers behave as profiled: coloring's tiny
    # palette reuses far more than gaussian's long rows.
    masked = {r["benchmark"]: r["masked"] for r in result.rows}
    assert masked["color"] > masked["gaussian"]
