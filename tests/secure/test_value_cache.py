"""Tests for the Plutus value cache."""

import pytest

from repro.common.errors import ConfigurationError
from repro.secure.value_cache import ValueCache, ValueCacheConfig


def fill_unit(value):
    """A 128-bit unit whose four 32-bit values all equal *value*."""
    return [value] * 4


class TestConfig:
    def test_paper_defaults(self):
        config = ValueCacheConfig()
        assert config.entries == 256
        assert config.effective_value_bits == 28
        assert config.hits_required == 3
        assert config.pinned_capacity == 64
        assert config.transient_capacity == 192

    def test_storage_is_about_1kb(self):
        """Paper Section IV-F: 256 entries with frequency counters ~1 kB."""
        config = ValueCacheConfig()
        assert 1024 <= config.storage_bytes <= 1200

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            ValueCacheConfig(entries=0)
        with pytest.raises(ConfigurationError):
            ValueCacheConfig(pinned_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ValueCacheConfig(hits_required=5, values_per_unit=4)


class TestProbeAndObserve:
    def test_miss_then_hit(self):
        cache = ValueCache()
        assert cache.probe(0x12345670) == (False, False)
        cache.observe(0x12345670)
        assert cache.probe(0x12345670)[0]

    def test_masked_matching(self):
        """Near values (differing in the 4 LSBs) match."""
        cache = ValueCache()
        cache.observe(0x12345670)
        hit, _ = cache.probe(0x1234567F)
        assert hit

    def test_upper_bits_must_match(self):
        cache = ValueCache()
        cache.observe(0x12345670)
        assert not cache.probe(0x12345660)[0]

    def test_lru_eviction_of_transient(self):
        config = ValueCacheConfig(entries=8, pinned_fraction=0.0)
        cache = ValueCache(config)
        for v in range(8):
            cache.observe(v << 4)
        cache.observe(8 << 4)  # evicts value 0
        assert not cache.probe(0)[0]
        assert cache.probe(8 << 4)[0]

    def test_observe_is_idempotent_for_resident(self):
        cache = ValueCache(ValueCacheConfig(entries=4, pinned_fraction=0.0))
        cache.observe(0x10)
        cache.observe(0x10)
        assert len(cache) == 1


class TestPinning:
    def test_promotion_after_threshold_hits(self):
        config = ValueCacheConfig(entries=16, pin_threshold=3)
        cache = ValueCache(config)
        cache.observe(0xAA0)
        for _ in range(3):
            cache.probe(0xAA0)
        assert 0xAA0 in cache.pinned_values()
        assert cache.stats.promotions == 1

    def test_pinned_survive_transient_churn(self):
        config = ValueCacheConfig(entries=8, pinned_fraction=0.25,
                                  pin_threshold=2)
        cache = ValueCache(config)
        cache.observe(0xAA0)
        cache.probe(0xAA0)
        cache.probe(0xAA0)
        assert 0xAA0 in cache.pinned_values()
        for v in range(1, 100):  # flood the transient region
            cache.observe(v << 4)
        assert cache.probe(0xAA0) == (True, True)

    def test_pinned_region_capacity_respected(self):
        config = ValueCacheConfig(entries=8, pinned_fraction=0.25,
                                  pin_threshold=1)
        cache = ValueCache(config)  # pinned capacity = 2
        for v in range(5):
            cache.observe(v << 4)
            cache.probe(v << 4)
        assert len(cache.pinned_values()) <= 2


class TestUnitVerification:
    def test_all_hits_pass(self):
        cache = ValueCache()
        cache.observe_many([0x10, 0x20, 0x30, 0x40])
        check = cache.check_unit([0x10, 0x20, 0x30, 0x40])
        assert check.passed and check.hits == 4

    def test_three_of_four_passes(self):
        """Eq. 1 solution: x = 3 suffices."""
        cache = ValueCache()
        cache.observe_many([0x10, 0x20, 0x30])
        assert cache.check_unit([0x10, 0x20, 0x30, 0xDEAD0000]).passed

    def test_two_of_four_fails(self):
        cache = ValueCache()
        cache.observe_many([0x10, 0x20])
        assert not cache.check_unit([0x10, 0x20, 0xBEEF0000, 0xDEAD0000]).passed

    def test_unit_size_enforced(self):
        with pytest.raises(ValueError):
            ValueCache().check_unit([1, 2, 3])


class TestSectorVerification:
    def test_both_halves_must_pass(self):
        """Paper: every 128-bit unit must pass independently."""
        cache = ValueCache()
        cache.observe_many([0x10, 0x20, 0x30, 0x40])
        good_half = [0x10, 0x20, 0x30, 0x40]
        bad_half = [0x50000000, 0x60000000, 0x70000000, 0x80000000]
        assert not cache.verify_sector(good_half + bad_half)
        assert cache.verify_sector(good_half + good_half)

    def test_stats_track_outcomes(self):
        cache = ValueCache()
        cache.observe_many([0x10, 0x20, 0x30, 0x40])
        cache.verify_sector([0x10, 0x20, 0x30, 0x40] * 2)
        cache.verify_sector([0x99990000] * 8)
        assert cache.stats.sectors_verified == 1
        assert cache.stats.sectors_failed == 1
        assert cache.stats.sector_verify_rate == pytest.approx(0.5)

    def test_ragged_sector_rejected(self):
        with pytest.raises(ValueError):
            ValueCache().verify_sector([1, 2, 3, 4, 5])


class TestWriteVerifiability:
    def test_pinned_hits_make_write_verifiable(self):
        config = ValueCacheConfig(entries=16, pin_threshold=1)
        cache = ValueCache(config)
        for v in (0x10, 0x20, 0x30):
            cache.observe(v)
            cache.probe(v)  # promote
        values = [0x10, 0x20, 0x30, 0x40] * 2
        assert cache.write_verifiable(values)

    def test_transient_hits_are_not_enough(self):
        """Transient entries may be evicted before the read-back, so
        they give no guarantee (paper Fig. 11, right side)."""
        cache = ValueCache()  # default pin_threshold high
        cache.observe_many([0x10, 0x20, 0x30, 0x40])
        assert not cache.write_verifiable([0x10, 0x20, 0x30, 0x40] * 2)

    def test_write_check_does_not_mutate(self):
        config = ValueCacheConfig(entries=16, pin_threshold=1)
        cache = ValueCache(config)
        cache.observe(0x10)
        probes_before = cache.stats.probes
        cache.write_verifiable([0x10] * 8)
        assert cache.stats.probes == probes_before
