"""Security metadata: counters (split/monolithic/compact), BMT, ToC, MACs."""

from repro.metadata.bmt import BmtGeometry, BmtTraversal
from repro.metadata.compact import (
    DESIGN_2BIT,
    DESIGN_3BIT,
    DESIGN_3BIT_ADAPTIVE,
    CompactCounterConfig,
    CompactCounterState,
    CounterAccessPlan,
    CounterRoute,
)
from repro.metadata.layout import GranularityDesign, MetadataLayout, compact_layout
from repro.metadata.mac_store import MacStore
from repro.metadata.merkle import MerkleTree
from repro.metadata.monolithic import MonolithicCounterConfig, MonolithicCounterStore
from repro.metadata.split_counter import (
    IncrementOutcome,
    SplitCounterConfig,
    SplitCounterStore,
)
from repro.metadata.toc import TreeOfCounters

__all__ = [
    "BmtGeometry",
    "BmtTraversal",
    "CompactCounterConfig",
    "CompactCounterState",
    "CounterAccessPlan",
    "CounterRoute",
    "DESIGN_2BIT",
    "DESIGN_3BIT",
    "DESIGN_3BIT_ADAPTIVE",
    "GranularityDesign",
    "IncrementOutcome",
    "MacStore",
    "MerkleTree",
    "MetadataLayout",
    "MonolithicCounterConfig",
    "MonolithicCounterStore",
    "SplitCounterConfig",
    "SplitCounterStore",
    "TreeOfCounters",
    "compact_layout",
]
