"""The crash-recoverable secure memory: WAL, persist ordering, recovery.

Covers the functional engine's durable contract directly (the
systematic site × mode sweep lives in ``tests/faults``): honest
round-trips, recovery from clean and crashed images, torn-log rollback,
WAL redo, detection of corrupted persistent state, and the two
hypothesis properties the issue names — recovery is idempotent, and a
crash injected *during* recovery still lands recovered-or-detected.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    ConfigurationError,
    CrashError,
    RecoveryError,
)
from repro.metadata.split_counter import SplitCounterConfig
from repro.secure.recoverable import (
    FORMAT_SITE,
    RECOVERY_SITES,
    UPDATE_SITES,
    RecoverableSecureMemory,
    _decode_entries,
    _encode_entries,
)

CFG = SplitCounterConfig(minor_bits=2, sectors_per_group=4)
SIZE = 512


def build(**kwargs):
    kwargs.setdefault("counter_config", CFG)
    return RecoverableSecureMemory(SIZE, **kwargs)


def recover(image, **kwargs):
    kwargs.setdefault("counter_config", CFG)
    return RecoverableSecureMemory.recover(image, size_bytes=SIZE, **kwargs)


def sector(tag: int) -> bytes:
    return bytes([tag]) * 32


class TestHonestPath:
    def test_write_read_roundtrip(self):
        memory = build()
        memory.write(0, sector(1))
        memory.write(64, sector(2))
        assert memory.read(0, 32) == sector(1)
        assert memory.read(64, 32) == sector(2)
        assert memory.committed_seq == 2

    def test_unwritten_reads_as_zeros(self):
        memory = build()
        assert memory.read(96, 32) == b"\x00" * 32

    def test_checkpoint_truncates_wal(self):
        memory = build()
        memory.write(0, sector(3))
        assert memory.wal_tail > 0
        digest = memory.state_digest()
        memory.checkpoint()
        assert memory.wal_tail == 0
        # Log reclamation never changes the logical durable state.
        assert memory.state_digest() == digest

    def test_digest_excludes_wal_position(self):
        # Same transactions, different checkpoint history -> same digest.
        a = build()
        b = build()
        for memory in (a, b):
            memory.write(0, sector(4))
        a.checkpoint()
        a.write(32, sector(5))
        b.write(32, sector(5))
        assert a.state_digest() == b.state_digest()

    def test_wal_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            build(wal_bytes=16)

    def test_site_constants_are_disjoint(self):
        sites = set(UPDATE_SITES) | set(RECOVERY_SITES) | {FORMAT_SITE}
        assert len(sites) == len(UPDATE_SITES) + len(RECOVERY_SITES) + 1


class TestWalCodec:
    def test_entry_roundtrip(self):
        entries = [(0, 0, b"\xaa" * 32), (3, 1234, b"\x01\x02"), (5, 7, b"")]
        assert _decode_entries(_encode_entries(entries)) == entries

    def test_truncated_entry_detected(self):
        payload = _encode_entries([(1, 64, b"\xbb" * 16)])
        with pytest.raises(ValueError):
            _decode_entries(payload[:-1])


def _kill_at(region, site):
    """Install a hook tearing *site* with nothing persisted."""

    def hook(s, seq, pending):
        if s == site:
            region.crash(())
            raise CrashError(f"test kill at {s}", site=s, barrier_seq=seq)

    region.install_barrier_hook(hook)


class TestRecovery:
    def test_recover_clean_image_is_identity(self):
        memory = build()
        memory.write(0, sector(6))
        memory.write(32, sector(7))
        restored = recover(memory.nvm.persistent_image())
        assert restored.committed_seq == memory.committed_seq
        assert restored.state_digest() == memory.state_digest()
        assert restored.read(0, 32) == sector(6)
        assert restored.read(32, 32) == sector(7)

    def test_torn_wal_append_rolls_back(self):
        memory = build()
        memory.write(0, sector(8))
        digest = memory.state_digest()
        _kill_at(memory.nvm, "write:wal-append")
        with pytest.raises(CrashError):
            memory.write(32, sector(9))
        restored = recover(memory.nvm.persistent_image())
        assert restored.committed_seq == 1
        assert restored.state_digest() == digest
        assert restored.read(32, 32) == b"\x00" * 32

    def test_durable_wal_record_is_redone(self):
        reference = build()
        reference.write(0, sector(10))
        reference.write(32, sector(11))

        memory = build()
        memory.write(0, sector(10))
        _kill_at(memory.nvm, "write:home-apply")
        with pytest.raises(CrashError):
            memory.write(32, sector(11))
        restored = recover(memory.nvm.persistent_image())
        assert restored.committed_seq == 2
        assert restored.state_digest() == reference.state_digest()
        assert restored.read(32, 32) == sector(11)

    def test_unprovisioned_image_detected(self):
        memory = build()
        region = type(memory.nvm)(memory.nvm_bytes)
        with pytest.raises(RecoveryError):
            recover(region)

    def test_corrupt_persisted_node_detected(self):
        memory = build()
        memory.write(0, sector(12))
        image = memory.nvm.persistent_image()
        addr = memory._node_addr(0, 0)
        node = bytearray(image.read(addr, memory.tree.hash_bytes))
        node[0] ^= 0xFF
        image.persistent.write(addr, bytes(node))
        image.volatile.write(addr, bytes(node))
        with pytest.raises(RecoveryError):
            recover(image)

    def test_corrupt_persisted_ciphertext_detected_by_scrub(self):
        memory = build()
        memory.write(0, sector(13))
        image = memory.nvm.persistent_image()
        data = bytearray(image.read(0, 32))
        data[5] ^= 0x40
        image.persistent.write(0, bytes(data))
        image.volatile.write(0, bytes(data))
        with pytest.raises(RecoveryError):
            recover(image)

    def test_wrong_geometry_rejected(self):
        memory = build()
        with pytest.raises(RecoveryError):
            RecoverableSecureMemory.recover(
                memory.nvm.persistent_image(),
                size_bytes=SIZE * 2,
                counter_config=CFG,
            )


writes_strategy = st.lists(
    st.tuples(st.integers(0, SIZE // 32 - 1), st.integers(1, 255)),
    min_size=1,
    max_size=10,
)


@settings(max_examples=15, deadline=None)
@given(ops=writes_strategy)
def test_recovery_is_idempotent(ops):
    """Recovering an already-recovered image changes nothing."""
    memory = build()
    for idx, tag in ops:
        memory.write(idx * 32, sector(tag))
    first = recover(memory.nvm.persistent_image())
    second = recover(first.nvm.persistent_image())
    assert second.committed_seq == first.committed_seq
    assert second.state_digest() == first.state_digest()


@settings(max_examples=15, deadline=None)
@given(
    ops=writes_strategy,
    site=st.sampled_from(RECOVERY_SITES),
    keep_mask=st.integers(0, 2**12 - 1),
    torn=st.booleans(),
)
def test_crash_during_recovery_never_silent(ops, site, keep_mask, torn):
    """A kill mid-redo (any persisted subset) recovers or is detected."""
    memory = build()
    for idx, tag in ops[:-1]:
        memory.write(idx * 32, sector(tag))
    # Tear the last write after its WAL append: recovery has redo work.
    _kill_at(memory.nvm, "write:home-apply")
    last_idx, last_tag = ops[-1]
    with pytest.raises(CrashError):
        memory.write(last_idx * 32, sector(last_tag))

    clean = recover(memory.nvm.persistent_image())
    expected_digest = clean.state_digest()
    expected_committed = clean.committed_seq

    region = memory.nvm.persistent_image()

    def kill(s, seq, pending):
        if s != site:
            return
        persisted = []
        for i, (address, data) in enumerate(pending):
            if not (keep_mask >> i) & 1:
                continue
            if torn and len(data) > 1:
                data = data[: len(data) // 2]
            persisted.append((address, data))
        region.crash(persisted)
        raise CrashError(f"recovery kill at {s}", site=s, barrier_seq=seq)

    region.install_barrier_hook(kill)
    try:
        restored = recover(region)
    except CrashError:
        region.install_barrier_hook(None)
        try:
            restored = recover(region.persistent_image())
        except RecoveryError:
            return  # torn, but detected -- never silent
    else:
        region.install_barrier_hook(None)
    assert restored.committed_seq == expected_committed
    assert restored.state_digest() == expected_digest
