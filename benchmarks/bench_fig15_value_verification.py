"""Fig. 15: value-based integrity verification alone vs PSSM.

Paper: +4.94% average IPC, up to +19.89%.
"""

from conftest import run_once

from repro.harness.experiments import run_fig15
from repro.harness.report import render_experiment


def test_fig15_value_verification(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig15(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    # Shape: clear positive average, close to the paper's magnitude.
    assert 1.02 < result.summary["mean"] < 1.15
    # No benchmark is materially hurt by the value check.
    assert result.summary["min"] > 0.99
    assert result.summary["max"] > 1.08
