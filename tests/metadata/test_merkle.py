"""Tests for the functional Merkle tree."""

import pytest

from repro.common.errors import ReplayError
from repro.metadata.merkle import MerkleTree


class TestConstruction:
    def test_empty_tree_verifies_empty_leaves(self):
        tree = MerkleTree(16, arity=4)
        tree.verify_leaf(0, b"")
        tree.verify_leaf(15, b"")

    def test_height(self):
        assert MerkleTree(16, arity=4).height == 3  # 16 -> 4 -> 1
        assert MerkleTree(17, arity=4).height == 4  # 17 -> 5 -> 2 -> 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MerkleTree(0)
        with pytest.raises(ValueError):
            MerkleTree(4, arity=1)

    def test_single_leaf_tree(self):
        tree = MerkleTree(1, arity=4)
        tree.update_leaf(0, b"data")
        tree.verify_leaf(0, b"data")


class TestUpdateVerify:
    def test_update_then_verify(self):
        tree = MerkleTree(64, arity=8)
        tree.update_leaf(10, b"counter blob")
        tree.verify_leaf(10, b"counter blob")

    def test_wrong_data_rejected(self):
        tree = MerkleTree(64, arity=8)
        tree.update_leaf(10, b"counter blob")
        with pytest.raises(ReplayError):
            tree.verify_leaf(10, b"other blob")

    def test_stale_data_rejected(self):
        """The replay case: an old value no longer matches the root."""
        tree = MerkleTree(64, arity=8)
        tree.update_leaf(10, b"version 1")
        tree.update_leaf(10, b"version 2")
        with pytest.raises(ReplayError):
            tree.verify_leaf(10, b"version 1")

    def test_update_changes_root(self):
        tree = MerkleTree(64, arity=8)
        before = tree.root
        tree.update_leaf(0, b"x")
        assert tree.root != before

    def test_sibling_updates_do_not_interfere(self):
        tree = MerkleTree(64, arity=8)
        tree.update_leaf(0, b"a")
        tree.update_leaf(1, b"b")
        tree.verify_leaf(0, b"a")
        tree.verify_leaf(1, b"b")

    def test_out_of_range_leaf(self):
        tree = MerkleTree(8)
        with pytest.raises(ValueError):
            tree.update_leaf(8, b"")
        with pytest.raises(ValueError):
            tree.verify_leaf(-1, b"")


class TestTamperedNodes:
    def test_corrupted_sibling_node_detected(self):
        """Stored (untrusted) sibling hashes cannot be forged: the
        recomputed parent no longer chains to the trusted root. (Nodes
        *on* the path are recomputed from the leaf, so corrupting them
        is inert — only siblings feed the chain as stored data.)"""
        tree = MerkleTree(64, arity=8, hash_bytes=8)
        tree.update_leaf(5, b"honest")
        tree.corrupt_node(1, 1, b"\x00" * 8)  # level-1 sibling of the path
        with pytest.raises(ReplayError):
            tree.verify_leaf(5, b"honest")

    def test_corrupted_sibling_leaf_detected(self):
        tree = MerkleTree(64, arity=8, hash_bytes=8)
        tree.update_leaf(5, b"honest")
        tree.corrupt_node(0, 6, b"\xff" * 8)  # sibling leaf hash
        with pytest.raises(ReplayError):
            tree.verify_leaf(5, b"honest")

    def test_corruption_outside_path_is_invisible(self):
        tree = MerkleTree(64, arity=8, hash_bytes=8)
        tree.update_leaf(5, b"honest")
        tree.corrupt_node(0, 63, b"\xff" * 8)  # unrelated leaf hash
        tree.verify_leaf(5, b"honest")  # must still pass

    def test_trusted_root_override(self):
        """Verification against a pinned root catches wholesale swaps."""
        tree = MerkleTree(16, arity=4)
        pinned = tree.root
        tree.update_leaf(3, b"attacker wrote this")
        with pytest.raises(ReplayError):
            tree.verify_leaf(3, b"attacker wrote this", trusted_root=pinned)

    def test_node_reader_supplies_siblings(self):
        """External (DRAM-resident) node storage integrates via reader."""
        tree = MerkleTree(16, arity=4)
        tree.update_leaf(2, b"blob")
        calls = []

        def reader(level, index):
            calls.append((level, index))
            return tree.levels[level][index]

        tree.verify_leaf(2, b"blob", node_reader=reader)
        assert calls  # siblings actually came from the reader
