"""Energy/power model (paper Fig. 22).

The paper reports average power normalized to a no-security system:
8B-MAC PSSM costs +36.9%, Plutus +17.8%. Power overheads of secure
memory come almost entirely from moving extra DRAM bytes and running the
crypto units, amortized over a runtime that itself stretches with the
slowdown. The model here is deliberately first-order:

    E = e_dram * dram_bytes
      + e_aes  * blocks_ciphered
      + e_mac  * macs_computed
      + e_sram * metadata_cache_activity
      + P_background * T

    P = E / T

Kernel time T is derived from the same bandwidth-roofline assumptions as
the performance model: the insecure run's memory time is its bytes at
effective DRAM bandwidth, total time scales it by 1/intensity (the
memory-bound fraction), and a secured run stretches it by its slowdown.
Per-operation energies are HBM2/45nm-class constants; only *ratios* of
the resulting powers are meaningful, matching how the paper presents
the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.perf_model import slowdown_vs_baseline
from repro.gpu.simulator import SimulationResult
from repro.mem.dram import DEFAULT_DRAM, DramConfig


@dataclass(frozen=True)
class EnergyParams:
    """First-order per-operation energies (picojoules)."""

    #: HBM2 access energy per byte (~3.9 pJ/bit).
    dram_pj_per_byte: float = 31.0
    #: One AES-128 operation over a 16-byte block in a hardware engine.
    aes_pj_per_block: float = 20.0
    #: One (truncated) MAC computation over a 32-byte sector. The
    #: latency-optimized 40-cycle MAC pipelines of Table II are power
    #: hungry; this constant is calibrated so the PSSM baseline's power
    #: overhead lands at the paper's Fig. 22 level (~37%).
    mac_pj_per_op: float = 450.0
    #: One metadata-SRAM access (2 kB arrays).
    sram_pj_per_access: float = 5.0
    #: Background (constant) power of the memory subsystem, watts. This
    #: is what makes *power* overhead smaller than *energy* overhead —
    #: a stretched runtime dilutes the extra dynamic energy.
    background_watts: float = 1.5


@dataclass(frozen=True)
class PowerEstimate:
    """Energy and average power of one simulated kernel."""

    engine_name: str
    energy_joules: float
    seconds: float

    @property
    def watts(self) -> float:
        return self.energy_joules / self.seconds if self.seconds else 0.0


def kernel_seconds(
    result: SimulationResult,
    baseline_total_bytes: int,
    dram: DramConfig = DEFAULT_DRAM,
) -> float:
    """Roofline kernel time consistent with the performance model.

    The insecure kernel spends ``baseline_bytes / bandwidth`` on memory,
    which is ``memory_intensity`` of its runtime; a secured kernel
    stretches that runtime by its bandwidth slowdown.
    """
    if baseline_total_bytes <= 0:
        raise ValueError("baseline must have moved data")
    memory_seconds = dram.transfer_time(baseline_total_bytes)
    base_runtime = memory_seconds / max(result.memory_intensity, 0.05)
    slowdown = slowdown_vs_baseline(
        result.total_bytes, baseline_total_bytes, result.memory_intensity
    )
    return base_runtime * slowdown


def estimate_power(
    result: SimulationResult,
    baseline_total_bytes: int,
    params: EnergyParams = EnergyParams(),
    dram: DramConfig = DEFAULT_DRAM,
) -> PowerEstimate:
    """Estimate average power of one (trace, engine) simulation.

    ``baseline_total_bytes`` is the no-security run's traffic, which
    anchors the kernel-time scale (pass the secured run's own bytes when
    estimating the insecure baseline itself).
    """
    traffic = result.traffic
    stats = result.engine_stats

    dram_energy = params.dram_pj_per_byte * traffic.total_bytes
    # Every data sector moved is ciphered once (2 AES blocks per 32 B);
    # metadata is not encrypted. The insecure baseline ciphers nothing.
    data_sectors = traffic.data_bytes // 32
    is_secured = result.metadata_bytes > 0 or stats.mac_fetches_avoided > 0
    aes = params.aes_pj_per_block * 2 * data_sectors if is_secured else 0.0
    # MACs actually computed: every fill/writeback minus the ones the
    # value check rendered unnecessary.
    macs = (
        stats.fills
        + stats.writebacks
        - stats.mac_fetches_avoided
        - stats.mac_writes_avoided
    )
    mac = params.mac_pj_per_op * max(macs, 0) if is_secured else 0.0
    # Rough SRAM activity: one metadata-cache probe per fill/writeback
    # per metadata kind is the right order of magnitude.
    sram = (
        params.sram_pj_per_access * 3 * (stats.fills + stats.writebacks)
        if is_secured
        else 0.0
    )

    seconds = kernel_seconds(result, baseline_total_bytes, dram)
    energy = (dram_energy + aes + mac + sram) * 1e-12
    energy += params.background_watts * seconds
    return PowerEstimate(
        engine_name=result.engine_name,
        energy_joules=energy,
        seconds=seconds,
    )


def power_overhead(secure: PowerEstimate, insecure: PowerEstimate) -> float:
    """Fractional average-power overhead (the Fig. 22 quantity)."""
    if insecure.watts == 0:
        return 0.0
    return secure.watts / insecure.watts - 1.0
