"""Resilient campaign execution: journaled resume, retries, budgets, chaos.

The subsystem decomposes any multi-unit run — parameter sweeps, paper
experiments, fault campaigns, conformance fuzzing — into
content-addressed :class:`WorkUnit` s and executes them under a
:class:`Supervisor` that retries transient failures, journals every
outcome durably, honors resource budgets by degrading gracefully, and
can sabotage itself on demand (:mod:`repro.resilience.chaos`) to prove
all of the above works.
"""

from repro.resilience.budget import (
    REASON_RSS,
    REASON_TRACEMALLOC,
    REASON_WALL_CLOCK,
    BudgetGuard,
    ResourceBudget,
    current_rss_mb,
)
from repro.resilience.chaos import ChaosConfig, ChaosKill, ChaosMonkey
from repro.resilience.journal import JOURNAL_SCHEMA, RunJournal, journal_path
from repro.resilience.policy import (
    RETRYABLE,
    FailureClass,
    RetryPolicy,
    classify_failure,
)
from repro.resilience.report import missing_cell_lines, render_outcome
from repro.resilience.telemetry import (
    UnitTelemetry,
    render_campaign_telemetry,
    rollup,
)
from repro.resilience.supervisor import (
    STATUS_CANCELLED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CampaignOutcome,
    Supervisor,
    UnitOutcome,
)
from repro.resilience.units import (
    Campaign,
    WorkUnit,
    campaign_fingerprint,
    canonical_params,
    json_roundtrip,
)

__all__ = [
    "BudgetGuard",
    "Campaign",
    "CampaignOutcome",
    "ChaosConfig",
    "ChaosKill",
    "ChaosMonkey",
    "FailureClass",
    "JOURNAL_SCHEMA",
    "REASON_RSS",
    "REASON_TRACEMALLOC",
    "REASON_WALL_CLOCK",
    "RETRYABLE",
    "ResourceBudget",
    "RetryPolicy",
    "RunJournal",
    "STATUS_CANCELLED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "Supervisor",
    "UnitOutcome",
    "UnitTelemetry",
    "WorkUnit",
    "render_campaign_telemetry",
    "rollup",
    "campaign_fingerprint",
    "canonical_params",
    "classify_failure",
    "current_rss_mb",
    "journal_path",
    "json_roundtrip",
    "missing_cell_lines",
    "render_outcome",
]
