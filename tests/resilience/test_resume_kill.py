"""End-to-end crash recovery: kill -9 a sweep, resume its journal.

The contract under test is the PR's acceptance scenario: a supervised
sweep killed partway through resumes from its journal, re-runs only
unfinished cells, and prints a report byte-identical to an
uninterrupted run of the same campaign.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")
SWEEP_ARGS = [
    "sweep", "partitions", "bfs",
    "--length", "500",
    "--retries", "1",
]


def run_cli(args, run_dir, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.harness", *SWEEP_ARGS,
         "--run-dir", str(run_dir), *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **popen_kwargs,
    )


def journal_unit_records(path):
    """Parseable unit records in a journal file (torn tail tolerated)."""
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("type") == "unit":
            records.append(record)
    return records


@pytest.mark.slow
class TestKillAndResume:
    def test_sigkill_mid_sweep_then_resume_is_byte_identical(self, tmp_path):
        killed_dir = tmp_path / "killed"
        fresh_dir = tmp_path / "fresh"
        journal = killed_dir / "killme" / "journal.jsonl"

        # Start the sweep, wait for the journal to show progress, and
        # kill -9 the process mid-campaign.
        child = run_cli(["--run-id", "killme"], killed_dir)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if journal_unit_records(journal) or child.poll() is not None:
                break
            time.sleep(0.01)
        if child.poll() is None:
            child.send_signal(signal.SIGKILL)
        child.communicate()
        records_after_kill = journal_unit_records(journal)
        assert journal.exists(), "journal never materialized"

        # Resume the killed run.
        resumed = run_cli(["--resume", "killme"], killed_dir)
        resumed_out, resumed_err = resumed.communicate(timeout=600)
        assert resumed.returncode == 0, resumed_err

        # An uninterrupted run of the same campaign, for comparison.
        fresh = run_cli(["--run-id", "control"], fresh_dir)
        fresh_out, fresh_err = fresh.communicate(timeout=600)
        assert fresh.returncode == 0, fresh_err

        # The merged report is byte-identical to the fresh one.
        assert resumed_out == fresh_out

        # Completed cells were not re-executed: across kill + resume
        # each of the 3 cells produced exactly one ok record.
        final_records = journal_unit_records(journal)
        assert len(final_records) == 3
        assert {r["status"] for r in final_records} == {"ok"}
        by_unit = {}
        for record in final_records:
            by_unit.setdefault(record["unit_id"], 0)
            by_unit[record["unit_id"]] += 1
        assert all(count == 1 for count in by_unit.values())

        # The resumed run reported the journaled cells as resumed
        # (when the kill actually landed mid-campaign).
        if len(records_after_kill) < 3:
            resumed_count = len(records_after_kill)
            assert f"{resumed_count} resumed" in resumed_err

    def test_resume_unknown_run_id_is_usage_error(self, tmp_path):
        child = run_cli(["--resume", "ghost"], tmp_path / "empty")
        out, err = child.communicate(timeout=600)
        assert child.returncode == 2
        assert "nothing to resume" in err
        assert "Traceback" not in err
