"""Size, bandwidth, and frequency units.

Architectural configuration code is dominated by byte counts and rates;
these tiny value types keep the arithmetic explicit (``Size.from_kib(2)``
reads better than ``2 * 1024``) and make configuration errors loud.
"""

from __future__ import annotations

from dataclasses import dataclass

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000


@dataclass(frozen=True, order=True)
class Size:
    """A byte count with binary-unit constructors and pretty printing."""

    bytes: int

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError("size cannot be negative")

    @classmethod
    def from_kib(cls, kib: float) -> "Size":
        return cls(int(kib * KIB))

    @classmethod
    def from_mib(cls, mib: float) -> "Size":
        return cls(int(mib * MIB))

    @classmethod
    def from_gib(cls, gib: float) -> "Size":
        return cls(int(gib * GIB))

    @property
    def kib(self) -> float:
        return self.bytes / KIB

    @property
    def mib(self) -> float:
        return self.bytes / MIB

    @property
    def gib(self) -> float:
        return self.bytes / GIB

    def __add__(self, other: "Size") -> "Size":
        return Size(self.bytes + other.bytes)

    def __sub__(self, other: "Size") -> "Size":
        return Size(self.bytes - other.bytes)

    def __mul__(self, factor: int) -> "Size":
        return Size(self.bytes * factor)

    __rmul__ = __mul__

    def __str__(self) -> str:
        if self.bytes >= GIB and self.bytes % GIB == 0:
            return f"{self.bytes // GIB} GiB"
        if self.bytes >= MIB and self.bytes % MIB == 0:
            return f"{self.bytes // MIB} MiB"
        if self.bytes >= KIB and self.bytes % KIB == 0:
            return f"{self.bytes // KIB} KiB"
        return f"{self.bytes} B"


@dataclass(frozen=True, order=True)
class Bandwidth:
    """A data rate in bytes per second."""

    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second < 0:
            raise ValueError("bandwidth cannot be negative")

    @classmethod
    def from_gb_per_s(cls, gb: float) -> "Bandwidth":
        return cls(gb * GIGA)

    @property
    def gb_per_s(self) -> float:
        return self.bytes_per_second / GIGA

    def transfer_seconds(self, size: Size) -> float:
        """Time to move *size* bytes at this rate."""
        if self.bytes_per_second == 0:
            raise ZeroDivisionError("zero bandwidth cannot transfer data")
        return size.bytes / self.bytes_per_second

    def __str__(self) -> str:
        return f"{self.gb_per_s:g} GB/s"


@dataclass(frozen=True, order=True)
class Frequency:
    """A clock rate in hertz."""

    hertz: float

    def __post_init__(self) -> None:
        if self.hertz < 0:
            raise ValueError("frequency cannot be negative")

    @classmethod
    def from_mhz(cls, mhz: float) -> "Frequency":
        return cls(mhz * MEGA)

    @property
    def mhz(self) -> float:
        return self.hertz / MEGA

    def cycles_to_seconds(self, cycles: float) -> float:
        if self.hertz == 0:
            raise ZeroDivisionError("zero frequency has no cycle time")
        return cycles / self.hertz

    def __str__(self) -> str:
        return f"{self.mhz:g} MHz"
