"""Deterministic fault injection against the functional secure memory.

The paper's security argument is a *detection* argument: spoofing and
splicing are caught by MACs, replay by the counter-integrity tree, and
Plutus's value-cache shortcut is sound because a tampered AES-XTS block
decrypts to values that miss the value cache with probability below the
MAC collision rate (PAPER.md §IV). This package attacks that argument
on demand:

* :mod:`repro.faults.plan` — :class:`FaultKind` / :class:`InjectionPlan`,
  the seedable description of one adversarial tamper;
* :mod:`repro.faults.workload` — deterministic read/write op streams
  (derived from benchmark traces or synthesized) that establish the
  state a fault is mounted against;
* :mod:`repro.faults.hooks` — applies a plan through the untrusted
  surfaces (DRAM image, MAC region, counter blobs, tree nodes) and the
  write-path hook points, leaving the engines unchanged;
* :mod:`repro.faults.campaign` — mounts whole campaigns across engine
  variants and classifies every injection as detected, benign,
  false-accepted, or missed; false-accept rates are compared against
  the paper's collision-rate bound;
* :mod:`repro.faults.report` — renders the detection matrix.

``python -m repro.harness inject <bench> --campaign <name>`` is the CLI
entry; it exits non-zero on any miss.
"""

from repro.faults.campaign import (
    CAMPAIGNS,
    CampaignReport,
    CampaignSpec,
    MatrixCell,
    Outcome,
    TrialRecord,
    build_engine,
    build_plans,
    campaign_spec,
    mac_collision_rate,
    run_campaign,
    value_cache_false_accept_rate,
)
from repro.faults.hooks import apply_fault, dropped_write, inject_immediate
from repro.faults.plan import ENGINE_VARIANTS, FaultKind, InjectionPlan
from repro.faults.report import render_campaign
from repro.faults.workload import Op, ops_from_trace, synthetic_ops, value_sweep_ops

__all__ = [
    "CAMPAIGNS",
    "CampaignReport",
    "CampaignSpec",
    "ENGINE_VARIANTS",
    "FaultKind",
    "InjectionPlan",
    "MatrixCell",
    "Op",
    "Outcome",
    "TrialRecord",
    "apply_fault",
    "build_engine",
    "build_plans",
    "campaign_spec",
    "dropped_write",
    "inject_immediate",
    "mac_collision_rate",
    "ops_from_trace",
    "render_campaign",
    "run_campaign",
    "synthetic_ops",
    "value_cache_false_accept_rate",
    "value_sweep_ops",
]
