"""Fig. 20: Plutus with integrity-tree traffic eliminated.

Paper context: MGX/TNPU/softVN-style schemes remove counter/tree traffic
for specific accelerators; Plutus's value-based MAC elimination remains
effective on top of them (it is orthogonal).
"""

from conftest import run_once

from repro.harness.experiments import run_fig20
from repro.harness.report import render_experiment


def test_fig20_no_tree(benchmark, ctx):
    result = run_once(benchmark, lambda: run_fig20(ctx))
    print(render_experiment(result))
    benchmark.extra_info.update(result.summary)
    # Even with all tree traffic gone, value verification + compact
    # counters still buy a clear average win.
    assert result.summary["mean"] > 1.03
    assert result.summary["min"] > 0.99
