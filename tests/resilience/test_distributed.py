"""The distributed executor: factory specs, merge determinism, the fleet.

The expensive contracts — worker subprocesses, a real ``kill -9``
mid-unit followed by a steal, coordinator-crash recovery through the
initial merge — run against :func:`demo_campaign`, the dependency-free
arithmetic workload, so they exercise the full lease machinery in a
few hundred milliseconds of actual work.
"""

import json
import os
import random
import signal
import threading
import time

import pytest

from repro.common.errors import EXIT_OK, ResilienceError
from repro.obs import active
from repro.resilience import (
    STATUS_OK,
    STATUS_SKIPPED,
    DistributedConfig,
    DistributedSupervisor,
    RetryPolicy,
    RunJournal,
    Supervisor,
    WorkQueue,
    build_campaign,
    demo_campaign,
    factory_spec,
    merge_records,
)
from repro.resilience.distributed import write_campaign_spec
from repro.resilience.worker import WORKERS_DIR, Worker

DEMO_FACTORY = "repro.resilience.distributed:demo_campaign"


def open_run(tmp_path, campaign, run_id="run1"):
    journal = RunJournal.open(tmp_path, run_id, campaign)
    return journal, tmp_path / run_id


def make_supervisor(journal, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("lease_ttl_s", 2.0)
    spec = factory_spec(
        DEMO_FACTORY, config_kwargs.pop("factory_kwargs", {"values": [1, 2]})
    )
    return DistributedSupervisor(
        DistributedConfig(**config_kwargs), spec, journal
    )


class TestFactorySpec:
    def test_spec_requires_module_colon_function(self):
        with pytest.raises(ResilienceError):
            factory_spec("not-a-reference")

    def test_build_resolves_and_invokes(self):
        campaign = build_campaign(
            factory_spec(DEMO_FACTORY, {"values": [2, 3]})
        )
        assert campaign.name == "demo"
        assert len(campaign.units) == 2

    def test_build_rejects_unknown_factory(self):
        with pytest.raises(ResilienceError, match="cannot resolve"):
            build_campaign(factory_spec("repro.no_such_module:fn"))

    def test_build_rejects_fingerprint_mismatch(self):
        spec = factory_spec(DEMO_FACTORY, {"values": [1, 2]})
        spec["fingerprint"] = "0" * 12
        with pytest.raises(ResilienceError, match="not reproducible"):
            build_campaign(spec)

    def test_build_validates_matching_fingerprint(self):
        spec = factory_spec(DEMO_FACTORY, {"values": [1, 2]})
        spec["fingerprint"] = demo_campaign([1, 2]).fingerprint
        assert build_campaign(spec).fingerprint == spec["fingerprint"]


def unit_record(campaign, index, worker, status="ok", gen=1):
    unit = campaign.units[index]
    record = {
        "type": "unit",
        "unit_id": unit.unit_id,
        "status": status,
        "worker": worker,
        "gen": gen,
    }
    if status == "ok":
        record["result"] = {"value": index, "square": index * index}
    return record


class TestMergeRecords:
    def test_merge_follows_campaign_unit_order(self):
        campaign = demo_campaign([1, 2, 3])
        records = {
            "w1": [unit_record(campaign, 2, "w1")],
            "w0": [unit_record(campaign, 0, "w0")],
        }
        merged = merge_records(campaign, records)
        assert [r["unit_id"] for r in merged] == [
            campaign.units[0].unit_id, campaign.units[2].unit_id
        ]

    def test_ok_beats_failed_across_workers(self):
        campaign = demo_campaign([1])
        records = {
            "w0": [unit_record(campaign, 0, "w0", status="failed")],
            "w1": [unit_record(campaign, 0, "w1", gen=2)],
        }
        (merged,) = merge_records(campaign, records)
        assert (merged["status"], merged["worker"]) == ("ok", "w1")

    def test_ok_is_sticky_within_one_worker(self):
        campaign = demo_campaign([1])
        records = {
            "w0": [
                unit_record(campaign, 0, "w0"),
                unit_record(campaign, 0, "w0", status="failed"),
            ],
        }
        (merged,) = merge_records(campaign, records)
        assert merged["status"] == "ok"

    def test_tie_breaks_to_done_marker_winner_then_min_worker(self):
        campaign = demo_campaign([1])
        records = {
            "w0": [unit_record(campaign, 0, "w0")],
            "w3": [unit_record(campaign, 0, "w3", gen=2)],
        }
        winners = {campaign.units[0].unit_id: "w3"}
        (merged,) = merge_records(campaign, records, winners)
        assert merged["worker"] == "w3"
        (merged,) = merge_records(campaign, records)
        assert merged["worker"] == "w0"

    def test_merge_is_order_deterministic(self):
        # Property: the merge depends on the *set* of records, never
        # on arrival order — any interleaving of worker journals (and
        # any dict insertion order) merges to the identical sequence.
        campaign = demo_campaign(list(range(8)))
        base = {
            "w0": [unit_record(campaign, i, "w0") for i in (0, 1, 2, 3)],
            "w1": [unit_record(campaign, i, "w1", gen=2) for i in (2, 3, 4)]
            + [unit_record(campaign, 5, "w1", status="failed")],
            "w2": [unit_record(campaign, i, "w2") for i in (5, 6, 7)],
        }
        winners = {campaign.units[2].unit_id: "w1"}
        reference = merge_records(campaign, base, winners)
        for seed in range(25):
            rng = random.Random(seed)
            workers = list(base)
            rng.shuffle(workers)
            shuffled = {}
            for worker in workers:
                records = list(base[worker])
                rng.shuffle(records)
                shuffled[worker] = records
            assert merge_records(campaign, shuffled, winners) == reference


class TestSpeculationTrigger:
    def run_speculate(self, tmp_path, *, done, lease_age_s, ttl=60.0,
                      **config_kwargs):
        campaign = demo_campaign([1])
        journal, run_dir = open_run(tmp_path, campaign)
        supervisor = make_supervisor(
            journal, speculate=True, lease_ttl_s=ttl, **config_kwargs
        )
        queue = WorkQueue(run_dir / "queue", default_ttl_s=ttl)
        queue.create()
        for index, elapsed in enumerate(done):
            queue.mark_done(f"done-{index}", "w0", "ok", elapsed_s=elapsed)
        lease = queue.claim("straggler", "w1")
        past = time.time() - lease_age_s
        os.utime(lease.path, (past, past))
        session = active()
        speculated = set()
        supervisor._speculate(
            queue, speculated, session.registry, session.tracer
        )
        return queue, speculated

    def test_straggler_past_threshold_gets_one_request(self, tmp_path):
        # median 0.1s, factor 3 -> threshold 0.3s; age 1s trips it.
        queue, speculated = self.run_speculate(
            tmp_path, done=[0.1, 0.1, 0.1], lease_age_s=1.0
        )
        assert queue.speculation_requested("straggler", 1)
        assert speculated == {("straggler", 1)}
        # The request is remembered: no second request for this gen.
        session = active()
        before = queue.speculation_count()
        assert queue.request_speculation("straggler", 1) is False
        assert queue.speculation_count() == before

    def test_needs_minimum_completed_units(self, tmp_path):
        queue, speculated = self.run_speculate(
            tmp_path, done=[0.1, 0.1], lease_age_s=10.0
        )
        assert speculated == set()

    def test_fresh_fast_lease_is_left_alone(self, tmp_path):
        queue, speculated = self.run_speculate(
            tmp_path, done=[0.1, 0.1, 0.1], lease_age_s=0.0
        )
        assert speculated == set()

    def test_stale_lease_is_stealing_territory_not_speculation(
        self, tmp_path
    ):
        queue, speculated = self.run_speculate(
            tmp_path, done=[0.1, 0.1, 0.1], lease_age_s=5.0, ttl=2.0
        )
        assert speculated == set()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ResilienceError):
            DistributedConfig(workers=0)
        with pytest.raises(ResilienceError):
            DistributedConfig(lease_ttl_s=0.0)
        with pytest.raises(ResilienceError):
            DistributedConfig(speculate_factor=1.0)

    def test_derived_defaults(self):
        config = DistributedConfig(workers=4, lease_ttl_s=9.0)
        assert config.effective_heartbeat_s == pytest.approx(3.0)
        assert config.respawn_budget == 12
        assert DistributedConfig(max_respawns=1).respawn_budget == 1

    def test_requires_a_journal(self):
        with pytest.raises(ResilienceError, match="run journal"):
            DistributedSupervisor(
                DistributedConfig(), factory_spec(DEMO_FACTORY), None
            )


@pytest.mark.slow
class TestFleetEndToEnd:
    def test_demo_campaign_completes_on_two_workers(self, tmp_path):
        from repro.harness.diskcache import DiskCache

        values = [1, 2, 3, 4]
        campaign = demo_campaign(values)
        journal, _run_dir = open_run(tmp_path, campaign)
        supervisor = make_supervisor(
            journal, factory_kwargs={"values": values}
        )
        supervisor.cache_dir = str(tmp_path / "cache")
        store = DiskCache(supervisor.cache_dir)
        store.pin("run-run1-w0", "inflight.txt")  # as a worker would
        store.pin("run-other-w0", "foreign.txt")
        outcome = supervisor.run(campaign)
        assert outcome.exit_code == EXIT_OK
        assert [o.status for o in outcome.outcomes] == [STATUS_OK] * 4
        assert [o.result["square"] for o in outcome.outcomes] == [
            1, 4, 9, 16
        ]
        assert supervisor.spawned >= 2
        # The run's own pins are cleared once it ends; foreign ones stay.
        assert store.pin_ids() == ["run-other-w0"]

    def test_resume_reuses_every_journaled_unit(self, tmp_path):
        values = [1, 2, 3]
        campaign = demo_campaign(values)
        journal, _ = open_run(tmp_path, campaign)
        first = make_supervisor(journal, factory_kwargs={"values": values})
        assert first.run(campaign).exit_code == EXIT_OK

        journal2 = RunJournal.open(
            tmp_path, "run1", campaign, require_existing=True
        )
        second = make_supervisor(journal2, factory_kwargs={"values": values})
        outcome = second.run(campaign)
        assert outcome.exit_code == EXIT_OK
        assert [o.status for o in outcome.outcomes] == [STATUS_SKIPPED] * 3
        assert second.spawned == 0  # nothing pending -> no fleet

    def test_kill9_mid_unit_is_stolen_and_report_matches_serial(
        self, tmp_path
    ):
        # One unit sleeps long enough for the test to SIGKILL its
        # lease holder; the stale lease is stolen and re-executed, and
        # the final results equal an untouched serial run's.
        values = [1, 2, 3, 4, 5]
        kwargs = {"values": values, "sleep_map": {"3": 1.5}}
        campaign = demo_campaign(**kwargs)
        slow_unit = next(
            u for u in campaign.units if u.params["value"] == 3
        )
        journal, run_dir = open_run(tmp_path, campaign)
        supervisor = make_supervisor(
            journal, factory_kwargs=kwargs, lease_ttl_s=0.6,
            shutdown_grace_s=30.0,
        )
        outcome = {}

        def drive():
            outcome["value"] = supervisor.run(campaign)

        thread = threading.Thread(target=drive)
        thread.start()
        lease_path = run_dir / "queue" / "leases" / f"{slow_unit.unit_id}.g1"
        victim = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                payload = json.loads(lease_path.read_text())
                victim = int(payload["pid"])
                break
            except (OSError, ValueError, KeyError):
                time.sleep(0.02)
        assert victim is not None, "slow unit was never leased"
        os.kill(victim, signal.SIGKILL)
        thread.join(timeout=60.0)
        assert not thread.is_alive()

        result = outcome["value"]
        assert result.exit_code == EXIT_OK
        assert [o.status for o in result.outcomes] == [STATUS_OK] * 5
        assert supervisor.deaths >= 1
        assert supervisor.steals >= 1

        serial_journal = RunJournal.open(tmp_path, "serial", campaign)
        serial = Supervisor(
            policy=RetryPolicy(base_delay_s=0.0, jitter=0.0),
            journal=serial_journal,
        ).run(campaign)
        assert [o.result for o in result.outcomes] == [
            o.result for o in serial.outcomes
        ]

    def test_coordinator_crash_recovery_merges_before_spawning(
        self, tmp_path
    ):
        # Simulate a coordinator killed after its workers drained the
        # queue but before any merge: the campaign journal is empty,
        # yet worker journals and done markers hold every result. A
        # resumed coordinator must recover all of it without spawning.
        values = [1, 2, 3, 4]
        kwargs = {"values": values}
        campaign = demo_campaign(**kwargs)
        journal, run_dir = open_run(tmp_path, campaign)
        queue = WorkQueue(run_dir / "queue", default_ttl_s=5.0)
        queue.populate([u.unit_id for u in campaign.units])
        spec = factory_spec(DEMO_FACTORY, kwargs)
        write_campaign_spec(run_dir, spec, campaign)
        worker_journal = RunJournal.open(
            run_dir / WORKERS_DIR, "w0", campaign, meta={"worker": "w0"}
        )
        Worker(
            queue=queue,
            journal=worker_journal,
            campaign=campaign,
            worker_id="w0",
        ).run()
        assert queue.all_done([u.unit_id for u in campaign.units])
        assert all(
            r.get("type") != "unit" for r in journal.records()
        ), "campaign journal must start empty for this scenario"

        supervisor = DistributedSupervisor(
            DistributedConfig(workers=2), spec, journal
        )
        result = supervisor.run(campaign)
        assert result.exit_code == EXIT_OK
        assert supervisor.spawned == 0
        ok_records = [
            r for r in journal.records()
            if r.get("type") == "unit" and r.get("status") == "ok"
        ]
        assert len(ok_records) == len(values)  # exactly one per unit
        assert [o.result["square"] for o in result.outcomes] == [
            1, 4, 9, 16
        ]
