"""Ablation: lazy vs eager integrity-tree update (DESIGN.md section 5).

The lazy scheme batches tree updates in the node caches until eviction;
the eager scheme writes the whole path on every counter update. Lazy
must win on write traffic, dramatically so for write-heavy kernels.
"""

from conftest import run_once

from repro.gpu.perf_model import normalized_ipc
from repro.harness.report import format_table

WRITE_HEAVY = ["lbm", "srad", "histo"]


def test_ablation_lazy_vs_eager(benchmark, ctx):
    def run():
        rows = []
        for bench in WRITE_HEAVY:
            base = ctx.run(bench, "nosec")
            lazy = ctx.run(bench, "pssm")
            eager = ctx.run(bench, "pssm:eager")
            rows.append(
                {
                    "benchmark": bench,
                    "lazy_tree_bytes": lazy.traffic.tree_bytes,
                    "eager_tree_bytes": eager.traffic.tree_bytes,
                    "lazy_ipc": normalized_ipc(lazy, base),
                    "eager_ipc": normalized_ipc(eager, base),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print(format_table(rows))
    for row in rows:
        assert row["lazy_tree_bytes"] < row["eager_tree_bytes"], row
        assert row["lazy_ipc"] >= row["eager_ipc"], row
