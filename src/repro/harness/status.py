"""The ``status`` harness subcommand: live campaign monitoring.

Reads a run journal (see :mod:`repro.resilience.journal`) and renders
where the campaign stands: units done / failed / pending, throughput
and ETA computed from the per-record timestamps, budget consumption
against the budget recorded in the run header, and — once the run has
ended — the final verdict and its resource-telemetry roll-up.

Distributed runs (``--workers N``) are aggregated too: the monitor
folds each per-worker journal under ``workers/`` into the live
progress (a unit a worker finished counts as done even before the
coordinator merges it), reports a per-worker roll-up — units executed,
steals, speculations, speculation losses, respawn incarnations — and
lists the lease-queue state (units currently held, by whom, for how
long). All of it stays read-only.

The monitor is **strictly read-only**: it never opens the journal for
append (that path repairs torn tails by truncating the file) and never
takes locks, so watching a live run cannot perturb it. A torn trailing
line — the supervisor may be mid-append right now — is tolerated
exactly like the resume path tolerates it.

``--follow`` polls until the journal gains an ``end`` record, then
exits with the run's verdict: 0 for ``complete``, 3 (partial) for
``partial``. A one-shot invocation of a still-running campaign exits 0.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.common.errors import (
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_USAGE,
    JournalError,
)
from repro.resilience import RunJournal, render_campaign_telemetry
from repro.resilience.journal import JOURNAL_NAME

log = logging.getLogger("repro.harness.status")


def resolve_journal(spec: str) -> Path:
    """Resolve a CLI journal spec to the ``journal.jsonl`` path.

    Accepts the journal file itself, a run directory containing one,
    or a run-dir root holding exactly one run (the common case right
    after ``sweep`` printed its run id).
    """
    path = Path(spec)
    if path.is_file():
        return path
    if path.is_dir():
        direct = path / JOURNAL_NAME
        if direct.is_file():
            return direct
        journals = sorted(path.glob(f"*/{JOURNAL_NAME}"))
        if len(journals) == 1:
            return journals[0]
        if len(journals) > 1:
            runs = ", ".join(sorted(p.parent.name for p in journals))
            raise JournalError(
                f"{path} holds {len(journals)} runs ({runs}); "
                "name one run directory"
            )
    raise JournalError(f"no run journal at {path}")


@dataclass
class StatusSnapshot:
    """One read of a run journal, reduced to progress numbers."""

    path: str
    run_id: str
    campaign: str
    units_total: int
    ok: int = 0
    failed: int = 0
    #: Units with no ``ok`` record yet (failed units count: a resume
    #: will re-run them).
    pending: int = 0
    #: Journal unit records (a retried-and-rerecorded unit counts twice).
    unit_records: int = 0
    started_ts: Optional[float] = None
    last_ts: Optional[float] = None
    #: Wall seconds covered by the snapshot (end/now - start).
    elapsed_s: Optional[float] = None
    #: Finished unit records per second of elapsed time.
    units_per_s: Optional[float] = None
    eta_s: Optional[float] = None
    #: The run header's ``budget`` block, if the run recorded one.
    budget: Dict[str, object] = field(default_factory=dict)
    #: ``None`` while running; ``complete`` / ``partial`` once ended.
    end_status: Optional[str] = None
    end_reason: Optional[str] = None
    #: The end record's resource-telemetry roll-up, if present.
    telemetry: Dict[str, object] = field(default_factory=dict)
    #: Distributed runs: one roll-up dict per worker journal found
    #: under ``workers/`` (sorted by worker id).
    workers: List[Dict[str, object]] = field(default_factory=list)
    #: Distributed runs: live lease-queue entries (unit, holder, age).
    leases: List[Dict[str, object]] = field(default_factory=list)

    @property
    def running(self) -> bool:
        return self.end_status is None

    @property
    def exit_code(self) -> int:
        return EXIT_PARTIAL if self.end_status == "partial" else EXIT_OK

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path,
            "run_id": self.run_id,
            "campaign": self.campaign,
            "units_total": self.units_total,
            "ok": self.ok,
            "failed": self.failed,
            "pending": self.pending,
            "unit_records": self.unit_records,
            "running": self.running,
        }
        if self.elapsed_s is not None:
            payload["elapsed_s"] = round(self.elapsed_s, 3)
        if self.units_per_s is not None:
            payload["units_per_s"] = round(self.units_per_s, 6)
        if self.eta_s is not None:
            payload["eta_s"] = round(self.eta_s, 3)
        if self.budget:
            payload["budget"] = self.budget
        if self.end_status is not None:
            payload["end_status"] = self.end_status
        if self.end_reason is not None:
            payload["end_reason"] = self.end_reason
        if self.telemetry:
            payload["telemetry"] = self.telemetry
        if self.workers:
            payload["workers"] = self.workers
        if self.leases:
            payload["leases"] = self.leases
        return payload


def read_snapshot(
    journal_file: Path, now: Callable[[], float] = time.time
) -> StatusSnapshot:
    """Parse *journal_file* (read-only) into a :class:`StatusSnapshot`."""
    journal = RunJournal(journal_file, journal_file.parent.name)
    records = journal.records()
    header = journal.header()
    snapshot = StatusSnapshot(
        path=str(journal_file),
        run_id=str(header.get("run_id", journal.run_id)),
        campaign=str(header.get("campaign", "?")),
        units_total=int(header.get("units", 0)),  # type: ignore[arg-type]
    )
    budget = header.get("budget")
    if isinstance(budget, dict):
        snapshot.budget = budget
    header_ts = header.get("ts")
    if isinstance(header_ts, (int, float)):
        snapshot.started_ts = float(header_ts)

    latest: Dict[str, str] = {}
    for record in records:
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            snapshot.last_ts = float(ts)
        kind = record.get("type")
        if kind == "unit":
            snapshot.unit_records += 1
            unit_id = record.get("unit_id")
            status = record.get("status")
            if isinstance(unit_id, str) and isinstance(status, str):
                # ok is sticky: a resume never demotes a completed unit.
                if latest.get(unit_id) != "ok":
                    latest[unit_id] = status
        elif kind == "end":
            snapshot.end_status = str(record.get("status"))
            reason = record.get("reason")
            snapshot.end_reason = str(reason) if reason is not None else None
            telemetry = record.get("telemetry")
            if isinstance(telemetry, dict):
                snapshot.telemetry = telemetry

    run_dir = journal_file.parent
    snapshot.workers = _worker_rollups(run_dir, latest)
    if snapshot.running:
        snapshot.leases = _live_leases(run_dir)

    snapshot.ok = sum(1 for s in latest.values() if s == "ok")
    snapshot.failed = sum(1 for s in latest.values() if s == "failed")
    snapshot.pending = max(0, snapshot.units_total - snapshot.ok)

    if snapshot.started_ts is not None:
        reference = (
            snapshot.last_ts
            if not snapshot.running and snapshot.last_ts is not None
            else max(now(), snapshot.started_ts)
        )
        snapshot.elapsed_s = max(0.0, reference - snapshot.started_ts)
        if snapshot.unit_records and snapshot.elapsed_s > 0:
            snapshot.units_per_s = snapshot.unit_records / snapshot.elapsed_s
            if snapshot.running and snapshot.pending:
                snapshot.eta_s = snapshot.pending / snapshot.units_per_s
    return snapshot


def _worker_rollups(
    run_dir: Path, latest: Dict[str, str]
) -> List[Dict[str, object]]:
    """Fold every per-worker journal under *run_dir* into roll-ups.

    Worker unit verdicts are merged into *latest* with the same
    sticky-ok rule as the campaign journal, so live progress counts
    work the coordinator has not merged yet. Unreadable or headerless
    journals (a worker mid-first-write) are skipped, not fatal.
    """
    rollups: List[Dict[str, object]] = []
    for path in sorted((run_dir / "workers").glob(f"*/{JOURNAL_NAME}")):
        try:
            records = RunJournal(path, path.parent.name).records()
        except JournalError:
            continue
        stats: Dict[str, object] = {
            "worker": path.parent.name,
            "ok": 0,
            "failed": 0,
            "steals": 0,
            "speculations": 0,
            "spec_losses": 0,
            "incarnations": 0,
        }
        for record in records:
            kind = record.get("type")
            if kind == "unit":
                unit_id = record.get("unit_id")
                status = record.get("status")
                if status == "ok":
                    stats["ok"] += 1  # type: ignore[operator]
                elif status == "failed":
                    stats["failed"] += 1  # type: ignore[operator]
                if isinstance(unit_id, str) and isinstance(status, str):
                    if latest.get(unit_id) != "ok":
                        latest[unit_id] = status
            elif kind == "worker":
                key = {
                    "steal": "steals",
                    "speculate": "speculations",
                    "spec-loss": "spec_losses",
                    "start": "incarnations",
                }.get(str(record.get("event")))
                if key is not None:
                    stats[key] += 1  # type: ignore[operator]
        rollups.append(stats)
    return rollups


def _live_leases(run_dir: Path) -> List[Dict[str, object]]:
    """Current lease-queue holdings of a live distributed run."""
    from repro.resilience.queue import WorkQueue

    queue_dir = run_dir / "queue"
    if not (queue_dir / "leases").is_dir():
        return []
    try:
        leases = WorkQueue(queue_dir).live_leases()
    except OSError:  # pragma: no cover - raced with queue teardown
        return []
    for lease in leases:
        age = lease.get("age_s")
        if isinstance(age, (int, float)):
            lease["age_s"] = round(float(age), 3)
    return leases


def _fmt_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def render_status(snapshot: StatusSnapshot, width: int = 30) -> str:
    """Human-readable status block for one snapshot."""
    lines = [
        f"== status: run {snapshot.run_id} "
        f"(campaign {snapshot.campaign}) =="
    ]
    total = snapshot.units_total
    done = snapshot.ok
    lines.append(
        f"units:    {total} total  {done} ok  {snapshot.failed} failed  "
        f"{snapshot.pending} pending"
    )
    if total:
        filled = int(round(width * done / total))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"progress: [{bar}] {100.0 * done / total:.1f}%")
    if snapshot.elapsed_s is not None:
        parts = [f"elapsed {_fmt_duration(snapshot.elapsed_s)}"]
        if snapshot.units_per_s is not None:
            parts.append(f"{snapshot.units_per_s * 60:.1f} units/min")
        if snapshot.eta_s is not None:
            parts.append(f"eta ~{_fmt_duration(snapshot.eta_s)}")
        lines.append("timing:   " + "  ".join(parts))
    wall_budget = snapshot.budget.get("wall_clock_s")
    if isinstance(wall_budget, (int, float)) and snapshot.elapsed_s is not None:
        used = 100.0 * snapshot.elapsed_s / wall_budget if wall_budget else 0.0
        lines.append(
            f"budget:   wall {_fmt_duration(snapshot.elapsed_s)} of "
            f"{_fmt_duration(float(wall_budget))} ({used:.1f}%)"
        )
    if snapshot.workers:
        lines.append("workers:")
        for worker in snapshot.workers:
            parts = [f"{worker['ok']} ok", f"{worker['failed']} failed"]
            if worker["steals"]:
                parts.append(f"{worker['steals']} stolen")
            if worker["speculations"]:
                parts.append(f"{worker['speculations']} speculative")
            if worker["spec_losses"]:
                parts.append(f"{worker['spec_losses']} spec-lost")
            if isinstance(worker["incarnations"], int) \
                    and worker["incarnations"] > 1:
                parts.append(f"{worker['incarnations']} incarnations")
            lines.append(f"  {worker['worker']}: " + "  ".join(parts))
    if snapshot.leases:
        held = ", ".join(
            f"{str(lease['unit_id'])[:12]} by {lease['worker']} "
            f"({lease['age_s']}s)"
            for lease in snapshot.leases[:4]
        )
        extra = len(snapshot.leases) - 4
        if extra > 0:
            held += f", +{extra} more"
        lines.append(f"leases:   {len(snapshot.leases)} held: {held}")
    if snapshot.running:
        lines.append("state:    running")
    else:
        reason = f" ({snapshot.end_reason})" if snapshot.end_reason else ""
        lines.append(f"state:    {snapshot.end_status}{reason}")
    if snapshot.telemetry:
        lines.append(render_campaign_telemetry(snapshot.telemetry))
    return "\n".join(lines)


def follow(
    journal_file: Path,
    poll_s: float,
    stream,
    now: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    max_polls: Optional[int] = None,
) -> int:
    """Poll *journal_file* until its run ends; returns the exit code.

    Each poll prints a one-line progress update; the final snapshot is
    rendered in full. ``max_polls`` bounds the loop for tests (and for
    watching a run that will never end); hitting it exits 0 if the run
    is still marked running.
    """
    polls = 0
    while True:
        snapshot = read_snapshot(journal_file, now=now)
        if not snapshot.running:
            print(render_status(snapshot), file=stream)
            return snapshot.exit_code
        eta = (
            f"  eta ~{_fmt_duration(snapshot.eta_s)}"
            if snapshot.eta_s is not None
            else ""
        )
        print(
            f"[{snapshot.run_id}] {snapshot.ok}/{snapshot.units_total} ok  "
            f"{snapshot.failed} failed{eta}",
            file=stream,
        )
        polls += 1
        if max_polls is not None and polls >= max_polls:
            log.info("giving up after %d polls; run still active", polls)
            return EXIT_OK
        sleep(poll_s)


def status_main(
    argv: List[str],
    now: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Parse and run the ``status`` subcommand."""
    from repro.harness.logsetup import add_logging_flags, setup_logging

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness status",
        description="Monitor a supervised run from its journal "
                    "(read-only; safe against a live campaign).",
    )
    parser.add_argument(
        "journal",
        help="run journal: the journal.jsonl file, its run directory, "
             "or a --run-dir root holding one run",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="poll until the run ends; exit with its verdict "
             "(0 complete, 3 partial)",
    )
    parser.add_argument(
        "--poll", type=float, default=1.0, metavar="SECONDS",
        help="--follow poll interval (default 1.0)",
    )
    parser.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="stop following after N polls even if the run is still "
             "active (default: never)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the snapshot as JSON instead of the text block",
    )
    add_logging_flags(parser)
    args = parser.parse_args(argv)
    setup_logging(args)
    if args.poll <= 0:
        parser.error("--poll must be > 0")

    try:
        journal_file = resolve_journal(args.journal)
        if args.follow and not args.as_json:
            return follow(
                journal_file,
                args.poll,
                sys.stdout,
                now=now,
                sleep=sleep,
                max_polls=args.max_polls,
            )
        snapshot = read_snapshot(journal_file, now=now)
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.as_json:
        print(json.dumps(snapshot.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_status(snapshot))
    return snapshot.exit_code
