"""The repo-wide content-addressing primitive.

Disk-cache keys, resilience work-unit ids, and campaign fingerprints
all hash through this one function, so "same inputs" means the same
thing everywhere. It lives in :mod:`repro.common` because both the
harness (disk cache) and the resilience layer depend on it — neither
may import the other.
"""

from __future__ import annotations

import hashlib


def content_digest(*parts: str) -> str:
    """SHA-256 over framed string parts, truncated to 32 hex chars.

    Parts are framed with a separator byte so that ``("ab", "c")`` and
    ``("a", "bc")`` hash differently.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()[:32]
