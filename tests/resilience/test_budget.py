"""Resource budgets: the wall-clock, RSS, heap, and unit-timeout guards."""

import time
import tracemalloc

import pytest

from repro.common.errors import ResilienceError, UnitTimeoutError
from repro.resilience import (
    REASON_RSS,
    REASON_TRACEMALLOC,
    REASON_WALL_CLOCK,
    BudgetGuard,
    ResourceBudget,
)


class FakeClock:
    """An injectable monotonic clock tests can advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestResourceBudget:
    def test_default_is_unbounded(self):
        assert ResourceBudget().unbounded

    def test_any_bound_clears_unbounded(self):
        assert not ResourceBudget(wall_clock_s=1.0).unbounded
        assert not ResourceBudget(max_rss_mb=64.0).unbounded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wall_clock_s": 0.0},
            {"unit_timeout_s": -1.0},
            {"max_rss_mb": 0.0},
            {"max_tracemalloc_mb": -2.0},
        ],
    )
    def test_nonpositive_bounds_rejected(self, kwargs):
        with pytest.raises(ResilienceError, match="must be positive"):
            ResourceBudget(**kwargs)


class TestWallClockGuard:
    def test_not_exceeded_before_deadline(self):
        clock = FakeClock()
        guard = BudgetGuard(ResourceBudget(wall_clock_s=10.0), clock=clock)
        guard.start()
        clock.now += 9.9
        assert guard.exceeded() is None

    def test_exceeded_returns_stable_reason(self):
        clock = FakeClock()
        guard = BudgetGuard(ResourceBudget(wall_clock_s=10.0), clock=clock)
        guard.start()
        clock.now += 10.0
        assert guard.exceeded() == REASON_WALL_CLOCK

    def test_elapsed_tracks_injected_clock(self):
        clock = FakeClock()
        guard = BudgetGuard(clock=clock)
        assert guard.elapsed() == 0.0  # not started yet
        guard.start()
        clock.now += 3.5
        assert guard.elapsed() == pytest.approx(3.5)

    def test_unarmed_guard_never_trips(self):
        guard = BudgetGuard(ResourceBudget(wall_clock_s=0.001))
        assert guard.exceeded() is None


class TestMemoryGuards:
    def test_rss_probe_over_budget(self):
        guard = BudgetGuard(
            ResourceBudget(max_rss_mb=64.0), rss_probe=lambda: 65.0
        )
        guard.start()
        assert guard.exceeded() == REASON_RSS

    def test_rss_probe_under_budget(self):
        guard = BudgetGuard(
            ResourceBudget(max_rss_mb=64.0), rss_probe=lambda: 63.0
        )
        guard.start()
        assert guard.exceeded() is None

    def test_unknown_rss_is_advisory(self):
        guard = BudgetGuard(
            ResourceBudget(max_rss_mb=1.0), rss_probe=lambda: None
        )
        guard.start()
        assert guard.exceeded() is None

    def test_tracemalloc_guard_owns_tracing(self):
        was_tracing = tracemalloc.is_tracing()
        guard = BudgetGuard(ResourceBudget(max_tracemalloc_mb=0.001))
        guard.start()
        try:
            assert tracemalloc.is_tracing()
            ballast = bytearray(1 << 20)
            assert guard.exceeded() == REASON_TRACEMALLOC
            del ballast
        finally:
            guard.stop()
        assert tracemalloc.is_tracing() == was_tracing

    def test_wall_clock_checked_before_memory(self):
        clock = FakeClock()
        guard = BudgetGuard(
            ResourceBudget(wall_clock_s=1.0, max_rss_mb=64.0),
            clock=clock,
            rss_probe=lambda: 1000.0,
        )
        guard.start()
        clock.now += 2.0
        assert guard.exceeded() == REASON_WALL_CLOCK


class TestUnitTimeout:
    def test_fast_unit_passes(self):
        guard = BudgetGuard(ResourceBudget(unit_timeout_s=5.0))
        with guard.unit_timeout():
            result = sum(range(100))
        assert result == 4950

    def test_slow_unit_preempted(self):
        guard = BudgetGuard(ResourceBudget(unit_timeout_s=0.05))
        assert guard.preemptive_timeout  # Unix main thread in pytest
        with pytest.raises(UnitTimeoutError, match="timeout"):
            with guard.unit_timeout():
                time.sleep(5.0)

    def test_timer_disarmed_after_exit(self):
        guard = BudgetGuard(ResourceBudget(unit_timeout_s=0.05))
        with pytest.raises(UnitTimeoutError):
            with guard.unit_timeout():
                time.sleep(5.0)
        # A later slow section must not be hit by a stale alarm.
        time.sleep(0.08)

    def test_no_timeout_configured_is_noop(self):
        guard = BudgetGuard(ResourceBudget())
        assert not guard.preemptive_timeout
        with guard.unit_timeout():
            pass


class TestStackedGuards:
    """Nested unit_timeout contexts must compose, not disarm each other."""

    def test_inner_guard_restores_outer_alarm(self):
        import signal

        outer = BudgetGuard(ResourceBudget(unit_timeout_s=0.2))
        inner = BudgetGuard(ResourceBudget(unit_timeout_s=5.0))
        with pytest.raises(UnitTimeoutError) as excinfo:
            with outer.unit_timeout():
                with inner.unit_timeout():
                    time.sleep(0.02)
                # The outer 0.2s timer must still be ticking here.
                delay, _interval = signal.getitimer(signal.ITIMER_REAL)
                assert 0.0 < delay <= 0.2
                time.sleep(5.0)
        assert excinfo.value.timeout_s == 0.2

    def test_expired_outer_deadline_fires_after_inner_exit(self):
        # The inner guard outlives the outer deadline: on exit the outer
        # alarm is re-armed (almost) immediately instead of dropped.
        outer = BudgetGuard(ResourceBudget(unit_timeout_s=0.05))
        inner = BudgetGuard(ResourceBudget(unit_timeout_s=5.0))
        with pytest.raises(UnitTimeoutError) as excinfo:
            with outer.unit_timeout():
                with inner.unit_timeout():
                    time.sleep(0.1)  # sails past the outer deadline
                time.sleep(1.0)  # re-armed outer alarm lands here
        assert excinfo.value.timeout_s == 0.05

    def test_preexisting_itimer_survives_a_guard(self):
        import signal

        fired = []

        def handler(signum, frame):
            fired.append(signum)

        previous = signal.signal(signal.SIGALRM, handler)
        signal.setitimer(signal.ITIMER_REAL, 30.0)
        try:
            guard = BudgetGuard(ResourceBudget(unit_timeout_s=5.0))
            with guard.unit_timeout():
                pass
            delay, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert 0.0 < delay <= 30.0
            assert signal.getsignal(signal.SIGALRM) is handler
            assert not fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


class TestChildRssAccounting:
    def test_reaped_child_memory_is_billed(self):
        # A worker subprocess's allocation must show up in the RSS
        # probe once the child is reaped -- that is what lets
        # --max-rss-mb bite on distributed runs, where the memory is
        # spent in children, not in the coordinator.
        resource = pytest.importorskip("resource")
        import subprocess
        import sys

        from repro.resilience.budget import _ru_maxrss_mb, current_rss_mb

        subprocess.run(
            [
                sys.executable,
                "-c",
                "x = bytearray(200 * 1024 * 1024); x[::4096] = "
                "b'y' * len(x[::4096]); print(len(x))",
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        children_mb = _ru_maxrss_mb(
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
        )
        assert children_mb >= 190.0
        probe = current_rss_mb()
        assert probe is not None
        assert probe >= children_mb
