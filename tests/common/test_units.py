"""Unit tests for size/bandwidth/frequency value types."""

import pytest

from repro.common.units import Bandwidth, Frequency, Size


class TestSize:
    def test_constructors(self):
        assert Size.from_kib(2).bytes == 2048
        assert Size.from_mib(1).bytes == 1024**2
        assert Size.from_gib(4).bytes == 4 * 1024**3

    def test_accessors(self):
        size = Size.from_mib(3)
        assert size.kib == 3 * 1024
        assert size.mib == 3
        assert size.gib == 3 / 1024

    def test_arithmetic(self):
        assert (Size(100) + Size(28)).bytes == 128
        assert (Size(128) - Size(28)).bytes == 100
        assert (Size(32) * 4).bytes == 128
        assert (4 * Size(32)).bytes == 128

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Size(-1)

    def test_ordering(self):
        assert Size(1) < Size(2)
        assert max(Size(5), Size(3)) == Size(5)

    def test_str_picks_best_unit(self):
        assert str(Size(2048)) == "2 KiB"
        assert str(Size(3 * 1024**2)) == "3 MiB"
        assert str(Size(4 * 1024**3)) == "4 GiB"
        assert str(Size(100)) == "100 B"


class TestBandwidth:
    def test_gb_per_s_roundtrip(self):
        bandwidth = Bandwidth.from_gb_per_s(868.0)
        assert bandwidth.gb_per_s == pytest.approx(868.0)

    def test_transfer_time(self):
        bandwidth = Bandwidth.from_gb_per_s(1.0)
        assert bandwidth.transfer_seconds(Size(10**9)) == pytest.approx(1.0)

    def test_zero_bandwidth_cannot_transfer(self):
        with pytest.raises(ZeroDivisionError):
            Bandwidth(0).transfer_seconds(Size(1))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Bandwidth(-1.0)

    def test_str(self):
        assert str(Bandwidth.from_gb_per_s(868)) == "868 GB/s"


class TestFrequency:
    def test_mhz_roundtrip(self):
        assert Frequency.from_mhz(1132.0).mhz == pytest.approx(1132.0)

    def test_cycle_time(self):
        assert Frequency.from_mhz(1000.0).cycles_to_seconds(1000) == pytest.approx(1e-6)

    def test_zero_frequency_has_no_cycle_time(self):
        with pytest.raises(ZeroDivisionError):
            Frequency(0).cycles_to_seconds(1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Frequency(-5.0)
