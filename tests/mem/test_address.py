"""Tests for the address map and partition interleaving."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.address import DEFAULT_ADDRESS_MAP, AddressMap


class TestGeometry:
    def test_default_volta_numbers(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.sectors_per_line == 4
        assert amap.num_lines == 4 * 1024**3 // 128
        assert amap.lines_per_partition == amap.num_lines // 32
        assert amap.partition_bytes == 128 * 1024**2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMap(num_partitions=3)
        with pytest.raises(ConfigurationError):
            AddressMap(line_bytes=96)
        with pytest.raises(ConfigurationError):
            AddressMap(sector_bytes=48, line_bytes=128)


class TestAddressArithmetic:
    def test_line_address_rounds_down(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.line_address(0x1234) == 0x1200
        assert amap.line_address(0x1280) == 0x1280

    def test_sector_in_line(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.sector_in_line(0x1200) == 0
        assert amap.sector_in_line(0x1220) == 1
        assert amap.sector_in_line(0x1240) == 2
        assert amap.sector_in_line(0x127F) == 3

    def test_sector_address(self):
        assert DEFAULT_ADDRESS_MAP.sector_address(0x1234) == 0x1220

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_ADDRESS_MAP.line_address(4 * 1024**3)
        with pytest.raises(ValueError):
            DEFAULT_ADDRESS_MAP.partition_of(-1)

    def test_iter_line_sector_addresses(self):
        sectors = list(DEFAULT_ADDRESS_MAP.iter_line_sector_addresses(0x1234))
        assert sectors == [0x1200, 0x1220, 0x1240, 0x1260]


class TestInterleaving:
    def test_partition_in_range(self):
        amap = DEFAULT_ADDRESS_MAP
        for line in range(0, 100):
            assert 0 <= amap.partition_of(line * 128) < 32

    def test_hashed_interleave_is_balanced(self):
        """Sequential lines should spread evenly over partitions."""
        amap = DEFAULT_ADDRESS_MAP
        counts = [0] * 32
        for line in range(32 * 64):
            counts[amap.partition_of(line * 128)] += 1
        assert max(counts) - min(counts) <= 8

    def test_modulo_interleave_without_hash(self):
        amap = AddressMap(interleave_hash=False)
        for line in range(100):
            assert amap.partition_of(line * 128) == line % 32

    def test_same_line_same_partition(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.partition_of(0x1200) == amap.partition_of(0x127F)


class TestLocalAddressing:
    """PSSM partition-local metadata addressing."""

    def test_local_line_index_is_dense(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.local_line_index(0) == 0
        assert amap.local_line_index(32 * 128) == 1
        assert amap.local_line_index(64 * 128) == 2

    def test_local_sector_index(self):
        amap = DEFAULT_ADDRESS_MAP
        assert amap.local_sector_index(0) == 0
        assert amap.local_sector_index(32) == 1
        assert amap.local_sector_index(32 * 128) == 4

    def test_local_index_bounded_by_partition(self):
        amap = DEFAULT_ADDRESS_MAP
        top = amap.memory_bytes - 32
        assert amap.local_sector_index(top) < amap.partition_bytes // 32
